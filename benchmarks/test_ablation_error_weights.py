"""Ablation benchmark: error-score weights (Eq. 2) and strictness of the
error-aware policy.

The paper fixes (α, θ, γ) = (0.5, 0.3, 0.2) and motivates the ordering
(readout > single-qubit > two-qubit).  This benchmark sweeps alternative
weightings and the strict/非-strict device-selection variant to show how much
of the error-aware strategy's fidelity advantage survives the change:

* any reasonable weighting keeps the error-aware strategy at or above the
  speed strategy's fidelity (the ranking of devices barely changes because
  readout dominates the magnitude of Eq. 2 on Eagle-class calibrations),
* the non-strict variant (spill to worse devices instead of waiting) trades
  some fidelity for a shorter makespan.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_policy_simulation, sweep_error_score_weights
from repro.cloud.config import SimulationConfig
from repro.scheduling.error_aware import ErrorAwarePolicy
from repro.scheduling.speed import SpeedPolicy

from benchmarks.conftest import BENCHMARK_SEED

WEIGHT_SETS = {
    "paper (0.5/0.3/0.2)": (0.5, 0.3, 0.2),
    "readout only": (1.0, 0.0, 0.0),
    "uniform": (1 / 3, 1 / 3, 1 / 3),
    "two-qubit heavy": (0.2, 0.2, 0.6),
}


def test_ablation_error_score_weights(benchmark):
    """Sweep (α, θ, γ) through the experiment engine, against the speed baseline."""
    config = SimulationConfig(num_jobs=40, seed=BENCHMARK_SEED)

    def run():
        results = {}
        speed_summary, _ = run_policy_simulation(config.with_policy("speed"), policy=SpeedPolicy())
        results["speed baseline"] = speed_summary
        by_weights = sweep_error_score_weights(list(WEIGHT_SETS.values()), config=config)
        for label, weights in WEIGHT_SETS.items():
            results[label] = by_weights[weights]
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nvariant                  mean_fidelity   T_sim(s)")
    for label, summary in results.items():
        print(f"{label:<24} {summary.mean_fidelity:<15.5f} {summary.total_simulation_time:,.1f}")
        benchmark.extra_info[label.replace(" ", "_")] = round(summary.mean_fidelity, 5)

    speed_fid = results["speed baseline"].mean_fidelity
    for label in WEIGHT_SETS:
        assert results[label].mean_fidelity >= speed_fid - 1e-6, label


def test_ablation_strict_vs_spill(benchmark):
    """Strict (wait for the best devices) vs non-strict (spill) error-aware mode."""
    config = SimulationConfig(num_jobs=40, seed=BENCHMARK_SEED)

    def run():
        strict, _ = run_policy_simulation(
            config.with_policy("fidelity"), policy=ErrorAwarePolicy(strict=True)
        )
        spill, _ = run_policy_simulation(
            config.with_policy("fidelity"), policy=ErrorAwarePolicy(strict=False)
        )
        return strict, spill

    strict, spill = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nstrict: fidelity={strict.mean_fidelity:.5f} T_sim={strict.total_simulation_time:,.1f}")
    print(f"spill : fidelity={spill.mean_fidelity:.5f} T_sim={spill.total_simulation_time:,.1f}")
    benchmark.extra_info["strict_fidelity"] = round(strict.mean_fidelity, 5)
    benchmark.extra_info["spill_fidelity"] = round(spill.mean_fidelity, 5)

    # Waiting for the best devices buys fidelity at the cost of makespan.
    assert strict.mean_fidelity >= spill.mean_fidelity
    assert strict.total_simulation_time >= spill.total_simulation_time
