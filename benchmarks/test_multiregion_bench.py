"""Multi-region benchmark: shard-count scaling and routing-policy comparison.

Two measurements, recorded in ``BENCH_multiregion.json`` at the repository
root (the perf trajectory of the region subsystem):

* **Shard-count scaling** — the same global workload size runs on one, two
  and three region shards, serially and as real parallel processes via the
  engine's ``"process"`` backend.  Both backends must produce *identical*
  merged record streams (a shard is a pure function of its picklable task),
  which is asserted per topology; the wall-clocks are recorded as context
  only — CI machines with a single core legitimately see no process speedup,
  so none is asserted.
* **Routing-policy comparison** — every routing policy serves the same
  ``global-triad`` workload; completed/failed/migration counts, mean
  fidelity and the spread of normalised per-region load are recorded.  The
  policies legitimately trade fidelity against balance, so the numbers are
  context; each run must still account for every job.

Assertions gate the artifact: ``BENCH_multiregion.json`` is only (re)written
once they pass, so a failing run never overwrites a good baseline.

Set ``REPRO_MULTIREGION_BENCH_TINY=1`` (the CI smoke job does) for a
seconds-fast run that still exercises every topology, backend and policy.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.cloud.config import SimulationConfig
from repro.engine import ExperimentRunner
from repro.region import ROUTING_POLICIES, RegionalCloud, get_topology

TINY = os.environ.get("REPRO_MULTIREGION_BENCH_TINY", "0") not in ("0", "", "false", "False")

#: Contention-tolerant mode: this benchmark asserts no wall-clock bounds
#: (single-core CI machines see no process speedup), so the flag is recorded
#: for artifact provenance only.  Implied by TINY; ``REPRO_BENCH_SKIP_TIMING=1``
#: sets it repo-wide.
SKIP_TIMING = TINY or os.environ.get(
    "REPRO_BENCH_SKIP_TIMING", "0"
) not in ("0", "", "false", "False")

#: Global jobs per run, split over the topology's regions by workload share.
NUM_JOBS = 24 if TINY else 200
#: Shard-count scaling topologies (1, 2 and 3 region shards).
TOPOLOGIES = ("single", "dual", "global-triad")
#: Topology of the routing-policy comparison (uneven pools — policy matters).
POLICY_TOPOLOGY = "global-triad"

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_multiregion.json"


def _run(topology, routing="locality", backend="serial", max_workers=None):
    config = SimulationConfig(
        num_jobs=NUM_JOBS, policy="fidelity", seed=17, regions=topology, routing=routing
    )
    runner = ExperimentRunner(backend=backend, max_workers=max_workers)
    start = time.perf_counter()
    cloud = RegionalCloud(config=config, runner=runner)
    records = cloud.run_until_complete()
    return time.perf_counter() - start, cloud, records


def test_multiregion_benchmark():
    _run("dual")  # warm-up: device catalogue, coupling maps, caches

    # -- shard-count scaling: serial vs process, identical streams -----------
    scaling = {}
    for topology in TOPOLOGIES:
        num_regions = len(get_topology(topology).regions)
        serial_seconds, serial_cloud, serial_records = _run(topology)
        process_seconds, process_cloud, process_records = _run(
            topology, backend="process", max_workers=num_regions
        )
        identical = [r.as_dict() for r in process_records] == [
            r.as_dict() for r in serial_records
        ]
        scaling[topology] = {
            "regions": num_regions,
            "serial_seconds": serial_seconds,
            "process_seconds": process_seconds,
            "jobs_completed": len(serial_records),
            "jobs_failed": len(serial_cloud.failed),
            "migrations": len(serial_cloud.migrations),
            "records_identical": identical,
        }

    # -- routing-policy comparison on the uneven three-region topology -------
    policies = {}
    for routing in ROUTING_POLICIES:
        seconds, cloud, records = _run(POLICY_TOPOLOGY, routing=routing)
        loads = [
            report["normalised_load"] for report in cloud.region_reports().values()
        ]
        policies[routing] = {
            "seconds": seconds,
            "jobs_completed": len(records),
            "jobs_failed": len(cloud.failed),
            "migrations": len(cloud.migrations),
            "mean_fidelity": (
                sum(r.fidelity for r in records) / len(records) if records else None
            ),
            "mean_communication_time": (
                sum(r.communication_time for r in records) / len(records)
                if records else None
            ),
            "normalised_load_spread": max(loads) - min(loads),
        }

    payload = {
        "benchmark": "multiregion",
        "tiny": TINY,
        "skip_timing": SKIP_TIMING,
        "config": {
            "num_jobs": NUM_JOBS,
            "policy": "fidelity",
            "seed": 17,
            "topologies": list(TOPOLOGIES),
            "policy_topology": POLICY_TOPOLOGY,
        },
        "shard_scaling": scaling,
        "routing_policies": policies,
    }

    print(f"\nshard-count scaling ({NUM_JOBS} jobs, serial vs process):")
    print(f"{'topology':<14} {'shards':>6} {'serial':>9} {'process':>9} "
          f"{'done':>6} {'fail':>5} {'identical':>10}")
    for name, entry in scaling.items():
        print(f"{name:<14} {entry['regions']:>6} {entry['serial_seconds']:>9.3f} "
              f"{entry['process_seconds']:>9.3f} {entry['jobs_completed']:>6} "
              f"{entry['jobs_failed']:>5} {str(entry['records_identical']):>10}")
    print(f"\nrouting policies on {POLICY_TOPOLOGY}:")
    print(f"{'policy':<18} {'done':>6} {'fail':>5} {'mig':>5} {'fidelity':>9} "
          f"{'T_comm':>8} {'spread':>8}")
    for name, entry in policies.items():
        fidelity = entry["mean_fidelity"]
        comm = entry["mean_communication_time"]
        print(f"{name:<18} {entry['jobs_completed']:>6} {entry['jobs_failed']:>5} "
              f"{entry['migrations']:>5} "
              f"{fidelity:>9.5f} {comm:>8.2f} {entry['normalised_load_spread']:>8.3f}")

    # -- acceptance checks (all BEFORE the artifact write) -------------------
    for name, entry in scaling.items():
        assert entry["records_identical"], (
            f"{name}: process-parallel shards diverged from serial execution"
        )
        assert entry["jobs_completed"] + entry["jobs_failed"] == NUM_JOBS, (
            f"{name}: {entry['jobs_completed']} completed + "
            f"{entry['jobs_failed']} failed != {NUM_JOBS}"
        )
    for name, entry in policies.items():
        assert entry["jobs_completed"] + entry["jobs_failed"] == NUM_JOBS, (
            f"routing={name}: jobs unaccounted for"
        )
        assert entry["normalised_load_spread"] >= 0.0

    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")
