"""Benchmark: Table 1 — framework capability matrix.

Table 1 of the paper is a qualitative comparison of simulation frameworks;
the row claimed for "This work" is: *large-scale circuit simulation,
discrete-event simulation, noise-aware ✓, combined QPUs ✓*.  This benchmark
exercises (rather than asserts by fiat) each of those claims on a miniature
end-to-end run:

* discrete-event simulation — the run advances a DES clock through job
  events;
* noise awareness — calibration-derived error scores change which devices
  the error-aware policy selects, and fidelities respond to error rates;
* combined QPUs — every case-study job is larger than a single device and
  executes across several devices with classical communication.
"""

from __future__ import annotations

import pytest

from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv

from benchmarks.conftest import BENCHMARK_SEED


def test_table1_capability_row(benchmark):
    """Demonstrate the 'This work' row of Table 1 on a miniature workload."""

    def run():
        config = SimulationConfig(policy="fidelity", num_jobs=10, seed=BENCHMARK_SEED)
        env = QCloudSimEnv(config)
        records = env.run_until_complete()
        return env, records

    env, records = benchmark.pedantic(run, rounds=1, iterations=1)

    # Discrete-event simulation: the simulated clock advanced and events were logged.
    assert env.now > 0
    assert any(e.event == "start" for e in env.records.events)
    benchmark.extra_info["discrete_event_simulation"] = True

    # Noise awareness: devices expose calibration-derived error scores and the
    # error-aware policy concentrated work on the lowest-error devices.
    scores = {d.name: d.error_score() for d in env.cloud.devices}
    assert len(set(round(s, 8) for s in scores.values())) == len(scores)
    best_two = sorted(scores, key=scores.get)[:2]
    used = {name for r in records for name in r.devices}
    assert used == set(best_two)
    benchmark.extra_info["noise_aware"] = True

    # Combined QPUs: every job exceeded one device and ran across several with
    # classical communication delays.
    assert all(r.num_qubits > env.cloud.max_device_qubits for r in records)
    assert all(r.num_devices >= 2 for r in records)
    assert all(r.communication_time > 0 for r in records)
    benchmark.extra_info["combined_qpus"] = True

    print("\nTable 1 ('This work' row) capabilities exercised: "
          "discrete-event ✓, noise-aware ✓, combined QPUs ✓")
