"""Ablation benchmark: inter-device communication penalty φ and latency λ.

DESIGN.md calls out the communication model as a design choice worth
ablating: the paper fixes φ = 0.95 per link (Eq. 8) and λ = 0.02 s/qubit
(Eq. 9).  This benchmark sweeps both and checks the expected monotone
responses:

* raising φ towards 1 raises every strategy's final fidelity (no effect on
  runtime),
* raising λ increases total communication time (and hence the makespan)
  without touching fidelity,
* switching the qubit accounting from per-link to non-primary lowers the
  communication time for multi-device jobs.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_policy_simulation, sweep_communication_penalty
from repro.cloud.config import SimulationConfig

from benchmarks.conftest import BENCHMARK_SEED


def test_ablation_phi_sweep(benchmark):
    """Sweep the per-link fidelity penalty φ ∈ {0.85, 0.90, 0.95, 1.0}."""
    phis = [0.85, 0.90, 0.95, 1.0]
    config = SimulationConfig(num_jobs=40, seed=BENCHMARK_SEED)

    def run():
        return sweep_communication_penalty(phis, config=config, strategy="speed")

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nphi      mean_fidelity   T_sim(s)")
    for phi in phis:
        s = results[phi]
        print(f"{phi:<8} {s.mean_fidelity:<15.5f} {s.total_simulation_time:,.1f}")
        benchmark.extra_info[f"fidelity_at_phi_{phi}"] = round(s.mean_fidelity, 5)

    fidelities = [results[phi].mean_fidelity for phi in phis]
    assert fidelities == sorted(fidelities)
    runtimes = {round(results[phi].total_simulation_time, 6) for phi in phis}
    assert len(runtimes) == 1


def test_ablation_latency_sweep(benchmark):
    """Sweep the per-qubit classical latency λ ∈ {0, 0.02, 0.2}."""
    lams = [0.0, 0.02, 0.2]
    config = SimulationConfig(num_jobs=40, seed=BENCHMARK_SEED, policy="speed")

    def run():
        out = {}
        for lam in lams:
            cfg = SimulationConfig(**{**config.as_dict(), "comm_latency_per_qubit": lam})
            summary, _ = run_policy_simulation(cfg)
            out[lam] = summary
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nlambda   T_comm(s)      T_sim(s)        mean_fidelity")
    for lam in lams:
        s = results[lam]
        print(f"{lam:<8} {s.total_communication_time:<14.1f} "
              f"{s.total_simulation_time:<15.1f} {s.mean_fidelity:.5f}")
        benchmark.extra_info[f"T_comm_at_lambda_{lam}"] = round(s.total_communication_time, 2)

    comms = [results[lam].total_communication_time for lam in lams]
    assert comms == sorted(comms)
    assert results[0.0].total_communication_time == 0.0
    assert results[0.2].total_simulation_time > results[0.0].total_simulation_time
    # Fidelity is only affected indirectly (different completion times shift
    # later planning decisions); the effect must stay second-order.
    fids = [results[lam].mean_fidelity for lam in lams]
    assert max(fids) - min(fids) < 0.02


def test_ablation_comm_accounting(benchmark):
    """Per-link vs non-primary communication accounting."""
    config = SimulationConfig(num_jobs=40, seed=BENCHMARK_SEED, policy="speed")

    def run():
        per_link, _ = run_policy_simulation(config)
        cfg = SimulationConfig(**{**config.as_dict(), "comm_accounting": "non_primary"})
        non_primary, _ = run_policy_simulation(cfg)
        return per_link, non_primary

    per_link, non_primary = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nper_link    T_comm = {per_link.total_communication_time:,.1f} s")
    print(f"non_primary T_comm = {non_primary.total_communication_time:,.1f} s")
    benchmark.extra_info["per_link_T_comm"] = round(per_link.total_communication_time, 2)
    benchmark.extra_info["non_primary_T_comm"] = round(non_primary.total_communication_time, 2)
    assert non_primary.total_communication_time < per_link.total_communication_time
