"""PPO training micro-benchmark: serial vs vectorized rollout collection.

Measures the wall-clock cost of PPO rollout collection (the dominant cost of
``train_allocation_policy``) on the default five-device fleet at
``n_envs ∈ {1, 8, 16}``, plus a small end-to-end ``learn()`` comparison, and
records the numbers in ``BENCH_rl_train.json`` at the repository root — the
perf trajectory of the RL training stack.

Set ``REPRO_RL_BENCH_TINY=1`` (the CI smoke job does) to run a scaled-down
version that exercises the batched path in a few seconds without asserting
speedup targets.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.rl.ppo import PPO
from repro.rlenv.batched_env import BatchedQCloudEnv
from repro.rlenv.qcloud_env import QCloudGymEnv
from repro.rlenv.train import train_allocation_policy

TINY = os.environ.get("REPRO_RL_BENCH_TINY", "0") not in ("0", "", "false", "False")

#: Contention-tolerant mode: skip wall-clock assertions (correctness
#: assertions still run and still gate the artifact write).  Implied by TINY;
#: ``REPRO_BENCH_SKIP_TIMING=1`` sets it repo-wide for loaded CI machines.
SKIP_TIMING = TINY or os.environ.get(
    "REPRO_BENCH_SKIP_TIMING", "0"
) not in ("0", "", "false", "False")

#: Transitions per rollout (PPO's n_steps) for the collection benchmark.
ROLLOUT_STEPS = 512 if TINY else 2048
#: Timed rollouts per configuration (best-of is reported).
ROLLOUT_REPEATS = 1 if TINY else 3
#: Budget of the end-to-end learn() comparison.
TRAIN_TIMESTEPS = 1024 if TINY else 8192
#: Vector widths compared against the serial baseline.
VECTOR_WIDTHS = (8, 16)

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_rl_train.json"


def _make_model(n_envs: int, n_steps: int) -> PPO:
    if n_envs == 1:
        env = QCloudGymEnv(seed=0)
    else:
        env = BatchedQCloudEnv(n_envs=n_envs, seed=0)
    return PPO("MlpPolicy", env, n_steps=n_steps, batch_size=64, seed=0)


def _time_rollout_collection(n_envs: int) -> float:
    """Best-of-``ROLLOUT_REPEATS`` seconds to collect one full rollout."""
    model = _make_model(n_envs, ROLLOUT_STEPS)
    model.collect_rollouts()  # warm-up: env reset, allocator caches
    best = float("inf")
    for _ in range(ROLLOUT_REPEATS):
        start = time.perf_counter()
        model.collect_rollouts()
        best = min(best, time.perf_counter() - start)
    return best


def _time_training(n_envs: int) -> float:
    start = time.perf_counter()
    train_allocation_policy(
        total_timesteps=TRAIN_TIMESTEPS, n_steps=ROLLOUT_STEPS, seed=0, n_envs=n_envs
    )
    return time.perf_counter() - start


def test_rl_train_benchmark():
    """Serial vs vectorized PPO: collect rollouts, train, record the numbers."""
    serial_rollout = _time_rollout_collection(1)
    rollout_results = {
        "n_envs=1": {
            "seconds": serial_rollout,
            "steps_per_second": ROLLOUT_STEPS / serial_rollout,
        }
    }
    for width in VECTOR_WIDTHS:
        seconds = _time_rollout_collection(width)
        rollout_results[f"n_envs={width}"] = {
            "seconds": seconds,
            "steps_per_second": ROLLOUT_STEPS / seconds,
            "speedup_vs_serial": serial_rollout / seconds,
        }

    serial_train = _time_training(1)
    vector_train = _time_training(max(VECTOR_WIDTHS))
    training_results = {
        "total_timesteps": TRAIN_TIMESTEPS,
        "n_envs=1_seconds": serial_train,
        f"n_envs={max(VECTOR_WIDTHS)}_seconds": vector_train,
        "speedup_vs_serial": serial_train / vector_train,
    }

    payload = {
        "benchmark": "rl_train",
        "tiny": TINY,
        "skip_timing": SKIP_TIMING,
        "config": {
            "n_steps": ROLLOUT_STEPS,
            "rollout_repeats": ROLLOUT_REPEATS,
            "fleet": "default (5 devices)",
        },
        "rollout_collection": rollout_results,
        "training": training_results,
    }

    print(f"\nrollout collection ({ROLLOUT_STEPS} transitions, best of {ROLLOUT_REPEATS}):")
    for name, result in rollout_results.items():
        speedup = result.get("speedup_vs_serial")
        suffix = f"  ({speedup:.2f}x vs serial)" if speedup else ""
        print(f"  {name:<10} {result['seconds'] * 1e3:8.1f} ms"
              f"  {result['steps_per_second']:9.0f} steps/s{suffix}")
    print(f"training {TRAIN_TIMESTEPS} timesteps: serial {serial_train:.2f}s, "
          f"n_envs={max(VECTOR_WIDTHS)} {vector_train:.2f}s "
          f"({training_results['speedup_vs_serial']:.2f}x)")

    # Assertions gate the artifact: BENCH_rl_train.json is only (re)written
    # once they pass, so a failing run never overwrites a good baseline.
    if not SKIP_TIMING:
        # The acceptance target is >= 3x at n_envs=16; assert a slightly
        # softer floor so noisy CI runners don't flake the suite.
        assert rollout_results["n_envs=16"]["speedup_vs_serial"] >= 2.5

    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")
