"""Scenario overhead benchmark: what do world dynamics cost at runtime?

Two measurements, recorded in ``BENCH_scenarios.json`` at the repository
root (the perf trajectory of the dynamics subsystem):

* **Hook overhead** — a ``hooks-only`` scenario fires zero-volatility drift
  events at 3x the rate of the ``drift`` preset (hundreds of world events per
  run) without changing any scheduling outcome, so its wall-clock delta vs
  ``static`` isolates the pure cost of the event-source processes, the
  ``WorldEvent`` funnel and the lazy calibration rescale.  The full-size run
  asserts this stays **< 10 %**.
* **Preset wall-clocks** — every preset is timed and recorded.  Outage and
  traffic presets legitimately change the simulated work itself (requeued
  jobs re-execute, offline fleets stretch the schedule), so their deltas are
  reported as context, not asserted as overhead.

Set ``REPRO_SCENARIO_BENCH_TINY=1`` (the CI smoke job does) for a
seconds-fast run that exercises every preset without asserting the overhead
bound (sub-100-ms timings are dominated by noise).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv
from repro.dynamics import DriftSpec, Scenario, available_scenarios

TINY = os.environ.get("REPRO_SCENARIO_BENCH_TINY", "0") not in ("0", "", "false", "False")

#: Contention-tolerant mode: skip wall-clock assertions (correctness
#: assertions still run and still gate the artifact write).  Implied by TINY;
#: ``REPRO_BENCH_SKIP_TIMING=1`` sets it repo-wide for loaded CI machines.
SKIP_TIMING = TINY or os.environ.get(
    "REPRO_BENCH_SKIP_TIMING", "0"
) not in ("0", "", "false", "False")

#: Jobs per scenario run.
NUM_JOBS = 30 if TINY else 600
#: Timed repetitions per scenario (best-of is reported).
REPEATS = 1 if TINY else 5

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_scenarios.json"

#: Fires world events at the drift preset's exact rate but with volatility 0,
#: so scheduling outcomes are identical to static and the wall-clock delta
#: is pure hook cost (what the shipped ``drift`` preset pays in machinery).
HOOKS_ONLY = Scenario(
    name="hooks-only",
    drift=DriftSpec(
        interval=1800.0,
        volatility=0.0,
        coherence_volatility=0.0,
        recalibration_period=10_800.0,
    ),
)


def _run_once(scenario):
    start = time.perf_counter()
    env = QCloudSimEnv(
        SimulationConfig(num_jobs=NUM_JOBS, policy="fidelity"), scenario=scenario
    )
    records = env.run_until_complete()
    return time.perf_counter() - start, env, records


def test_scenario_overhead_benchmark():
    scenarios = {name: name for name in available_scenarios()}
    scenarios["hooks-only"] = HOOKS_ONLY
    _run_once(None)  # warm-up: device catalogue, coupling maps, caches

    # Interleave the repetitions round-robin so transient machine load hits
    # every scenario equally instead of biasing one overhead ratio.
    best = {name: float("inf") for name in scenarios}
    last = {}
    for _ in range(REPEATS):
        for name, scenario in scenarios.items():
            seconds, env, records = _run_once(scenario)
            best[name] = min(best[name], seconds)
            last[name] = (env, records)

    results = {}
    for name in scenarios:
        env, records = last[name]
        engine = env.scenario_engine
        results[name] = {
            "seconds": best[name],
            "jobs_completed": len(records),
            "world_events": len(engine.applied_events) if engine is not None else 0,
            "event_counts": engine.event_counts() if engine is not None else {},
            "requeues": sum(r.retries for r in records),
        }

    static_seconds = results["static"]["seconds"]
    for name, result in results.items():
        if name != "static":
            result["wallclock_vs_static"] = result["seconds"] / static_seconds - 1.0
    hook_overhead = results["hooks-only"]["wallclock_vs_static"]

    payload = {
        "benchmark": "scenarios",
        "tiny": TINY,
        "skip_timing": SKIP_TIMING,
        "config": {"num_jobs": NUM_JOBS, "policy": "fidelity", "repeats": REPEATS},
        "hook_overhead_vs_static": hook_overhead,
        "scenarios": results,
    }

    print(f"\nscenario wall-clock ({NUM_JOBS} jobs, best of {REPEATS}):")
    print(f"{'scenario':<14} {'seconds':>9} {'events':>7} {'requeues':>9} {'vs static':>10}")
    for name, result in results.items():
        delta = result.get("wallclock_vs_static")
        suffix = f"{delta:+10.1%}" if delta is not None else "    (base)"
        print(f"{name:<14} {result['seconds']:>9.3f} {result['world_events']:>7} "
              f"{result['requeues']:>9} {suffix}")
    print(f"hook overhead (hooks-only vs static): {hook_overhead:+.1%}")

    # Assertions gate the artifact: BENCH_scenarios.json is only (re)written
    # once they pass, so a failing run never overwrites a good baseline.
    for name in scenarios:
        assert results[name]["jobs_completed"] == NUM_JOBS, f"{name} lost jobs"
    assert results["hooks-only"]["world_events"] > (10 if TINY else 100)
    if not SKIP_TIMING:
        # Acceptance target: the drift/outage hook machinery stays under 10 %
        # wall-clock vs the static world at the drift preset's event rate.
        assert hook_overhead < 0.10, f"hook overhead {hook_overhead:.1%} exceeds 10%"

    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")
