"""Benchmark: Figure 5 — PPO training progress.

Paper (Fig. 5): over 100,000 training timesteps the average episode reward
climbs and plateaus around 0.70 while the entropy loss rises from roughly −7
towards −2 as the policy becomes more deterministic; learning stabilises
after about 40,000-50,000 timesteps.

Expected reproduced shape:

* the entropy loss starts at ≈ −7.09 (the entropy of the 5-dimensional unit
  Gaussian policy at initialisation) and increases monotonically-ish,
* the mean episode reward (mean device fidelity) improves over training and
  plateaus in the 0.6-0.9 band,
* the reward of the trained policy exceeds the reward of a random policy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.training_curve import downsample_curve, summarize_training_curve
from repro.rlenv.qcloud_env import QCloudGymEnv
from repro.rlenv.train import evaluate_policy

from benchmarks.conftest import TRAINING_N_ENVS, TRAINING_TIMESTEPS


def test_fig5_training_curve(benchmark, trained_rl_model):
    """Regenerate the Fig. 5 series (reward and entropy loss vs. timesteps)."""

    def regenerate():
        return trained_rl_model

    model, curve = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    stats = summarize_training_curve(curve)

    print("\n=== Fig. 5 series (downsampled) ===")
    print(f"{'timesteps':>10} {'ep_rew_mean':>12} {'entropy_loss':>13}")
    for point in downsample_curve(curve, max_points=20):
        print(f"{point['timesteps']:>10.0f} {point['ep_rew_mean']:>12.4f} "
              f"{point['entropy_loss']:>13.3f}")

    benchmark.extra_info.update(
        {
            "total_timesteps": TRAINING_TIMESTEPS,
            "n_envs": TRAINING_N_ENVS,
            "initial_reward": round(stats["initial_reward"], 4),
            "final_reward": round(stats["final_reward"], 4),
            "initial_entropy_loss": round(stats["initial_entropy_loss"], 3),
            "final_entropy_loss": round(stats["final_entropy_loss"], 3),
        }
    )

    # Entropy loss starts near -7 (5-dim unit Gaussian) and rises.
    assert curve[0]["entropy_loss"] == pytest.approx(-7.09, abs=0.25)
    assert stats["entropy_loss_change"] > 0.0

    # Reward improves and plateaus at a fidelity-like value.
    assert stats["reward_gain"] > 0.0
    assert 0.55 < stats["final_reward"] < 0.95

    # The trained policy beats a random policy on held-out jobs.
    eval_env = QCloudGymEnv(seed=999)
    trained_stats = evaluate_policy(model, eval_env, n_episodes=100, seed=11)

    class RandomModel:
        def __init__(self):
            self.rng = np.random.default_rng(0)

        def predict(self, obs, deterministic=True):
            return self.rng.random(5), {}

    random_stats = evaluate_policy(RandomModel(), QCloudGymEnv(seed=999), n_episodes=100, seed=11)
    benchmark.extra_info["trained_eval_reward"] = round(trained_stats["mean_reward"], 4)
    benchmark.extra_info["random_eval_reward"] = round(random_stats["mean_reward"], 4)
    assert trained_stats["mean_reward"] >= random_stats["mean_reward"] - 0.01


def test_fig5_ppo_update_throughput(benchmark):
    """Micro-benchmark: wall-clock cost of one PPO rollout + update cycle."""
    from repro.rl.ppo import PPO

    env = QCloudGymEnv(seed=3)
    model = PPO("MlpPolicy", env, n_steps=256, batch_size=64, n_epochs=5, seed=3)

    def one_cycle():
        model.collect_rollouts()
        model.train()
        return model.num_timesteps

    benchmark(one_cycle)
    assert model.num_timesteps >= 256
