"""Micro-benchmarks of the substrate layers.

Not a paper table/figure — these track the wall-clock cost of the building
blocks (the DES kernel, the qubit containers, the policy planners and the
NumPy policy network) so simulator-scalability regressions are caught.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv
from repro.des import Container, Environment
from repro.gymapi.spaces import Box
from repro.rl.policies import ActorCriticPolicy
from repro.scheduling.registry import create_policy

from benchmarks.conftest import BENCHMARK_SEED


def test_des_event_throughput(benchmark):
    """Cost of scheduling and processing 10,000 chained timeout events."""

    def run():
        env = Environment()

        def clock(env):
            for _ in range(10_000):
                yield env.timeout(1)

        env.process(clock(env))
        env.run()
        return env.now

    result = benchmark(run)
    assert result == 10_000


def test_des_bulk_schedule_throughput(benchmark):
    """Cost of bulk-scheduling 10,000 absolute-time arrival markers at once."""
    from repro.des.events import NORMAL, Event

    def run():
        env = Environment()

        def make_marker():
            marker = Event(env)
            marker._ok = True
            marker._value = None
            return marker

        env.schedule_batch((float(t), NORMAL, make_marker()) for t in range(10_000))
        env.run()
        return env.now

    result = benchmark(run)
    assert result == 9_999


def test_experiment_runner_overhead(benchmark):
    """Engine overhead: a 3-cell serial spec vs three bare simulations."""
    from repro.engine import ExperimentRunner, ExperimentSpec

    spec = ExperimentSpec(
        base_config=SimulationConfig(num_jobs=10, seed=BENCHMARK_SEED),
        strategies=("speed", "fidelity", "fair"),
    )
    runner = ExperimentRunner()

    def run():
        return runner.run(spec)

    result = benchmark(run)
    assert len(result) == 3
    assert {r.cell.strategy for r in result} == {"speed", "fidelity", "fair"}


def test_des_container_contention(benchmark):
    """Cost of 200 processes contending for a shared qubit container."""

    def run():
        env = Environment()
        container = Container(env, capacity=127, init=127)

        def worker(env, container, amount):
            for _ in range(5):
                yield container.get(amount)
                yield env.timeout(1)
                yield container.put(amount)

        for i in range(200):
            env.process(worker(env, container, 10 + (i % 20)))
        env.run()
        return container.level

    level = benchmark(run)
    assert level == 127


@pytest.mark.parametrize("policy_name", ["speed", "fidelity", "fair"])
def test_policy_planning_cost(benchmark, policy_name):
    """Cost of 1,000 planning decisions against a live five-device fleet."""
    config = SimulationConfig(num_jobs=1, seed=BENCHMARK_SEED)
    env = QCloudSimEnv(config)
    policy = create_policy(policy_name)
    jobs = [type("J", (), {"num_qubits": q})() for q in range(130, 251, 1)] * 9

    def run():
        count = 0
        for job in jobs:
            plan = policy.plan(job, env.cloud.devices)
            count += plan.num_devices
        return count

    total = benchmark(run)
    benchmark.extra_info["decisions"] = len(jobs)
    assert total >= len(jobs)


def test_policy_network_inference_cost(benchmark):
    """Cost of a batch-64 forward pass through the actor-critic MLP."""
    policy = ActorCriticPolicy(
        Box(0.0, np.inf, shape=(16,), dtype=np.float64),
        Box(0.0, 1.0, shape=(5,), dtype=np.float64),
        seed=0,
    )
    obs = np.random.default_rng(0).random((64, 16))

    def run():
        actions, values, log_probs = policy.forward(obs)
        return actions.shape

    shape = benchmark(run)
    assert shape == (64, 5)


def test_end_to_end_simulation_cost(benchmark):
    """Wall-clock cost of one complete 30-job simulation (speed policy)."""

    def run():
        env = QCloudSimEnv(SimulationConfig(num_jobs=30, seed=BENCHMARK_SEED))
        return len(env.run_until_complete())

    completed = benchmark(run)
    assert completed == 30
