"""Ablation benchmark: partition granularity (device fan-out per job).

The communication penalty φ^(k-1) and the per-link latency make the number of
devices per job (k) the main lever behind the Table 2 differences.  This
benchmark compares the greedy-fill strategies against the maximally
fragmented even-split baseline and reports how fidelity and communication
respond to fan-out:

* even-split uses (nearly) all five devices per job → highest communication
  time and lowest fidelity,
* the error-aware strategy uses the fewest devices per job → lowest
  communication time,
* mean fidelity decreases as mean devices-per-job increases (across
  strategies on the same workload).
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_case_study
from repro.cloud.config import SimulationConfig

from benchmarks.conftest import BENCHMARK_SEED

STRATEGIES = ("fidelity", "speed", "fair", "even_split")


def test_ablation_partition_fanout(benchmark):
    config = SimulationConfig(num_jobs=40, seed=BENCHMARK_SEED)

    def run():
        return run_case_study(config, strategies=STRATEGIES)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    summaries = result.summaries

    print("\nstrategy     devices/job   mean_fidelity   T_comm(s)")
    for name in STRATEGIES:
        s = summaries[name]
        print(f"{name:<12} {s.mean_devices_per_job:<13.2f} {s.mean_fidelity:<15.5f} "
              f"{s.total_communication_time:,.1f}")
        benchmark.extra_info[f"{name}_devices_per_job"] = round(s.mean_devices_per_job, 2)
        benchmark.extra_info[f"{name}_fidelity"] = round(s.mean_fidelity, 5)

    # Fan-out extremes.
    assert summaries["even_split"].mean_devices_per_job == max(
        s.mean_devices_per_job for s in summaries.values()
    )
    assert summaries["fidelity"].mean_devices_per_job == min(
        s.mean_devices_per_job for s in summaries.values()
    )
    assert summaries["even_split"].total_communication_time == max(
        s.total_communication_time for s in summaries.values()
    )

    # Fidelity decreases with fan-out: the strategy ordering by devices/job is
    # the reverse of the ordering by fidelity for the extreme points.
    assert summaries["even_split"].mean_fidelity < summaries["fidelity"].mean_fidelity
    assert summaries["even_split"].mean_fidelity <= summaries["speed"].mean_fidelity + 1e-9
