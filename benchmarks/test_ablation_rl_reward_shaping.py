"""Ablation benchmark: communication-aware reward shaping for the RL agent.

The paper trains its PPO agent to maximise the mean device fidelity *before*
the inter-device communication penalty, and explicitly lists
"communication-aware reward shaping" as future work (§6.6).  This benchmark
implements that extension: a second agent is trained on a reward that
includes the φ^(k-1) penalty, so spreading a job over many devices is
penalised during training.

Expected outcome: the communication-aware agent allocates each job to fewer
devices than the fidelity-only agent, and its deployed schedule has a lower
total communication time (and at least comparable final fidelity, since the
penalty it optimises is exactly the one applied at execution time).
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_policy_simulation
from repro.cloud.config import SimulationConfig
from repro.rlenv.train import train_allocation_policy
from repro.scheduling.rl_policy import RLAllocationPolicy

from benchmarks.conftest import BENCHMARK_SEED, TRAINING_N_STEPS, TRAINING_TIMESTEPS


def test_ablation_rl_reward_shaping(benchmark):
    config = SimulationConfig(num_jobs=40, seed=BENCHMARK_SEED, policy="rlbase")
    # Keep this ablation affordable: a fraction of the main training budget is
    # enough for the device-count preference to emerge.
    timesteps = max(4096, TRAINING_TIMESTEPS // 4)

    def run():
        plain_model, _ = train_allocation_policy(
            total_timesteps=timesteps, n_steps=TRAINING_N_STEPS, seed=7,
            communication_aware=False,
        )
        shaped_model, _ = train_allocation_policy(
            total_timesteps=timesteps, n_steps=TRAINING_N_STEPS, seed=7,
            communication_aware=True,
        )
        plain_summary, _ = run_policy_simulation(
            config, policy=RLAllocationPolicy(plain_model)
        )
        shaped_summary, _ = run_policy_simulation(
            config, policy=RLAllocationPolicy(shaped_model)
        )
        return plain_summary, shaped_summary

    plain, shaped = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nreward            devices/job   T_comm(s)     mean_fidelity")
    print(f"fidelity-only     {plain.mean_devices_per_job:<13.2f} "
          f"{plain.total_communication_time:<13.1f} {plain.mean_fidelity:.5f}")
    print(f"comm-aware        {shaped.mean_devices_per_job:<13.2f} "
          f"{shaped.total_communication_time:<13.1f} {shaped.mean_fidelity:.5f}")

    benchmark.extra_info["plain_devices_per_job"] = round(plain.mean_devices_per_job, 2)
    benchmark.extra_info["shaped_devices_per_job"] = round(shaped.mean_devices_per_job, 2)
    benchmark.extra_info["plain_T_comm"] = round(plain.total_communication_time, 1)
    benchmark.extra_info["shaped_T_comm"] = round(shaped.total_communication_time, 1)

    # Communication-aware shaping must not increase fan-out or communication.
    assert shaped.mean_devices_per_job <= plain.mean_devices_per_job + 1e-9
    assert shaped.total_communication_time <= plain.total_communication_time + 1e-9
