"""Million-job scale benchmark: the flat-event fast path at full stretch.

One workload — a million-job diurnal trace (Poisson arrivals whose rate
swings between a night-time base and a daytime peak, §6 workload shapes,
generated vectorised by :func:`~repro.workloads.arrivals.bulk_diurnal_arrival_times`)
— pushed through the flat-event dispatcher with constant-memory streaming
records.  Results land in ``BENCH_scale.json`` at the repository root:

* **Dispatch throughput** — completed jobs per wall-clock second over the
  end-to-end run (environment construction + event loop), best of
  ``REPEATS`` with the garbage collector paused.  The acceptance target is
  **30k jobs/s**; because identical code swings +/-15% with the machine's
  wall-clock weather, the full-size run asserts a noise-tolerant hard floor
  (``THROUGHPUT_FLOOR``) plus the machine-invariant speedup ratio against
  the legacy engine measured in the same run.
* **Legacy-engine baseline** — the same workload shape through the per-job
  process engine (``fast_path=False``), sized down so it finishes in
  seconds; the ratio contextualises the fast-path speedup on *this* machine.
* **Event-loop stats** — :class:`~repro.des.monitoring.EventLoopStats` of
  the measured run; the flat path sustains O(1) events per job (one feed,
  one pooled completion), asserted as ``events <= 3 * jobs``.
* **Streaming-memory sublinearity** — ``tracemalloc`` peak of construction
  + run at two workload sizes.  Everything the engine allocates during the
  run (pending deque, event pool, P² sketches, event counters) is bounded
  by concurrency, not workload length, so quadrupling the job count must
  not double the traced peak.

All assertions run **before** the JSON artifact is written, so a failing
run cannot leave a fresh-but-wrong ``BENCH_scale.json`` behind.

Set ``REPRO_SCALE_BENCH_TINY=1`` (the CI smoke job does) for a
seconds-fast run that exercises every stage without the full-size floors.
"""

from __future__ import annotations

import gc
import json
import os
import resource
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv
from repro.cloud.fastpath import JobTable
from repro.cloud.records_stream import StreamingRecordsManager
from repro.des.monitoring import EventLoopStats
from repro.workloads.arrivals import bulk_diurnal_arrival_times

TINY = os.environ.get("REPRO_SCALE_BENCH_TINY", "0") not in ("0", "", "false", "False")

#: Contention-tolerant mode: skip wall-clock assertions (correctness and
#: memory assertions still run and still gate the artifact write).  Implied
#: by TINY; ``REPRO_BENCH_SKIP_TIMING=1`` sets it repo-wide for loaded CI
#: machines.
SKIP_TIMING = TINY or os.environ.get(
    "REPRO_BENCH_SKIP_TIMING", "0"
) not in ("0", "", "false", "False")

#: Jobs in the measured trace.
NUM_JOBS = 5_000 if TINY else 1_000_000
#: Jobs in the legacy-engine baseline run (per-job processes are ~5x
#: slower, so the baseline is sized to finish in seconds).
BASELINE_JOBS = 500 if TINY else 5_000
#: Timed repetitions of the measured run (best-of is reported).
REPEATS = 1 if TINY else 3
#: Workload sizes for the traced-memory sublinearity check (1:4 ratio).
MEM_SMALL, MEM_LARGE = (1_000, 4_000) if TINY else (50_000, 200_000)
#: Acceptance target for the full-size run: >= 10x the plain-broker dispatch
#: throughput regime of BENCH_serve.json.  Best-of-REPEATS runs on an idle
#: machine land around this number and the checked-in artifact must meet it.
THROUGHPUT_TARGET = 30_000.0
#: Hard floor asserted on every full-size run.  Identical code measures
#: 25k-33k jobs/s depending on the machine's wall-clock weather, so the
#: hard gate sits well under that band — it catches catastrophic
#: regressions (the legacy engine measures ~6-8k on the same workload)
#: while the speedup-vs-legacy ratio (measured in the same run, so
#: machine-invariant) guards incremental ones.
THROUGHPUT_FLOOR = 20_000.0

#: Workload parameters (fixed so BENCH_scale.json is comparable across PRs).
SEED = 42
QUBIT_RANGE = (2, 16)
DEPTH_RANGE = (5, 20)
SHOTS_RANGE = (100, 1_000)
BASE_RATE = 2.5
PEAK_RATE = 5.5
PERIOD_MINUTES = 1_440.0

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_scale.json"


def _make_table(num_jobs: int) -> JobTable:
    rng = np.random.default_rng(SEED)
    arrivals = bulk_diurnal_arrival_times(
        rng,
        num_jobs,
        base_rate=BASE_RATE,
        peak_rate=PEAK_RATE,
        period=PERIOD_MINUTES,
    )
    return JobTable.synthetic(
        num_jobs,
        seed=SEED,
        qubit_range=QUBIT_RANGE,
        depth_range=DEPTH_RANGE,
        shots_range=SHOTS_RANGE,
        arrival_times=arrivals,
    )


def _timed_fast_run(num_jobs: int):
    """Construct and run the fast-path engine, timing the whole thing."""
    table = _make_table(num_jobs)
    records = StreamingRecordsManager()
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        env = QCloudSimEnv(config=SimulationConfig(), job_table=table, records=records)
        env.run()
        wall = time.perf_counter() - start
    finally:
        gc.enable()
    assert env.fast_path_active
    return wall, env, records


def _legacy_baseline(num_jobs: int):
    """The same workload shape through the per-job process engine."""
    table = _make_table(num_jobs)
    jobs = [table.job_for(row) for row in range(num_jobs)]
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        env = QCloudSimEnv(config=SimulationConfig(), jobs=jobs, fast_path=False)
        env.run()
        wall = time.perf_counter() - start
    finally:
        gc.enable()
    assert not env.fast_path_active
    completed = len(env.records.completed_records)
    assert completed == num_jobs, f"legacy baseline completed {completed}/{num_jobs}"
    return wall, completed / wall


def _traced_peaks():
    """tracemalloc peak of construction + run at two workload sizes."""
    peaks = {}
    for num_jobs in (MEM_SMALL, MEM_LARGE):
        table = _make_table(num_jobs)
        records = StreamingRecordsManager()
        gc.collect()
        tracemalloc.start()
        try:
            env = QCloudSimEnv(config=SimulationConfig(), job_table=table, records=records)
            env.run()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert records.completed == num_jobs
        peaks[num_jobs] = peak
    return peaks


def test_scale_benchmark():
    _timed_fast_run(min(2_000, NUM_JOBS))  # warm-up: catalogues, caches

    baseline_seconds, baseline_jps = _legacy_baseline(BASELINE_JOBS)

    best = None
    for _ in range(REPEATS):
        wall, env, records = _timed_fast_run(NUM_JOBS)
        if best is None or wall < best[0]:
            best = (wall, env, records)
    wall, env, records = best
    throughput = records.completed / wall
    stats = EventLoopStats.from_env(env, wall)

    peaks = _traced_peaks()
    mem_ratio = peaks[MEM_LARGE] / peaks[MEM_SMALL]
    jobs_ratio = MEM_LARGE / MEM_SMALL
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0

    # -- acceptance checks (all BEFORE the artifact write) -------------------
    assert records.completed == NUM_JOBS, (
        f"completed {records.completed}/{NUM_JOBS} jobs"
    )
    assert stats.events_processed <= 3 * NUM_JOBS, (
        f"flat path used {stats.events_processed} events for {NUM_JOBS} jobs "
        "(expected O(1) events/job)"
    )
    assert mem_ratio < jobs_ratio / 2.0, (
        f"streaming peak memory grew {mem_ratio:.2f}x for {jobs_ratio:.0f}x the "
        f"jobs ({peaks}) — not sublinear"
    )
    if not SKIP_TIMING:
        assert throughput >= THROUGHPUT_FLOOR, (
            f"dispatch throughput {throughput:,.0f} jobs/s below the "
            f"{THROUGHPUT_FLOOR:,.0f} floor"
        )
        assert throughput >= 3.0 * baseline_jps, (
            f"fast path ({throughput:,.0f} jobs/s) is not clearly faster than "
            f"the legacy engine ({baseline_jps:,.0f} jobs/s)"
        )

    serve_baseline = None
    serve_path = RESULTS_PATH.parent / "BENCH_serve.json"
    if serve_path.exists():
        serve_payload = json.loads(serve_path.read_text())
        serve_baseline = (
            serve_payload.get("mixes", {})
            .get("plain-broker", {})
            .get("dispatch_throughput_jobs_per_s")
        )

    payload = {
        "benchmark": "scale",
        "tiny": TINY,
        "skip_timing": SKIP_TIMING,
        "config": {
            "num_jobs": NUM_JOBS,
            "seed": SEED,
            "qubit_range": list(QUBIT_RANGE),
            "depth_range": list(DEPTH_RANGE),
            "shots_range": list(SHOTS_RANGE),
            "arrival": "diurnal",
            "base_rate": BASE_RATE,
            "peak_rate": PEAK_RATE,
            "period_minutes": PERIOD_MINUTES,
            "repeats": REPEATS,
        },
        "throughput": {
            "wall_seconds_best": wall,
            "jobs_completed": records.completed,
            "dispatch_throughput_jobs_per_s": throughput,
            "throughput_target_jobs_per_s": None if TINY else THROUGHPUT_TARGET,
            "throughput_floor_jobs_per_s": None if TINY else THROUGHPUT_FLOOR,
            "legacy_baseline": {
                "num_jobs": BASELINE_JOBS,
                "wall_seconds": baseline_seconds,
                "jobs_per_s": baseline_jps,
            },
            "speedup_vs_legacy_engine": throughput / baseline_jps,
            "serve_bench_plain_broker_jobs_per_s": serve_baseline,
        },
        "event_loop": stats.as_dict(),
        "streaming_aggregates": records.aggregates(),
        "memory": {
            "peak_rss_mb": peak_rss_mb,
            "traced_peak_bytes": {str(n): peaks[n] for n in peaks},
            "traced_peak_ratio": mem_ratio,
            "jobs_ratio": jobs_ratio,
        },
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"\nscale benchmark ({NUM_JOBS:,} jobs, diurnal arrivals, "
          f"best of {REPEATS}):")
    print(f"  dispatch throughput : {throughput:,.0f} jobs/s "
          f"({wall:.1f}s wall)")
    print(f"  legacy engine       : {baseline_jps:,.0f} jobs/s "
          f"({BASELINE_JOBS:,} jobs) -> {throughput / baseline_jps:.1f}x")
    print(f"  event loop          : {stats.events_processed:,} events, "
          f"{stats.events_per_second:,.0f} events/s, "
          f"max batch {stats.max_batch_size}")
    print(f"  streaming memory    : {peaks[MEM_SMALL]:,}B @ {MEM_SMALL:,} jobs "
          f"-> {peaks[MEM_LARGE]:,}B @ {MEM_LARGE:,} jobs "
          f"({mem_ratio:.2f}x for {jobs_ratio:.0f}x)")
    print(f"  peak RSS            : {peak_rss_mb:,.0f} MB")
    print(f"wrote {RESULTS_PATH}")
