"""Adaptive-QoS benchmark: closed-loop control vs a static configuration.

Two measurements, recorded in ``BENCH_adaptive.json`` at the repository root
(the headline numbers of the adaptive control plane):

* **SLO attainment uplift** — the ``predictive`` policy (AIMD admission,
  SLO-aware planning, elastic pools, proactive checkpointing) against the
  all-off ``static`` policy on two hostile scenario × tenant-mix pairs:
  a ``black-friday`` arrival storm over the ``noisy-neighbor`` mix, and a
  ``flaky-fleet`` outage regime over the ``batch-vs-interactive`` mix.  The
  metric is mean SLO attainment over the SLO-bearing tenants (tenants with
  at least one declared target); the run asserts adaptive >= static on both
  pairs.
* **Control-loop overhead** — the ``reactive`` policy against no adaptive
  policy at all on a static scenario with the ``single`` tenant mix, where
  every controller is provably outcome-neutral (no SLOs to bias toward, no
  token buckets to adjust, one priority class): records are byte-identical,
  so the paired per-round wall-clock ratio isolates the pure cost of signal
  collection plus control ticks.  The full-size run asserts it stays
  **< 10 %**.

Set ``REPRO_ADAPTIVE_BENCH_TINY=1`` (the CI smoke job does) for a
seconds-fast run that still asserts the attainment ordering but skips the
wall-clock bound.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv

TINY = os.environ.get("REPRO_ADAPTIVE_BENCH_TINY", "0") not in ("0", "", "false", "False")

#: Contention-tolerant mode: skip wall-clock assertions (attainment and
#: correctness assertions still run and still gate the artifact write).
#: Implied by TINY; ``REPRO_BENCH_SKIP_TIMING=1`` sets it repo-wide.
SKIP_TIMING = TINY or os.environ.get(
    "REPRO_BENCH_SKIP_TIMING", "0"
) not in ("0", "", "false", "False")

#: Jobs per attainment run.
NUM_JOBS = 40 if TINY else 160
#: Jobs per overhead run (static scenario, high arrival pressure).
OVERHEAD_JOBS = 60 if TINY else 400
#: Timed repetitions for the overhead measurement (paired rounds).
REPEATS = 1 if TINY else 5
SEED = 7

#: The two hostile scenario × mix pairs the control plane is judged on.
SCENARIO_PAIRS = (
    ("black-friday", "noisy-neighbor"),
    ("flaky-fleet", "batch-vs-interactive"),
)

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_adaptive.json"


def _slo_attainments(env):
    """Per-tenant attainment over the SLO-bearing tenants of the run's mix."""
    out = {}
    for report in env.broker.tenant_reports():
        slo = env.tenant_mix.tenant(report.tenant).slo
        has_slo = (
            slo.queue_deadline is not None
            or slo.completion_deadline is not None
            or slo.fidelity_floor is not None
        )
        if has_slo and report.attainment is not None:
            out[report.tenant] = report.attainment
    return out


def _attainment_run(scenario, tenants, adaptive):
    config = SimulationConfig(
        num_jobs=NUM_JOBS,
        seed=SEED,
        policy="fidelity",
        scenario=scenario,
        tenants=tenants,
        adaptive=adaptive,
    )
    env = QCloudSimEnv(config)
    records = env.run_until_complete()
    per_tenant = _slo_attainments(env)
    assert per_tenant, f"{tenants} declares no SLO-bearing tenants"
    return {
        "mean_slo_attainment": sum(per_tenant.values()) / len(per_tenant),
        "per_tenant_attainment": per_tenant,
        "jobs_completed": len(records),
        "jobs_rejected": len(env.broker.rejected_jobs),
        "jobs_failed": len(env.broker.failed_jobs),
        "control_ticks": env.adaptive_engine.ticks if env.adaptive_engine else 0,
    }


def _overhead_run(adaptive):
    config = SimulationConfig(
        num_jobs=OVERHEAD_JOBS,
        seed=SEED,
        policy="fidelity",
        arrival="poisson",
        arrival_rate=0.5,
        tenants="single",
        adaptive=adaptive,
    )
    start = time.perf_counter()
    env = QCloudSimEnv(config)
    records = env.run_until_complete()
    return time.perf_counter() - start, env, records


def test_adaptive_qos_benchmark():
    # -- SLO attainment: predictive vs static on both hostile pairs ----------
    attainment = {}
    for scenario, tenants in SCENARIO_PAIRS:
        pair_key = f"{scenario}+{tenants}"
        attainment[pair_key] = {
            policy: _attainment_run(scenario, tenants, policy)
            for policy in ("static", "predictive")
        }
        static = attainment[pair_key]["static"]["mean_slo_attainment"]
        adaptive = attainment[pair_key]["predictive"]["mean_slo_attainment"]
        attainment[pair_key]["attainment_uplift"] = adaptive - static

    # -- control-loop overhead on a static scenario --------------------------
    _overhead_run(None)  # warm-up: device catalogue, coupling maps, caches
    rounds = {None: [], "reactive": []}
    last = {}
    for _ in range(REPEATS):
        # Interleave rounds so machine-load transients hit both sides equally.
        for adaptive in (None, "reactive"):
            seconds, env, records = _overhead_run(adaptive)
            rounds[adaptive].append(seconds)
            last[adaptive] = (env, records)
    # Paired per-round ratio: a load spike slows both sides of a round and
    # cancels, where best-of-rounds would let it land on only one side.
    overhead = min(
        adaptive / plain - 1.0
        for adaptive, plain in zip(rounds["reactive"], rounds[None])
    )
    env_reactive, records_reactive = last["reactive"]
    env_plain, records_plain = last[None]

    payload = {
        "benchmark": "adaptive",
        "tiny": TINY,
        "skip_timing": SKIP_TIMING,
        "config": {
            "num_jobs": NUM_JOBS,
            "overhead_jobs": OVERHEAD_JOBS,
            "policy": "fidelity",
            "seed": SEED,
            "repeats": REPEATS,
        },
        "slo_attainment": attainment,
        "control_loop": {
            "seconds_plain": min(rounds[None]),
            "seconds_reactive": min(rounds["reactive"]),
            "paired_overhead_vs_plain": overhead,
            "control_ticks": env_reactive.adaptive_engine.ticks,
        },
    }

    print(f"\nadaptive SLO attainment ({NUM_JOBS} jobs, seed {SEED}):")
    print(f"{'scenario+mix':<38} {'static':>8} {'adaptive':>9} {'uplift':>8}")
    for pair_key, result in attainment.items():
        print(f"{pair_key:<38} "
              f"{result['static']['mean_slo_attainment']:>8.3f} "
              f"{result['predictive']['mean_slo_attainment']:>9.3f} "
              f"{result['attainment_uplift']:>+8.3f}")
    print(f"control-loop overhead (reactive vs none, {OVERHEAD_JOBS} jobs, "
          f"paired best of {REPEATS}): {overhead:+.1%}")

    # Assertions gate the artifact: BENCH_adaptive.json is only (re)written
    # once they pass, so a failing run never overwrites a good baseline.
    for pair_key, result in attainment.items():
        assert result["attainment_uplift"] >= 0.0, (
            f"adaptive attainment below static on {pair_key}: "
            f"{result['predictive']['mean_slo_attainment']:.3f} < "
            f"{result['static']['mean_slo_attainment']:.3f}"
        )
        assert result["predictive"]["control_ticks"] > 0, "control loop never ticked"
        assert result["static"]["control_ticks"] == 0
    # The overhead runs do identical simulated work on both sides: on the
    # single mix every controller is outcome-neutral, so any wall-clock
    # delta is pure control-plane cost, not a different schedule.
    assert len(records_plain) == len(records_reactive) == OVERHEAD_JOBS
    assert [r.as_dict() for r in records_reactive] == [r.as_dict() for r in records_plain]
    if not SKIP_TIMING:
        # Acceptance target: signal collection + control ticks stay under
        # 10 % wall-clock on a run where the controllers have nothing to do.
        assert overhead < 0.10, f"control-loop overhead {overhead:.1%} exceeds 10%"

    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")
