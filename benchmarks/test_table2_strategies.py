"""Benchmark: Table 2 — performance of the four allocation strategies.

Paper (Table 2, 1,000 large circuits on five 127-qubit devices):

    Mode      T_sim (s)    fidelity            T_comm (s)
    speed     108,775.38   0.65332 ± 0.01438    5,707.80
    fidelity  209,873.02   0.68781 ± 0.02605    3,822.74
    fair      108,778.16   0.64373 ± 0.01478    5,707.80
    rlbase    106,206.21   0.62087 ± 0.01301    6,105.52

Expected reproduced *shape* (absolute numbers depend on the synthetic
calibration snapshots and the scaled job count):

* the error-aware ("fidelity") strategy achieves the highest mean fidelity,
  the lowest total communication time, and a roughly 2-4x longer makespan;
* speed and fair are the fast strategies with intermediate fidelity;
* rlbase spreads jobs over the most devices, giving the highest
  communication time and the lowest mean fidelity.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_case_study
from repro.analysis.reporting import format_table2

from benchmarks.conftest import case_study_config


@pytest.fixture(scope="module")
def table2_result(trained_rl_model):
    model, _curve = trained_rl_model
    return run_case_study(case_study_config(), rl_model=model)


def test_table2_full_comparison(benchmark, table2_result):
    """Regenerate all four Table 2 rows and check the qualitative ordering."""

    def regenerate():
        return table2_result

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    summaries = result.summaries

    print("\n" + format_table2(summaries))
    for name, summary in summaries.items():
        benchmark.extra_info[f"{name}_T_sim_s"] = round(summary.total_simulation_time, 2)
        benchmark.extra_info[f"{name}_fidelity"] = round(summary.mean_fidelity, 5)
        benchmark.extra_info[f"{name}_T_comm_s"] = round(summary.total_communication_time, 2)

    assert set(summaries) == {"speed", "fidelity", "fair", "rlbase"}

    # --- fidelity column shape -------------------------------------------------
    assert summaries["fidelity"].mean_fidelity == max(s.mean_fidelity for s in summaries.values())
    assert summaries["rlbase"].mean_fidelity == min(s.mean_fidelity for s in summaries.values())

    # --- communication column shape ---------------------------------------------
    assert summaries["fidelity"].total_communication_time == min(
        s.total_communication_time for s in summaries.values()
    )
    assert summaries["rlbase"].total_communication_time == max(
        s.total_communication_time for s in summaries.values()
    )

    # --- runtime column shape ---------------------------------------------------
    t = {k: s.total_simulation_time for k, s in summaries.items()}
    assert t["fidelity"] > 1.5 * t["speed"]
    assert abs(t["speed"] - t["fair"]) / t["speed"] < 0.35


@pytest.mark.parametrize("strategy", ["speed", "fidelity", "fair"])
def test_table2_single_strategy_runtime(benchmark, strategy):
    """Wall-clock cost of simulating one Table 2 row (simulator throughput)."""
    from repro.analysis.experiments import run_policy_simulation

    config = case_study_config(num_jobs=40).with_policy(strategy)

    def run():
        summary, _records = run_policy_simulation(config)
        return summary

    summary = benchmark(run)
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["mean_fidelity"] = round(summary.mean_fidelity, 5)
    assert summary.num_jobs == 40
