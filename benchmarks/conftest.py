"""Shared configuration for the benchmark harness.

Every benchmark runs a *scaled-down* version of the paper's experiment by
default so the whole harness completes in a couple of minutes.  Set
``REPRO_FULL=1`` to run the full-size experiments (1,000 jobs, 100,000 PPO
timesteps) — expect several minutes of wall-clock time.

Each benchmark prints the regenerated table/figure data to stdout (run pytest
with ``-s`` to see it) and stores the headline numbers in
``benchmark.extra_info`` so they appear in ``pytest-benchmark``'s JSON output.
"""

from __future__ import annotations

import os

import pytest

from repro.cloud.config import SimulationConfig

#: Full-scale mode replicates the paper's exact experiment sizes.
FULL_SCALE = os.environ.get("REPRO_FULL", "0") not in ("0", "", "false", "False")

#: Number of case-study jobs (paper: 1,000).
CASE_STUDY_JOBS = 1000 if FULL_SCALE else 120
#: PPO training budget (paper: 100,000 timesteps).
TRAINING_TIMESTEPS = 100_000 if FULL_SCALE else 16_384
#: PPO rollout length used by the training benchmarks.
TRAINING_N_STEPS = 2048 if FULL_SCALE else 1024
#: Parallel rollout environments for the Fig. 5 / training-curve harness.
#: The vectorized stack (PR 2) makes rollout collection severalfold faster;
#: set ``REPRO_N_ENVS=1`` to reproduce the bit-exact serial training curve.
TRAINING_N_ENVS = int(os.environ.get("REPRO_N_ENVS", "8"))
#: Workload/calibration seed shared by all benchmarks.
BENCHMARK_SEED = 2025


def case_study_config(**overrides) -> SimulationConfig:
    """The benchmark-harness simulation configuration (§7 parameters)."""
    params = dict(num_jobs=CASE_STUDY_JOBS, seed=BENCHMARK_SEED)
    params.update(overrides)
    return SimulationConfig(**params)


@pytest.fixture(scope="session")
def trained_rl_model():
    """PPO allocation policy shared by every benchmark that needs one."""
    from repro.rlenv.train import train_allocation_policy

    model, curve = train_allocation_policy(
        total_timesteps=TRAINING_TIMESTEPS,
        n_steps=TRAINING_N_STEPS,
        seed=0,
        n_envs=TRAINING_N_ENVS,
    )
    return model, curve
