"""Serve-layer benchmark: broker dispatch throughput under heavy arrivals.

Two measurements, recorded in ``BENCH_serve.json`` at the repository root
(the perf trajectory of the serve subsystem):

* **Single-tenant overhead** — the same high-arrival-rate workload is pushed
  through the plain broker and through the serve broker with the ``single``
  mix (whose results are byte-identical by construction).  The wall-clock
  delta isolates the pure cost of the serve machinery: admission checks,
  fair-tag bookkeeping and the sorted dispatch queue.  The full-size run
  asserts this stays **< 10 %**.
* **Multi-tenant dispatch throughput** — every multi-tenant preset is timed
  on the same arrival storm and reported as jobs dispatched (completed +
  rejected) per wall-clock second.  Admission shedding and class overtaking
  legitimately change the simulated work, so these are context, not
  asserted overhead.

Set ``REPRO_SERVE_BENCH_TINY=1`` (the CI smoke job does) for a seconds-fast
run that exercises every preset without asserting the overhead bound.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv
from repro.serve import available_tenant_mixes

TINY = os.environ.get("REPRO_SERVE_BENCH_TINY", "0") not in ("0", "", "false", "False")

#: Contention-tolerant mode: skip wall-clock assertions (correctness
#: assertions still run and still gate the artifact write).  Implied by TINY;
#: ``REPRO_BENCH_SKIP_TIMING=1`` sets it repo-wide for loaded CI machines.
SKIP_TIMING = TINY or os.environ.get(
    "REPRO_BENCH_SKIP_TIMING", "0"
) not in ("0", "", "false", "False")

#: Jobs per run — arriving as a fast Poisson storm to stress the dispatch queue.
NUM_JOBS = 60 if TINY else 600
#: Poisson arrival rate (jobs/second of simulated time): far above the fleet's
#: drain rate, so the dispatch queue stays deep for most of the run.
ARRIVAL_RATE = 0.5
#: Timed repetitions per configuration (best-of is reported).
REPEATS = 1 if TINY else 5

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve.json"


def _config(tenants):
    return SimulationConfig(
        num_jobs=NUM_JOBS,
        policy="fidelity",
        arrival="poisson",
        arrival_rate=ARRIVAL_RATE,
        tenants=tenants,
    )


def _run_once(tenants):
    start = time.perf_counter()
    env = QCloudSimEnv(_config(tenants))
    records = env.run_until_complete()
    return time.perf_counter() - start, env, records


def test_serve_overhead_benchmark():
    configurations = [None] + list(available_tenant_mixes())
    _run_once(None)  # warm-up: device catalogue, coupling maps, caches

    # Interleave repetitions round-robin so transient machine load hits every
    # configuration equally instead of biasing one overhead ratio.
    best = {name: float("inf") for name in configurations}
    rounds = {name: [] for name in configurations}
    last = {}
    for _ in range(REPEATS):
        for name in configurations:
            seconds, env, records = _run_once(name)
            best[name] = min(best[name], seconds)
            rounds[name].append(seconds)
            last[name] = (env, records)

    results = {}
    for name in configurations:
        env, records = last[name]
        key = name or "plain-broker"
        rejected = len(getattr(env.broker, "rejected_jobs", []))
        dispatched = len(records) + rejected
        results[key] = {
            "seconds": best[name],
            "jobs_completed": len(records),
            "jobs_rejected": rejected,
            "preemptions": getattr(env.broker, "preempted_total", 0),
            "dispatch_throughput_jobs_per_s": dispatched / best[name],
        }

    plain_seconds = results["plain-broker"]["seconds"]
    for key, result in results.items():
        if key != "plain-broker":
            result["wallclock_vs_plain"] = result["seconds"] / plain_seconds - 1.0
    # Overhead is the min of *per-round paired* ratios, not best/best across
    # rounds: a sustained load spike slows both sides of a round equally and
    # cancels in the ratio, where best-of picks times from different rounds
    # and lets the spike land on only one side.
    serve_overhead = min(
        single / plain - 1.0
        for single, plain in zip(rounds["single"], rounds[None])
    )
    results["single"]["paired_overhead_vs_plain"] = serve_overhead

    payload = {
        "benchmark": "serve",
        "tiny": TINY,
        "skip_timing": SKIP_TIMING,
        "config": {
            "num_jobs": NUM_JOBS,
            "policy": "fidelity",
            "arrival_rate": ARRIVAL_RATE,
            "repeats": REPEATS,
        },
        "single_tenant_overhead_vs_plain": serve_overhead,
        "mixes": results,
    }

    print(f"\nserve dispatch wall-clock ({NUM_JOBS} jobs @ {ARRIVAL_RATE}/s, "
          f"best of {REPEATS}):")
    print(f"{'mix':<22} {'seconds':>9} {'done':>6} {'rej':>5} {'pre':>5} "
          f"{'jobs/s':>9} {'vs plain':>10}")
    for key, result in results.items():
        delta = result.get("wallclock_vs_plain")
        suffix = f"{delta:+10.1%}" if delta is not None else "    (base)"
        print(f"{key:<22} {result['seconds']:>9.3f} {result['jobs_completed']:>6} "
              f"{result['jobs_rejected']:>5} {result['preemptions']:>5} "
              f"{result['dispatch_throughput_jobs_per_s']:>9.1f} {suffix}")
    print(f"serve overhead (single vs plain broker): {serve_overhead:+.1%}")

    # Assertions gate the artifact: BENCH_serve.json is only (re)written once
    # they pass, so a failing run never overwrites a good baseline.
    # The single mix must not lose or shed jobs (byte-identical path).
    assert results["single"]["jobs_completed"] == NUM_JOBS
    assert results["single"]["jobs_rejected"] == 0
    if not SKIP_TIMING:
        # Acceptance target: tenant bookkeeping + sorted dispatch stays under
        # 10 % wall-clock vs the plain broker in single-tenant mode.
        assert serve_overhead < 0.10, f"serve overhead {serve_overhead:.1%} exceeds 10%"

    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")
