"""Benchmark: Figure 6 — fidelity distributions under the four strategies.

Paper (Fig. 6): the Fair and Speed-Optimized strategies produce relatively
narrow distributions concentrated around 0.65; the Fidelity-Optimized
strategy is right-shifted (a significant portion of jobs above 0.66); the
RL-Based strategy is flatter and broader (0.60-0.64).

Expected reproduced shape (shared binning across strategies):

* mean(fidelity strategy) > mean(speed) ≈ mean(fair) > mean(rlbase),
* the error-aware distribution is right-shifted relative to speed/fair,
* the RL distribution is at least as broad (IQR) as the narrower of
  speed/fair.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import run_case_study
from repro.analysis.histogram import ascii_histogram, distribution_stats, fidelity_distributions

from benchmarks.conftest import case_study_config


@pytest.fixture(scope="module")
def fig6_result(trained_rl_model):
    model, _ = trained_rl_model
    return run_case_study(case_study_config(), rl_model=model)


def test_fig6_fidelity_distributions(benchmark, fig6_result):
    """Regenerate the four panels of Fig. 6 on a common binning."""

    def regenerate():
        fidelities = {name: fig6_result.fidelities(name) for name in fig6_result.summaries}
        return fidelity_distributions(fidelities, bins=30)

    histograms = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert set(histograms) == {"speed", "fidelity", "fair", "rlbase"}

    stats = {name: distribution_stats(fig6_result.fidelities(name)) for name in histograms}
    print()
    for name in ("speed", "fidelity", "fair", "rlbase"):
        print(
            ascii_histogram(
                fig6_result.fidelities(name),
                bins=15,
                width=40,
                title=(
                    f"[{name}] mean={stats[name]['mean']:.4f} std={stats[name]['std']:.4f} "
                    f"iqr={stats[name]['iqr_width']:.4f}"
                ),
            )
        )
        print()
        benchmark.extra_info[f"{name}_mean"] = round(stats[name]["mean"], 5)
        benchmark.extra_info[f"{name}_std"] = round(stats[name]["std"], 5)

    # Same binning across panels.
    edges = [h["edges"] for h in histograms.values()]
    assert all(np.allclose(e, edges[0]) for e in edges)
    # Every job appears in exactly one bin.
    for name, hist in histograms.items():
        assert hist["counts"].sum() == len(fig6_result.fidelities(name))

    # --- paper shape -------------------------------------------------------------
    means = {name: s["mean"] for name, s in stats.items()}
    assert means["fidelity"] > means["speed"]
    assert means["fidelity"] > means["fair"]
    assert means["rlbase"] == min(means.values())

    # Error-aware distribution is right-shifted relative to speed/fair.
    fid_median = float(np.median(fig6_result.fidelities("fidelity")))
    speed_median = float(np.median(fig6_result.fidelities("speed")))
    assert fid_median > speed_median

    # The RL distribution sits in a lower band: even its upper tail stays
    # below the error-aware strategy's upper tail (Fig. 6d vs 6b).
    rl_p90 = float(np.percentile(fig6_result.fidelities("rlbase"), 90))
    fid_p90 = float(np.percentile(fig6_result.fidelities("fidelity"), 90))
    assert rl_p90 < fid_p90
