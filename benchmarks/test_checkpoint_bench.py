"""Checkpointed-preemption benchmark: what does resume-instead-of-redo buy?

Two measurements, recorded in ``BENCH_checkpoint.json`` at the repository
root (the perf trajectory of the checkpointing subsystem):

* **Turnaround under outages** — the same workload runs with and without
  checkpointing under two kill-heavy worlds: the stock ``flaky-fleet``
  preset and a harsher ``chaos-fleet`` (mtbf 1200 s, mttr 300 s, killing
  outages fleet-wide).  Both are *simulated-time* metrics, so they are
  deterministic: the full-size run asserts that checkpointing strictly
  improves mean turnaround and makespan whenever the run produced requeues
  (resumed jobs only re-execute the shots their aborted attempts did not
  complete).
* **No-abort overhead** — a static world with checkpointing on vs off: the
  code path only differs by a flag check per sub-job, so the wall-clock
  delta must stay **< 10 %** (asserted in the full-size run; results are
  byte-identical either way, which the test also spot-checks).

Set ``REPRO_CHECKPOINT_BENCH_TINY=1`` (the CI smoke job does) for a
seconds-fast run that exercises both paths without asserting the bounds.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv
from repro.dynamics import OutageSpec, Scenario

TINY = os.environ.get("REPRO_CHECKPOINT_BENCH_TINY", "0") not in ("0", "", "false", "False")

#: Contention-tolerant mode: skip wall-clock assertions (simulated-time
#: assertions still run and still gate the artifact write).  Implied by TINY;
#: ``REPRO_BENCH_SKIP_TIMING=1`` sets it repo-wide for loaded CI machines.
SKIP_TIMING = TINY or os.environ.get(
    "REPRO_BENCH_SKIP_TIMING", "0"
) not in ("0", "", "false", "False")

#: Jobs per run.
NUM_JOBS = 30 if TINY else 120
#: Jobs for the no-abort overhead pair: larger than the turnaround runs so
#: each timed run is long enough that scheduler jitter cannot swamp the
#: per-sub-job flag check being measured.
OVERHEAD_NUM_JOBS = 30 if TINY else 400
#: Wall-clock repetitions for the no-abort overhead pair (best-of).
REPEATS = 1 if TINY else 7

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_checkpoint.json"

#: Kill-heavy world: every device fails on average every 1200 s of uptime
#: and takes 300 s to repair, killing in-flight sub-jobs each time.
CHAOS = Scenario(
    name="chaos-fleet",
    description="aggressive killing outages fleet-wide",
    outages=OutageSpec(mtbf=1200.0, mttr=300.0, kill_running=True),
)


def _run(scenario, checkpointing, num_jobs=NUM_JOBS):
    config = SimulationConfig(
        num_jobs=num_jobs, policy="fidelity", checkpointing=checkpointing,
    )
    start = time.perf_counter()
    env = QCloudSimEnv(config, scenario=scenario)
    records = env.run_until_complete()
    return time.perf_counter() - start, env, records


def _turnaround_stats(env, records):
    retried = [r for r in records if r.retries]
    return {
        "jobs_completed": len(records),
        "jobs_failed": len(env.broker.failed_jobs),
        "requeues": sum(r.retries for r in records),
        "resumed_shots": sum(r.resumed_shots for r in records),
        "mean_turnaround_s": sum(r.turnaround_time for r in records) / len(records),
        "mean_retried_turnaround_s": (
            sum(r.turnaround_time for r in retried) / len(retried) if retried else None
        ),
        "makespan_s": env.now,
    }


def test_checkpoint_benchmark():
    results = {"scenarios": {}}

    # -- turnaround under kill-heavy worlds (simulated time, deterministic) --
    for name, scenario in (("flaky-fleet", "flaky-fleet"), ("chaos-fleet", CHAOS)):
        _, env_off, rec_off = _run(scenario, checkpointing=False)
        _, env_on, rec_on = _run(scenario, checkpointing=True)
        off = _turnaround_stats(env_off, rec_off)
        on = _turnaround_stats(env_on, rec_on)
        entry = {
            "without_checkpointing": off,
            "with_checkpointing": on,
            "turnaround_improvement": 1.0 - on["mean_turnaround_s"] / off["mean_turnaround_s"],
            "makespan_improvement": 1.0 - on["makespan_s"] / off["makespan_s"],
        }
        results["scenarios"][name] = entry
        if not TINY and off["requeues"] > 0:
            # Resumed jobs execute only their remaining shots, so both the
            # mean turnaround and the schedule end move strictly earlier.
            assert on["resumed_shots"] > 0
            assert entry["turnaround_improvement"] > 0, entry
            assert entry["makespan_improvement"] > 0, entry

    # -- no-abort overhead (wall clock) --------------------------------------
    _run(None, checkpointing=False, num_jobs=OVERHEAD_NUM_JOBS)  # warm-up
    best = {False: float("inf"), True: float("inf")}
    sample = {}
    for _ in range(REPEATS):
        for checkpointing in (False, True):
            seconds, env, records = _run(
                None, checkpointing=checkpointing, num_jobs=OVERHEAD_NUM_JOBS
            )
            best[checkpointing] = min(best[checkpointing], seconds)
            sample[checkpointing] = records
    overhead = best[True] / best[False] - 1.0
    results["no_abort_overhead"] = {
        "seconds_off": best[False],
        "seconds_on": best[True],
        "wallclock_vs_off": overhead,
    }
    # Byte-identical results when nothing aborts (spot check).
    assert [r.as_dict() for r in sample[True]] == [r.as_dict() for r in sample[False]]
    if not SKIP_TIMING:
        # Acceptance target: the flag check costs nothing when nothing aborts.
        # Asserted BEFORE the artifact is written so a failing (or noisy) run
        # can never overwrite the checked-in BENCH_checkpoint.json.
        assert overhead < 0.10, f"checkpointing overhead {overhead:.1%} exceeds 10%"

    payload = {
        "benchmark": "checkpoint",
        "tiny": TINY,
        "skip_timing": SKIP_TIMING,
        "config": {
            "num_jobs": NUM_JOBS,
            "overhead_num_jobs": OVERHEAD_NUM_JOBS,
            "policy": "fidelity",
            "repeats": REPEATS,
        },
        **results,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"\ncheckpointed preemption ({NUM_JOBS} jobs, policy=fidelity):")
    for name, entry in results["scenarios"].items():
        off = entry["without_checkpointing"]
        on = entry["with_checkpointing"]
        print(f"{name:<14} requeues={off['requeues']:>3} "
              f"turnaround {off['mean_turnaround_s']:>9.1f} -> {on['mean_turnaround_s']:>9.1f} s "
              f"({entry['turnaround_improvement']:+.2%})  "
              f"makespan {off['makespan_s']:>9.1f} -> {on['makespan_s']:>9.1f} s "
              f"({entry['makespan_improvement']:+.2%})")
    print(f"no-abort overhead (static world): {overhead:+.1%}")
    print(f"wrote {RESULTS_PATH}")

    assert RESULTS_PATH.exists()
