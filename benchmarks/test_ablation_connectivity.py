"""Ablation benchmark: validity of the §5.2 connected-subgraph assumption.

The paper assumes every sub-job's qubits can be mapped to a *connected*
region of the device topology but never verifies it ("black-box
abstraction", §5.2).  This benchmark replays each strategy's completed
schedule against the real heavy-hex coupling maps with a BFS region
allocator (:mod:`repro.analysis.connectivity`) and reports the fraction of
sub-job placements for which a connected region was actually available.

Expected outcome: the assumption holds for the vast majority of placements
under every strategy; strategies that fragment the fleet more (speed /
even-split) leave slightly more fragmented free regions than the error-aware
strategy, so their connected fraction is at most as high.
"""

from __future__ import annotations

import pytest

from repro.analysis.connectivity import audit_connectivity
from repro.analysis.experiments import run_case_study
from repro.cloud.config import SimulationConfig
from repro.hardware.backends import build_default_fleet

from benchmarks.conftest import BENCHMARK_SEED

STRATEGIES = ("fidelity", "speed", "fair", "even_split")


def test_ablation_connectivity_assumption(benchmark):
    config = SimulationConfig(num_jobs=40, seed=BENCHMARK_SEED)
    fleet = build_default_fleet()

    def run():
        result = run_case_study(config, strategies=STRATEGIES)
        return {
            name: audit_connectivity(result.records[name], fleet) for name in STRATEGIES
        }

    audits = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nstrategy     placements   connected fraction")
    for name in STRATEGIES:
        audit = audits[name]
        print(f"{name:<12} {audit.total_placements:<12} {audit.connected_fraction:.3f}")
        benchmark.extra_info[f"{name}_connected_fraction"] = round(audit.connected_fraction, 4)

    for name, audit in audits.items():
        assert audit.total_placements > 0
        # The black-box assumption holds for the overwhelming majority of
        # placements on heavy-hex topologies.
        assert audit.connected_fraction > 0.6, name

    # The concentrated error-aware strategy never fragments more than the
    # maximally spread even-split strategy.
    assert (
        audits["fidelity"].connected_fraction
        >= audits["even_split"].connected_fraction - 1e-9
    )
