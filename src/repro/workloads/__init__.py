"""Named workloads used by the examples and benchmarks.

* :func:`~repro.workloads.synthetic.case_study_jobs` — the paper's 1,000-job
  case-study workload (§7),
* :func:`~repro.workloads.synthetic.ghz_sweep_jobs` — GHZ-state preparation
  circuits of increasing width,
* :func:`~repro.workloads.synthetic.qaoa_portfolio_jobs` — a batch of QAOA
  portfolio-optimisation-style circuits,
* :func:`~repro.workloads.synthetic.mixed_tenant_jobs` — a mixed multi-tenant
  trace combining the above with Poisson arrivals.
"""

from repro.workloads.synthetic import (
    case_study_jobs,
    ghz_sweep_jobs,
    mixed_tenant_jobs,
    qaoa_portfolio_jobs,
)

__all__ = [
    "case_study_jobs",
    "ghz_sweep_jobs",
    "mixed_tenant_jobs",
    "qaoa_portfolio_jobs",
]
