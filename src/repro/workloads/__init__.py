"""Named workloads and arrival models used by the examples and benchmarks.

Synthetic workloads (:mod:`repro.workloads.synthetic`):

* :func:`~repro.workloads.synthetic.case_study_jobs` — the paper's 1,000-job
  case-study workload (§7),
* :func:`~repro.workloads.synthetic.ghz_sweep_jobs` — GHZ-state preparation
  circuits of increasing width,
* :func:`~repro.workloads.synthetic.qaoa_portfolio_jobs` — a batch of QAOA
  portfolio-optimisation-style circuits,
* :func:`~repro.workloads.synthetic.mixed_tenant_jobs` — a mixed multi-tenant
  trace combining the above with Poisson arrivals.

Non-stationary arrival models (:mod:`repro.workloads.arrivals`, used by the
scenario subsystem's traffic shaping — see :mod:`repro.dynamics`):

* :func:`~repro.workloads.arrivals.mmpp_arrival_times` — two-state
  Markov-modulated Poisson bursts,
* :func:`~repro.workloads.arrivals.diurnal_arrival_times` — sinusoidal-rate
  nonhomogeneous Poisson arrivals (sampled by thinning),
* :func:`~repro.workloads.arrivals.bulk_diurnal_arrival_times` — the chunked
  vectorised form for million-arrival traces,
* :func:`~repro.workloads.arrivals.heavy_tail_qubit_sizes` — Pareto-tailed
  job sizes,
* :func:`~repro.workloads.arrivals.generate_traffic_jobs` — a full workload
  from a :class:`~repro.dynamics.TrafficSpec`.
"""

from repro.workloads.arrivals import (
    bulk_diurnal_arrival_times,
    diurnal_arrival_times,
    generate_traffic_jobs,
    heavy_tail_qubit_sizes,
    mmpp_arrival_times,
)
from repro.workloads.synthetic import (
    case_study_jobs,
    ghz_sweep_jobs,
    mixed_tenant_jobs,
    qaoa_portfolio_jobs,
)

__all__ = [
    "bulk_diurnal_arrival_times",
    "case_study_jobs",
    "diurnal_arrival_times",
    "generate_traffic_jobs",
    "ghz_sweep_jobs",
    "heavy_tail_qubit_sizes",
    "mixed_tenant_jobs",
    "mmpp_arrival_times",
    "qaoa_portfolio_jobs",
]
