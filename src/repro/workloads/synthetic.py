"""Synthetic workload builders.

These functions assemble lists of :class:`~repro.cloud.qjob.QJob` for the
scenarios exercised by the examples and the benchmark harness.  All of them
are deterministic given a seed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.circuits.generators import ghz_spec, qaoa_spec, random_circuit_spec
from repro.cloud.job_generator import generate_synthetic_jobs
from repro.cloud.qjob import QJob

__all__ = ["case_study_jobs", "ghz_sweep_jobs", "qaoa_portfolio_jobs", "mixed_tenant_jobs"]


def case_study_jobs(
    num_jobs: int = 1000,
    seed: int = 2025,
    qubit_range: Tuple[int, int] = (130, 250),
    depth_range: Tuple[int, int] = (5, 20),
    shots_range: Tuple[int, int] = (10_000, 100_000),
    two_qubit_density: float = 0.30,
    arrival: str = "batch",
    arrival_rate: float = 0.01,
) -> List[QJob]:
    """The paper's §7 case-study workload (1,000 large synthetic circuits)."""
    return generate_synthetic_jobs(
        num_jobs=num_jobs,
        seed=seed,
        qubit_range=qubit_range,
        depth_range=depth_range,
        shots_range=shots_range,
        two_qubit_density=two_qubit_density,
        arrival=arrival,
        arrival_rate=arrival_rate,
    )


def ghz_sweep_jobs(
    widths: Optional[List[int]] = None,
    num_shots: int = 20_000,
    arrival_spacing: float = 0.0,
) -> List[QJob]:
    """GHZ-state preparation circuits of increasing width.

    The default widths (130-250 qubits) all exceed a single 127-qubit device,
    so every job must be distributed — the scenario motivating the paper's
    introduction (Vazquez et al.'s two-QPU GHZ-style experiments).
    """
    if widths is None:
        widths = list(range(130, 251, 10))
    jobs: List[QJob] = []
    for i, width in enumerate(widths):
        circuit = ghz_spec(width, num_shots=num_shots)
        jobs.append(QJob(job_id=i, circuit=circuit, arrival_time=i * arrival_spacing))
    return jobs


def qaoa_portfolio_jobs(
    num_assets_list: Optional[List[int]] = None,
    num_layers: int = 3,
    num_shots: int = 50_000,
    seed: int = 7,
    arrival_spacing: float = 0.0,
) -> List[QJob]:
    """QAOA portfolio-optimisation-style circuits (one qubit per asset).

    Mirrors the financial-analytics use case cited in the paper's
    introduction: each job encodes a portfolio-selection QUBO over
    ``num_assets`` assets.
    """
    if num_assets_list is None:
        num_assets_list = [135, 150, 170, 190, 210, 230]
    rng = np.random.default_rng(seed)
    jobs: List[QJob] = []
    for i, num_assets in enumerate(num_assets_list):
        circuit = qaoa_spec(
            num_assets, num_layers=num_layers, edge_density=0.08, num_shots=num_shots, rng=rng
        )
        jobs.append(QJob(job_id=i, circuit=circuit, arrival_time=i * arrival_spacing))
    return jobs


def mixed_tenant_jobs(
    num_jobs: int = 60,
    seed: int = 11,
    arrival_rate: float = 0.005,
) -> List[QJob]:
    """A mixed multi-tenant trace with Poisson arrivals.

    One third GHZ-style, one third QAOA-style, one third random large
    circuits — all wide enough to require distribution across devices.
    """
    if num_jobs <= 0:
        raise ValueError("num_jobs must be positive")
    rng = np.random.default_rng(seed)
    jobs: List[QJob] = []
    time = 0.0
    for job_id in range(num_jobs):
        kind = job_id % 3
        if kind == 0:
            width = int(rng.integers(130, 251))
            circuit = ghz_spec(width, num_shots=int(rng.integers(10_000, 50_000)))
        elif kind == 1:
            width = int(rng.integers(130, 221))
            circuit = qaoa_spec(width, num_layers=int(rng.integers(2, 5)), edge_density=0.08, rng=rng)
        else:
            circuit = random_circuit_spec(rng, qubit_range=(130, 250), name=f"tenant_{job_id}")
        if job_id > 0:
            time += float(rng.exponential(1.0 / arrival_rate))
        jobs.append(QJob(job_id=job_id, circuit=circuit, arrival_time=time))
    return jobs
