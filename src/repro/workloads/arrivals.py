"""Non-stationary arrival processes and heavy-tailed job sizes.

The seed simulator supports two arrival models (one batch at t=0, or a
homogeneous Poisson process).  Real cloud traffic is neither: load is bursty
on short horizons and diurnal on long ones, and job sizes are heavy-tailed.
This module adds the missing generators:

* :func:`mmpp_arrival_times` — a two-state Markov-modulated Poisson process
  alternating between a normal and a burst phase,
* :func:`diurnal_arrival_times` — a nonhomogeneous Poisson process with a
  sinusoidal rate, sampled exactly by thinning,
* :func:`heavy_tail_qubit_sizes` — Pareto-tailed qubit demands,
* :func:`generate_traffic_jobs` — assembles a full :class:`QJob` workload
  from a :class:`~repro.dynamics.scenario.TrafficSpec`.

All generators are deterministic given their RNG / seed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.circuits.generators import random_circuit_spec
from repro.cloud.qjob import QJob

__all__ = [
    "mmpp_arrival_times",
    "diurnal_arrival_times",
    "bulk_diurnal_arrival_times",
    "heavy_tail_qubit_sizes",
    "generate_traffic_jobs",
    "fit_window",
]


def fit_window(
    times,
    window_start: Optional[float] = None,
    window_end: Optional[float] = None,
) -> Optional[float]:
    """Maximum-likelihood Poisson rate over an observation window, or ``None``.

    Rolling-rate estimators (the adaptive control plane, trace analytics)
    repeatedly fit the generators above on short sliding windows, where an
    idle window — zero or one arrival, or a degenerate zero-length span —
    would make the naive ``(n - 1) / span`` estimator divide by zero.  This
    helper centralises the guards: it returns ``None`` whenever the window
    holds fewer than two arrivals or spans zero time, and the MLE rate
    otherwise.

    When *window_start*/*window_end* are given, the rate is ``n / width``
    over the explicit window (the censored-window MLE, counting arrivals
    inside it); otherwise it is ``(n - 1) / span`` over the arrivals' own
    span (the interval MLE).
    """
    cleaned = sorted(float(t) for t in times)
    if window_start is not None or window_end is not None:
        lo = window_start if window_start is not None else (cleaned[0] if cleaned else 0.0)
        hi = window_end if window_end is not None else (cleaned[-1] if cleaned else 0.0)
        width = hi - lo
        if width <= 0.0:
            return None
        count = sum(1 for t in cleaned if lo <= t <= hi)
        if count < 2:
            return None
        return count / width
    if len(cleaned) < 2:
        return None
    span = cleaned[-1] - cleaned[0]
    if span <= 0.0:
        return None
    return (len(cleaned) - 1) / span


def mmpp_arrival_times(
    rng: np.random.Generator,
    num_jobs: int,
    rate: float,
    burst_rate: float,
    dwell_normal: float,
    dwell_burst: float,
    start_time: float = 0.0,
) -> np.ndarray:
    """Arrival times of a two-state Markov-modulated Poisson process.

    The process alternates between a *normal* phase (Poisson at *rate*, mean
    dwell *dwell_normal*) and a *burst* phase (Poisson at *burst_rate*, mean
    dwell *dwell_burst*); phase dwell times are exponential.  Each step draws
    a candidate inter-arrival at the current phase rate and a time-to-switch;
    whichever comes first wins (the competing-exponentials construction,
    which is exact for MMPPs).
    """
    if num_jobs <= 0:
        raise ValueError("num_jobs must be positive")
    for name, value in (("rate", rate), ("burst_rate", burst_rate),
                        ("dwell_normal", dwell_normal), ("dwell_burst", dwell_burst)):
        if value <= 0:
            raise ValueError(f"{name} must be positive")

    times = np.empty(num_jobs, dtype=np.float64)
    now = float(start_time)
    bursting = False
    time_to_switch = float(rng.exponential(dwell_normal))
    produced = 0
    while produced < num_jobs:
        current_rate = burst_rate if bursting else rate
        candidate = float(rng.exponential(1.0 / current_rate))
        if candidate < time_to_switch:
            now += candidate
            time_to_switch -= candidate
            times[produced] = now
            produced += 1
        else:
            now += time_to_switch
            bursting = not bursting
            time_to_switch = float(rng.exponential(dwell_burst if bursting else dwell_normal))
    return times


def diurnal_arrival_times(
    rng: np.random.Generator,
    num_jobs: int,
    base_rate: float,
    peak_rate: float,
    period: float,
    phase: float = 0.0,
    start_time: float = 0.0,
) -> np.ndarray:
    """Arrival times of a sinusoidally-modulated Poisson process.

    The instantaneous rate swings between *base_rate* (trough, at t=0 for
    phase 0) and *peak_rate* (crest, half a period later)::

        rate(t) = base + (peak - base) * (1 - cos(2*pi*t/period + phase)) / 2

    Sampled exactly by thinning against the crest rate.
    """
    if num_jobs <= 0:
        raise ValueError("num_jobs must be positive")
    if base_rate <= 0 or peak_rate <= 0 or period <= 0:
        raise ValueError("rates and period must be positive")
    if peak_rate < base_rate:
        raise ValueError("peak_rate must be >= base_rate")

    max_rate = peak_rate
    swing = peak_rate - base_rate
    omega = 2.0 * np.pi / period
    times = np.empty(num_jobs, dtype=np.float64)
    now = float(start_time)
    produced = 0
    while produced < num_jobs:
        now += float(rng.exponential(1.0 / max_rate))
        current = base_rate + swing * (1.0 - np.cos(omega * now + phase)) / 2.0
        if rng.random() * max_rate <= current:
            times[produced] = now
            produced += 1
    return times


def bulk_diurnal_arrival_times(
    rng: np.random.Generator,
    num_jobs: int,
    base_rate: float,
    peak_rate: float,
    period: float,
    phase: float = 0.0,
    start_time: float = 0.0,
    chunk_size: int = 65_536,
) -> np.ndarray:
    """Vectorised :func:`diurnal_arrival_times` for million-job workloads.

    Same nonhomogeneous Poisson process, same thinning construction — but
    candidate gaps, rates and acceptance draws happen in chunks of
    *chunk_size* instead of one scalar RNG call per candidate, which is what
    makes a million-arrival trace generate in milliseconds rather than tens
    of seconds.

    The chunked draws consume the RNG stream in a different order than the
    scalar loop, so for a given *rng* state the two functions produce
    *statistically* equivalent — not byte-identical — traces.  Use the
    scalar version when reproducing an existing scalar-generated trace.
    """
    if num_jobs <= 0:
        raise ValueError("num_jobs must be positive")
    if base_rate <= 0 or peak_rate <= 0 or period <= 0:
        raise ValueError("rates and period must be positive")
    if peak_rate < base_rate:
        raise ValueError("peak_rate must be >= base_rate")
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")

    max_rate = peak_rate
    swing = peak_rate - base_rate
    omega = 2.0 * np.pi / period
    times = np.empty(num_jobs, dtype=np.float64)
    now = float(start_time)
    produced = 0
    while produced < num_jobs:
        gaps = rng.exponential(1.0 / max_rate, size=chunk_size)
        candidates = now + np.cumsum(gaps)
        rates = base_rate + swing * (1.0 - np.cos(omega * candidates + phase)) / 2.0
        accepted = candidates[rng.random(chunk_size) * max_rate <= rates]
        take = min(len(accepted), num_jobs - produced)
        times[produced : produced + take] = accepted[:take]
        produced += take
        now = float(candidates[-1])
    return times


def heavy_tail_qubit_sizes(
    rng: np.random.Generator,
    num_jobs: int,
    min_qubits: int,
    max_qubits: int,
    alpha: float = 2.2,
) -> np.ndarray:
    """Pareto-tailed qubit demands: ``q = min_qubits * (1 + Pareto(alpha))``.

    Demands are clipped to ``[min_qubits, max_qubits]``; with the default
    tail index most jobs sit near the minimum while a fat tail of giant jobs
    stresses the partitioner and the admission queue.
    """
    if num_jobs <= 0:
        raise ValueError("num_jobs must be positive")
    if min_qubits <= 0 or max_qubits < min_qubits:
        raise ValueError("need 0 < min_qubits <= max_qubits")
    if alpha <= 1.0:
        raise ValueError("alpha must be > 1")
    raw = min_qubits * (1.0 + rng.pareto(alpha, size=num_jobs))
    return np.clip(np.floor(raw).astype(np.int64), min_qubits, max_qubits)


def generate_traffic_jobs(
    traffic,
    num_jobs: int,
    seed: Optional[int],
    qubit_range: Tuple[int, int] = (130, 250),
    depth_range: Tuple[int, int] = (5, 20),
    shots_range: Tuple[int, int] = (10_000, 100_000),
    two_qubit_density: float = 0.30,
    start_time: float = 0.0,
) -> List[QJob]:
    """Build a workload shaped by a :class:`~repro.dynamics.scenario.TrafficSpec`.

    Arrival times come from the spec's arrival model, job sizes from its
    qubit distribution; depth/shots/gate mix follow the same uniform ranges
    as :func:`repro.cloud.job_generator.generate_synthetic_jobs`.  Arrival,
    size and circuit randomness use independent sub-streams of *seed* so the
    three axes can be varied without perturbing each other.
    """
    from repro.engine.spec import derive_seed

    if num_jobs <= 0:
        raise ValueError("num_jobs must be positive")

    rng_arrival = np.random.default_rng(derive_seed(seed, "traffic-arrivals"))
    rng_sizes = np.random.default_rng(derive_seed(seed, "traffic-sizes"))
    rng_circuits = np.random.default_rng(derive_seed(seed, "traffic-circuits"))

    if traffic.model == "mmpp":
        arrivals = mmpp_arrival_times(
            rng_arrival,
            num_jobs,
            rate=traffic.rate,
            burst_rate=traffic.burst_rate,
            dwell_normal=traffic.dwell_normal,
            dwell_burst=traffic.dwell_burst,
            start_time=start_time,
        )
    elif traffic.model == "diurnal":
        arrivals = diurnal_arrival_times(
            rng_arrival,
            num_jobs,
            base_rate=traffic.rate,
            peak_rate=traffic.peak_rate,
            period=traffic.period,
            phase=getattr(traffic, "phase", 0.0),
            start_time=start_time,
        )
    else:  # "poisson"
        steps = rng_arrival.exponential(1.0 / traffic.rate, size=num_jobs)
        steps[0] = 0.0
        arrivals = start_time + np.cumsum(steps)

    if traffic.qubit_dist == "heavy_tail":
        upper = traffic.max_qubits if traffic.max_qubits is not None else 2 * qubit_range[1]
        sizes = heavy_tail_qubit_sizes(
            rng_sizes, num_jobs, qubit_range[0], upper, alpha=traffic.tail_alpha
        )
    else:
        sizes = None

    jobs: List[QJob] = []
    for job_id in range(num_jobs):
        per_job_range = (
            (int(sizes[job_id]), int(sizes[job_id])) if sizes is not None else qubit_range
        )
        circuit = random_circuit_spec(
            rng_circuits,
            qubit_range=per_job_range,
            depth_range=depth_range,
            shots_range=shots_range,
            two_qubit_density=two_qubit_density,
            name=f"traffic_{job_id}",
        )
        jobs.append(QJob(job_id=job_id, circuit=circuit, arrival_time=float(arrivals[job_id])))
    return jobs
