"""Experiment specifications: the strategy × seed × config grid.

An :class:`ExperimentSpec` describes a whole experiment declaratively — the
base :class:`~repro.cloud.config.SimulationConfig`, the allocation strategies
to compare, the number of workload replicates and an optional grid of config
overrides (for ablation sweeps).  :meth:`ExperimentSpec.cells` expands the
grid into flat, picklable :class:`ExperimentCell` payloads which the
:class:`~repro.engine.runner.ExperimentRunner` executes on any backend.

Seeding is deterministic: replicate ``r`` of a spec with base seed ``s``
always simulates the workload seeded ``derive_seed(s, "replicate", r)``,
independently of the strategy, the backend or the submission order — so all
strategies inside a replicate see the identical workload and repeated runs
are bit-for-bit reproducible.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cloud.config import SimulationConfig
from repro.cloud.qjob import QJob

__all__ = ["derive_seed", "PolicySpec", "ExperimentCell", "ExperimentSpec"]

#: Sentinel: no scenario axis requested — cells keep the base config's scenario.
_KEEP_SCENARIO = object()

#: Sentinel: no tenant axis requested — cells keep the base config's tenants.
_KEEP_TENANTS = object()

#: Sentinel: no regions axis requested — cells keep the base config's regions.
_KEEP_REGIONS = object()

#: Sentinel: no adaptive axis requested — cells keep the base config's adaptive.
_KEEP_ADAPTIVE = object()


def derive_seed(base_seed: Optional[int], *components: Any) -> int:
    """Derive a deterministic 63-bit seed from a base seed and components.

    The derivation hashes the repr of all inputs, so any change to a
    component (replicate index, strategy, override values, …) yields an
    unrelated seed while the same inputs always map to the same seed — on
    every platform and across processes (no ``hash()`` randomisation).
    """
    payload = repr((base_seed,) + components).encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big") >> 1


@dataclass(frozen=True)
class PolicySpec:
    """Declarative policy construction: registry name plus keyword arguments.

    Unlike a policy *instance*, a :class:`PolicySpec` is trivially picklable
    and has a stable content fingerprint, so cells carrying one stay cacheable
    (e.g. the error-weight ablation builds ``PolicySpec("fidelity",
    {"weights": ErrorScoreWeights(...)})`` cells).
    """

    name: str
    kwargs: Mapping[str, Any] = field(default_factory=dict)

    def build(self) -> Any:
        from repro.scheduling.registry import create_policy

        return create_policy(self.name, **dict(self.kwargs))

    def fingerprint(self) -> str:
        """Stable content description (dataclass reprs are deterministic)."""
        return f"{self.name}({sorted((k, repr(v)) for k, v in dict(self.kwargs).items())!r})"


def _jobs_fingerprint(jobs: Sequence[QJob]) -> str:
    """Stable content description of an explicit workload."""
    parts = [
        (j.job_id, repr(j.circuit), j.arrival_time, j.priority) for j in jobs
    ]
    return hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()


def _scenario_fingerprint(name: str) -> Optional[str]:
    """Content hash of what a scenario reference *currently* resolves to.

    The config only carries the scenario's name (or trace path), but the
    content behind it can change — a trace file re-recorded in place, a
    custom scenario re-registered with different specs.  Folding the
    resolved content into the cache key keeps the result store honest;
    ``None`` marks the cell uncacheable (unresolvable references fail at
    execution time instead of poisoning the cache).
    """
    if name.startswith("trace:") or name.endswith(".jsonl"):
        from pathlib import Path

        path = name[len("trace:"):] if name.startswith("trace:") else name
        try:
            blob = Path(path).read_bytes()
        except OSError:
            return None
        return hashlib.sha256(blob).hexdigest()
    try:
        from repro.dynamics import get_scenario
    except ImportError:  # pragma: no cover - dynamics always ships
        return None
    try:
        # Frozen-dataclass reprs are deterministic content descriptions.
        return hashlib.sha256(repr(get_scenario(name)).encode("utf-8")).hexdigest()
    except KeyError:
        return None


def _tenants_fingerprint(name: str) -> Optional[str]:
    """Content hash of what a tenant-mix reference currently resolves to.

    Same honesty contract as :func:`_scenario_fingerprint`: a mix
    re-registered with different tenants must not return stale cache hits,
    and an unresolvable reference marks the cell uncacheable.
    """
    try:
        from repro.serve import get_tenant_mix
    except ImportError:  # pragma: no cover - serve always ships
        return None
    try:
        return hashlib.sha256(repr(get_tenant_mix(name)).encode("utf-8")).hexdigest()
    except KeyError:
        return None


def _regions_fingerprint(name: str) -> Optional[str]:
    """Content hash of what a region-topology reference currently resolves to.

    A topology's repr covers its regions, links and workload shares, but the
    world behind it also includes every per-region *scenario* — so those are
    folded in through :func:`_scenario_fingerprint` (a re-registered region
    scenario must not return stale cache hits).  ``None`` marks the cell
    uncacheable.
    """
    try:
        from repro.region import get_topology
    except ImportError:  # pragma: no cover - region always ships
        return None
    try:
        topology = get_topology(name)
    except KeyError:
        return None
    parts: List[str] = [repr(topology)]
    for region in topology.regions:
        if region.scenario is not None:
            content = _scenario_fingerprint(region.scenario)
            if content is None:
                return None
            parts.append(f"{region.name}:{content}")
    return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()


def _adaptive_fingerprint(name: str) -> Optional[str]:
    """Content hash of what an adaptive-policy reference currently resolves to.

    Same honesty contract as :func:`_scenario_fingerprint`: a policy
    re-registered with different gains must not return stale cache hits,
    and an unresolvable reference marks the cell uncacheable.
    """
    try:
        from repro.adaptive import get_adaptive_policy
    except ImportError:  # pragma: no cover - adaptive always ships
        return None
    try:
        return hashlib.sha256(repr(get_adaptive_policy(name)).encode("utf-8")).hexdigest()
    except KeyError:
        return None


@dataclass(frozen=True)
class ExperimentCell:
    """One grid cell: a single simulation to run and summarise.

    Cells must be picklable so the process-pool backend can ship them to
    workers.  The workload is normally *regenerated* in the worker from
    ``config.seed`` (cheaper to ship and bit-identical by construction);
    an explicit ``jobs`` tuple or a prebuilt ``policy`` instance are escape
    hatches for custom experiments (a prebuilt policy makes the cell
    uncacheable because instances have no stable content fingerprint).
    """

    index: int
    strategy: str
    seed: int
    config: SimulationConfig
    #: Declarative policy override (cacheable); ``None`` uses ``config.policy``.
    policy_spec: Optional[PolicySpec] = None
    #: Prebuilt policy instance (escape hatch; must pickle for the process backend).
    policy: Any = None
    #: Explicit workload (escape hatch); ``None`` regenerates from ``config``.
    jobs: Optional[Tuple[QJob, ...]] = None
    #: Replicate index inside the spec (0-based).
    replicate: int = 0

    def cache_key(self) -> Optional[str]:
        """Content hash identifying this cell's result, or ``None`` if the
        cell is uncacheable (it carries a prebuilt policy instance, or a
        scenario reference whose content cannot be resolved right now)."""
        if self.policy is not None:
            return None
        scenario_content = None
        if self.config.scenario is not None:
            scenario_content = _scenario_fingerprint(self.config.scenario)
            if scenario_content is None:
                return None
        tenants_content = None
        if self.config.tenants is not None:
            tenants_content = _tenants_fingerprint(self.config.tenants)
            if tenants_content is None:
                return None
        regions_content = None
        if getattr(self.config, "regions", None) is not None:
            regions_content = _regions_fingerprint(self.config.regions)
            if regions_content is None:
                return None
        adaptive_content = None
        if getattr(self.config, "adaptive", None) is not None:
            adaptive_content = _adaptive_fingerprint(self.config.adaptive)
            if adaptive_content is None:
                return None
        payload: Dict[str, Any] = {
            "strategy": self.strategy,
            "seed": self.seed,
            "config": self.config.as_dict(),
            "scenario_content": scenario_content,
            "tenants_content": tenants_content,
            "regions_content": regions_content,
            "adaptive_content": adaptive_content,
            "policy_spec": self.policy_spec.fingerprint() if self.policy_spec else None,
            "jobs": _jobs_fingerprint(self.jobs) if self.jobs is not None else None,
        }
        blob = json.dumps(payload, sort_keys=True, default=repr).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative strategy × replicate × override experiment grid.

    Parameters
    ----------
    base_config:
        Configuration shared by every cell (its ``policy`` field is replaced
        per cell, its ``seed`` per replicate).
    strategies:
        Allocation strategies to compare (each becomes one cell per
        replicate per override).
    replicates:
        Number of workload replicates.  With one replicate the base config's
        seed is used untouched; with several, replicate seeds are derived
        deterministically via :func:`derive_seed`.
    seeds:
        Explicit workload seeds (overrides ``replicates``/derivation).
    overrides:
        Grid axis of config-field overrides, one mapping per grid column
        (e.g. ``({"comm_fidelity_penalty": 0.9}, {"comm_fidelity_penalty":
        1.0})`` for a φ sweep).  The default is a single empty override.
    policy_specs:
        Per-strategy declarative policy overrides (cacheable).
    policies:
        Per-strategy prebuilt policy instances (escape hatch, e.g. a trained
        RL model; such cells are uncacheable).
    jobs:
        Explicit workload shared by every cell (cloned per simulation).
    scenarios:
        Grid axis of world-dynamics scenario names (see
        :mod:`repro.dynamics`); each entry becomes one grid column (crossed
        with ``overrides``).  ``None`` in the tuple means "no scenario";
        omitting the axis keeps the base config's own scenario.
    tenant_mixes:
        Grid axis of multi-tenant mix names (see :mod:`repro.serve`);
        crossed with ``scenarios`` and ``overrides``.  ``None`` in the tuple
        means "plain single-queue broker"; omitting the axis keeps the base
        config's own tenants.
    regions:
        Grid axis of region-topology names (see :mod:`repro.region`);
        crossed with every other axis (outermost).  ``None`` in the tuple
        means "plain single-broker cloud"; omitting the axis keeps the base
        config's own regions.
    adaptive:
        Grid axis of adaptive-QoS policy names (see :mod:`repro.adaptive`);
        crossed with every other axis (inside ``regions``).  ``None`` in the
        tuple means "open-loop engine"; omitting the axis keeps the base
        config's own adaptive policy.
    """

    base_config: SimulationConfig
    strategies: Tuple[str, ...] = ("speed",)
    replicates: int = 1
    seeds: Optional[Tuple[int, ...]] = None
    overrides: Tuple[Mapping[str, Any], ...] = (
        # one cell column with no overrides
        {},  # type: ignore[assignment]
    )
    policy_specs: Mapping[str, PolicySpec] = field(default_factory=dict)
    policies: Mapping[str, Any] = field(default_factory=dict)
    jobs: Optional[Tuple[QJob, ...]] = None
    scenarios: Optional[Tuple[Optional[str], ...]] = None
    tenant_mixes: Optional[Tuple[Optional[str], ...]] = None
    regions: Optional[Tuple[Optional[str], ...]] = None
    adaptive: Optional[Tuple[Optional[str], ...]] = None

    def __post_init__(self) -> None:
        if not self.strategies:
            raise ValueError("at least one strategy is required")
        if self.replicates <= 0:
            raise ValueError("replicates must be positive")
        if self.seeds is not None and not self.seeds:
            raise ValueError("seeds must be non-empty when given")
        if not self.overrides:
            raise ValueError("overrides must be non-empty (use ({},) for none)")
        if self.scenarios is not None and not self.scenarios:
            raise ValueError("scenarios must be non-empty when given")
        if self.tenant_mixes is not None and not self.tenant_mixes:
            raise ValueError("tenant_mixes must be non-empty when given")
        if self.regions is not None and not self.regions:
            raise ValueError("regions must be non-empty when given")
        if self.adaptive is not None and not self.adaptive:
            raise ValueError("adaptive must be non-empty when given")

    def replicate_seeds(self) -> List[int]:
        """The workload seed of every replicate (deterministic)."""
        if self.seeds is not None:
            return list(self.seeds)
        if self.replicates == 1:
            return [self.base_config.seed]
        return [
            derive_seed(self.base_config.seed, "replicate", r)
            for r in range(self.replicates)
        ]

    def cells(self) -> List[ExperimentCell]:
        """Expand the grid into flat cells (regions-major, then adaptive,
        then tenant mix, then scenario, then override, then replicate, then
        strategy — Table 2 order inside each replicate)."""
        cells: List[ExperimentCell] = []
        index = 0
        scenario_axis: Tuple[Any, ...] = (
            self.scenarios if self.scenarios is not None else (_KEEP_SCENARIO,)
        )
        tenants_axis: Tuple[Any, ...] = (
            self.tenant_mixes if self.tenant_mixes is not None else (_KEEP_TENANTS,)
        )
        regions_axis: Tuple[Any, ...] = (
            self.regions if self.regions is not None else (_KEEP_REGIONS,)
        )
        adaptive_axis: Tuple[Any, ...] = (
            self.adaptive if self.adaptive is not None else (_KEEP_ADAPTIVE,)
        )
        for regions in regions_axis:
            for adaptive in adaptive_axis:
                for tenants in tenants_axis:
                    for scenario in scenario_axis:
                        for override in self.overrides:
                            for replicate, seed in enumerate(self.replicate_seeds()):
                                for strategy in self.strategies:
                                    payload = dict(self.base_config.as_dict())
                                    payload.update(override)
                                    payload["policy"] = strategy
                                    payload["seed"] = seed
                                    if scenario is not _KEEP_SCENARIO:
                                        payload["scenario"] = scenario
                                    if tenants is not _KEEP_TENANTS:
                                        payload["tenants"] = tenants
                                    if regions is not _KEEP_REGIONS:
                                        payload["regions"] = regions
                                    if adaptive is not _KEEP_ADAPTIVE:
                                        payload["adaptive"] = adaptive
                                    cells.append(
                                        ExperimentCell(
                                            index=index,
                                            strategy=strategy,
                                            seed=seed,
                                            config=SimulationConfig(**payload),
                                            policy_spec=self.policy_specs.get(strategy),
                                            policy=self.policies.get(strategy),
                                            jobs=self.jobs,
                                            replicate=replicate,
                                        )
                                    )
                                    index += 1
        return cells

    def __len__(self) -> int:
        scenario_count = len(self.scenarios) if self.scenarios is not None else 1
        tenants_count = len(self.tenant_mixes) if self.tenant_mixes is not None else 1
        regions_count = len(self.regions) if self.regions is not None else 1
        adaptive_count = len(self.adaptive) if self.adaptive is not None else 1
        return (
            len(self.strategies)
            * len(self.replicate_seeds())
            * len(self.overrides)
            * scenario_count
            * tenants_count
            * regions_count
            * adaptive_count
        )
