"""Structured persistence of experiment results with content-keyed caching.

A :class:`ResultStore` is a directory of JSON cell results keyed by the
content hash of the cell that produced them (strategy, seed, full config,
policy spec, workload fingerprint — see
:meth:`~repro.engine.spec.ExperimentCell.cache_key`).  Repeated sweeps load
already-computed cells instead of re-simulating them; summary tables can be
exported as CSV or JSON for downstream analysis.

Everything round-trips losslessly: a cached
:class:`~repro.metrics.aggregate.StrategySummary` and its
:class:`~repro.cloud.records.JobRecord` list compare equal to the freshly
simulated originals (floats are serialised with full precision).
"""

from __future__ import annotations

import csv
import dataclasses
import json
import os
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.cloud.records import JobRecord
from repro.metrics.aggregate import StrategySummary
from repro.metrics.fidelity import FidelityBreakdown

__all__ = ["ResultStore"]

#: Store layout version; bump when the serialisation format changes.
_FORMAT_VERSION = 1


def _summary_to_json(summary: StrategySummary) -> Dict[str, Any]:
    return dataclasses.asdict(summary)


def _summary_from_json(payload: Mapping[str, Any]) -> StrategySummary:
    return StrategySummary(**payload)


def _record_to_json(record: JobRecord) -> Dict[str, Any]:
    payload = dataclasses.asdict(record)
    payload["breakdowns"] = [dataclasses.asdict(b) for b in record.breakdowns]
    return payload


def _record_from_json(payload: Dict[str, Any]) -> JobRecord:
    payload = dict(payload)
    payload["breakdowns"] = [FidelityBreakdown(**b) for b in payload.get("breakdowns", [])]
    return JobRecord(**payload)


class ResultStore:
    """Directory-backed store of cell results and summary tables.

    Parameters
    ----------
    root:
        Directory to persist into (created on first use).
    keep_records:
        Persist the per-job records alongside each summary (default).  With
        ``False`` only summaries are stored — smaller on disk, and cache hits
        then restore results with an empty record list.
    """

    def __init__(self, root: str, keep_records: bool = True) -> None:
        self.root = str(root)
        self.keep_records = bool(keep_records)
        self._cells_dir = os.path.join(self.root, "cells")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ResultStore root={self.root!r} cells={len(self)}>"

    def _cell_path(self, key: str) -> str:
        return os.path.join(self._cells_dir, f"{key}.json")

    def __len__(self) -> int:
        if not os.path.isdir(self._cells_dir):
            return 0
        return sum(1 for name in os.listdir(self._cells_dir) if name.endswith(".json"))

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._cell_path(key))

    # -- cell cache ----------------------------------------------------------
    def save_cell(
        self,
        key: str,
        cell: Any,
        summary: StrategySummary,
        records: Sequence[JobRecord],
    ) -> str:
        """Persist one cell result under its content *key*; returns the path."""
        os.makedirs(self._cells_dir, exist_ok=True)
        payload: Dict[str, Any] = {
            "version": _FORMAT_VERSION,
            "cell": {
                "strategy": getattr(cell, "strategy", None),
                "seed": getattr(cell, "seed", None),
                "replicate": getattr(cell, "replicate", 0),
                "config": cell.config.as_dict() if hasattr(cell, "config") else None,
            },
            "summary": _summary_to_json(summary),
            "records": [_record_to_json(r) for r in records] if self.keep_records else [],
        }
        path = self._cell_path(key)
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)  # atomic: concurrent sweeps never see half a cell
        return path

    def load_cell(self, key: str) -> Optional[Tuple[StrategySummary, List[JobRecord]]]:
        """Load one cell result, or ``None`` on a cache miss (or stale format)."""
        path = self._cell_path(key)
        if not os.path.exists(path):
            return None
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("version") != _FORMAT_VERSION:
            return None
        summary = _summary_from_json(payload["summary"])
        records = [_record_from_json(r) for r in payload.get("records", [])]
        return summary, records

    def clear(self) -> int:
        """Delete every cached cell; returns the number removed."""
        if not os.path.isdir(self._cells_dir):
            return 0
        removed = 0
        for name in os.listdir(self._cells_dir):
            if name.endswith(".json"):
                os.remove(os.path.join(self._cells_dir, name))
                removed += 1
        return removed

    # -- summary tables --------------------------------------------------------
    def write_summaries_csv(
        self, rows: Iterable[Mapping[str, Any]], name: str = "summaries.csv"
    ) -> str:
        """Write summary rows (e.g. ``ExperimentResult.summary_rows()``) to CSV."""
        rows = [dict(row) for row in rows]
        if not rows:
            raise ValueError("no summary rows to write")
        os.makedirs(self.root, exist_ok=True)
        path = os.path.join(self.root, name)
        fieldnames = list(rows[0].keys())
        with open(path, "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=fieldnames)
            writer.writeheader()
            writer.writerows(rows)
        return path

    def write_summaries_json(
        self, rows: Iterable[Mapping[str, Any]], name: str = "summaries.json"
    ) -> str:
        """Write summary rows to a JSON file."""
        os.makedirs(self.root, exist_ok=True)
        path = os.path.join(self.root, name)
        with open(path, "w") as fh:
            json.dump([dict(row) for row in rows], fh, indent=2)
        return path
