"""Parallel experiment engine.

One execution subsystem for every evaluation in the repository — the Table 2
case study, the Fig. 5/6 analyses and all ablation sweeps run through the
same three pieces:

* :class:`~repro.engine.spec.ExperimentSpec` — a declarative strategy ×
  seed × config grid with deterministic per-cell seed derivation,
* :class:`~repro.engine.runner.ExperimentRunner` — serial and process-pool
  execution behind one API, with fail-fast error propagation,
* :class:`~repro.engine.store.ResultStore` — JSON/CSV persistence with
  content-keyed caching so repeated sweeps skip already-computed cells.

Quick start
-----------
>>> from repro.cloud.config import SimulationConfig
>>> from repro.engine import ExperimentRunner, ExperimentSpec
>>> spec = ExperimentSpec(
...     base_config=SimulationConfig(num_jobs=50),
...     strategies=("speed", "fidelity", "fair"),
...     replicates=4,
... )
>>> result = ExperimentRunner(backend="process").run(spec)
>>> result.summaries_by_strategy(replicate=0)["speed"].mean_fidelity  # doctest: +SKIP
"""

from repro.engine.runner import CellResult, ExperimentResult, ExperimentRunner, execute_cell
from repro.engine.spec import ExperimentCell, ExperimentSpec, PolicySpec, derive_seed
from repro.engine.store import ResultStore

__all__ = [
    "CellResult",
    "ExperimentCell",
    "ExperimentResult",
    "ExperimentRunner",
    "ExperimentSpec",
    "PolicySpec",
    "ResultStore",
    "derive_seed",
    "execute_cell",
]
