"""The experiment runner: one API over serial and process-pool execution.

:class:`ExperimentRunner` executes the cells of an
:class:`~repro.engine.spec.ExperimentSpec` — or any picklable function over
payloads via :meth:`ExperimentRunner.map` — on either backend:

* ``"serial"`` — in-process loop (default; zero overhead, always available),
* ``"process"`` — a ``concurrent.futures.ProcessPoolExecutor`` fan-out with
  fail-fast error propagation: the first worker exception cancels all
  pending cells and re-raises in the caller.

Both backends produce *identical* results for the same spec: a cell is fully
described by its picklable payload, the workload is regenerated from the
cell seed inside the worker, and floats survive pickling bit-for-bit.

Attach a :class:`~repro.engine.store.ResultStore` to skip already-computed
cells: cached cells are looked up by content key before any worker is
spawned, so repeated sweeps only pay for the cells that changed.
"""

from __future__ import annotations

from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cloud.qjob import QJob
from repro.cloud.records import JobRecord
from repro.engine.spec import ExperimentCell, ExperimentSpec
from repro.engine.store import ResultStore
from repro.metrics.aggregate import StrategySummary, empty_summary, summarize_records

__all__ = ["CellResult", "ExperimentResult", "ExperimentRunner", "execute_cell"]

_BACKENDS = ("serial", "process")


def _clone_jobs(jobs: Sequence[QJob]) -> List[QJob]:
    """Copy a job list so each simulation gets fresh status fields."""
    return [job.clone() for job in jobs]


@dataclass(frozen=True)
class CellResult:
    """Outcome of one executed (or cache-restored) cell."""

    cell: ExperimentCell
    summary: StrategySummary
    records: List[JobRecord] = field(default_factory=list)
    #: ``True`` when the result was restored from the store, not simulated.
    cached: bool = False


@dataclass
class ExperimentResult:
    """Ordered cell results plus grid-shaped accessors."""

    spec: Optional[ExperimentSpec]
    results: List[CellResult]

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def summaries_by_strategy(self, replicate: int = 0) -> Dict[str, StrategySummary]:
        """Strategy → summary for one replicate (insertion = grid order)."""
        out: Dict[str, StrategySummary] = {}
        for result in self.results:
            if result.cell.replicate == replicate and result.cell.strategy not in out:
                out[result.cell.strategy] = result.summary
        return out

    def records_by_strategy(self, replicate: int = 0) -> Dict[str, List[JobRecord]]:
        """Strategy → per-job records for one replicate."""
        out: Dict[str, List[JobRecord]] = {}
        for result in self.results:
            if result.cell.replicate == replicate and result.cell.strategy not in out:
                out[result.cell.strategy] = result.records
        return out

    def summary_rows(self) -> List[Dict[str, object]]:
        """All summaries as flat table rows (cell metadata included)."""
        rows = []
        for result in self.results:
            row = dict(result.summary.as_row())
            row["seed"] = result.cell.seed
            row["replicate"] = result.cell.replicate
            rows.append(row)
        return rows


def execute_cell(cell: ExperimentCell) -> CellResult:
    """Run one cell's simulation and summarise it (worker entry point).

    Module-level so the process backend can pickle it by reference; imports
    the cloud layer lazily to keep worker start-up light.
    """
    from repro.cloud.environment import QCloudSimEnv

    config = cell.config
    # An explicit workload is cloned per simulation; otherwise the
    # environment regenerates it from the config (bit-identical, and lets
    # scenario traffic models shape the arrivals — see repro.dynamics).
    jobs = _clone_jobs(cell.jobs) if cell.jobs is not None else None

    policy = cell.policy
    if policy is None and cell.policy_spec is not None:
        policy = cell.policy_spec.build()

    if getattr(config, "regions", None) is not None:
        # Multi-region cell: one broker shard per region behind the routing
        # tier.  Shards run serially inside this worker — the engine's own
        # process backend already parallelises across cells, and nesting
        # process pools inside workers deadlocks.
        from repro.region import RegionalCloud

        cloud = RegionalCloud(config=config, jobs=jobs, policy=policy)
        records = cloud.run_until_complete()
        name = getattr(cloud.policy, "name", config.policy) if policy else config.policy
        summary = summarize_records(records, strategy=name) if records else empty_summary(name)
        return CellResult(cell=cell, summary=summary, records=records)

    env = QCloudSimEnv(config=config, jobs=jobs, policy=policy)
    records = env.run_until_complete()
    name = getattr(env.policy, "name", config.policy)
    # A cell can legitimately complete zero jobs (admission shedding,
    # infeasible workloads) — summarize as an empty row instead of raising.
    summary = summarize_records(records, strategy=name) if records else empty_summary(name)
    return CellResult(cell=cell, summary=summary, records=records)


class ExperimentRunner:
    """Execute experiment cells on a serial or process-pool backend.

    Parameters
    ----------
    backend:
        ``"serial"`` or ``"process"``.
    max_workers:
        Process-pool size (default: ``os.cpu_count()``); ignored by the
        serial backend.
    store:
        Optional :class:`~repro.engine.store.ResultStore` for content-keyed
        caching and persistence of results.
    """

    def __init__(
        self,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        store: Optional[ResultStore] = None,
    ) -> None:
        if backend not in _BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {_BACKENDS}")
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.backend = backend
        self.max_workers = max_workers
        self.store = store

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ExperimentRunner backend={self.backend!r} workers={self.max_workers}>"

    # -- generic parallel map -----------------------------------------------
    def map(self, fn: Callable[[Any], Any], payloads: Iterable[Any]) -> List[Any]:
        """Apply *fn* to every payload, in order, on the configured backend.

        Fail-fast: the first exception cancels all pending work and
        re-raises in the caller (identical to the serial behaviour, where
        later payloads simply never run).
        """
        payloads = list(payloads)
        if self.backend == "serial" or len(payloads) <= 1:
            return [fn(payload) for payload in payloads]

        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            futures = [pool.submit(fn, payload) for payload in payloads]
            done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
            failed = next((f for f in done if f.exception() is not None), None)
            if failed is not None:
                for future in not_done:
                    future.cancel()
                raise failed.exception()
            return [future.result() for future in futures]

    # -- experiment execution -------------------------------------------------
    def run_cells(self, cells: Sequence[ExperimentCell]) -> List[CellResult]:
        """Execute *cells* (skipping store hits), preserving cell order."""
        cells = list(cells)
        keys = [cell.cache_key() if self.store is not None else None for cell in cells]

        results: List[Optional[CellResult]] = [None] * len(cells)
        pending: List[Tuple[int, ExperimentCell]] = []
        for i, (cell, key) in enumerate(zip(cells, keys)):
            hit = self.store.load_cell(key) if key is not None else None
            if hit is not None:
                summary, records = hit
                results[i] = CellResult(cell=cell, summary=summary, records=records, cached=True)
            else:
                pending.append((i, cell))

        fresh = self.map(execute_cell, [cell for _, cell in pending])
        for (i, cell), result in zip(pending, fresh):
            results[i] = result
            if self.store is not None and keys[i] is not None:
                self.store.save_cell(keys[i], cell, result.summary, result.records)

        return [r for r in results if r is not None]

    def run(self, spec: ExperimentSpec) -> ExperimentResult:
        """Execute every cell of *spec* and return the grid-shaped result."""
        return ExperimentResult(spec=spec, results=self.run_cells(spec.cells()))
