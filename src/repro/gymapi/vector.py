"""Vectorized environments: step ``B`` environments with one call.

Rollout collection dominates RL training cost when every transition is a
batch-size-1 policy forward plus a Python-level environment step.  A
:class:`VecEnv` amortises that cost: observations come back as one
``(num_envs, obs_dim)`` array, actions go in as one ``(num_envs, act_dim)``
array, and the policy runs a single large matmul per vector step.

Two implementations are provided:

* :class:`SyncVecEnv` — a generic wrapper that lifts any number of scalar
  :class:`~repro.gymapi.core.Env` instances (or factories) into the batched
  API by stepping them sequentially in-process.  It removes the per-step
  policy-forward overhead but still pays one Python ``step()`` per
  sub-environment.
* Native vectorized environments (e.g.
  :class:`repro.rlenv.batched_env.BatchedQCloudEnv`) subclass :class:`VecEnv`
  directly and batch the environment dynamics themselves with NumPy.

Auto-reset semantics follow Stable-Baselines3 / Gymnasium's ``SyncVectorEnv``:
when a sub-environment's episode ends, it is reset immediately and the *new*
episode's first observation is returned; the terminal observation and info are
preserved under ``info["final_observation"]`` / ``info["final_info"]``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.gymapi.core import Env
from repro.gymapi.seeding import np_random
from repro.gymapi.spaces import Space

__all__ = ["VecEnv", "SyncVecEnv"]

SeedLike = Union[None, int, Sequence[int]]


class VecEnv:
    """Base class for vectorized environments.

    Subclasses must set :attr:`num_envs`, :attr:`observation_space` and
    :attr:`action_space` (the *single-environment* spaces, as in SB3) and
    implement:

    * ``reset(seed=None, options=None) -> (obs, infos)`` where ``obs`` has
      shape ``(num_envs, *obs_shape)`` and ``infos`` is a list of per-env
      dicts,
    * ``step(actions) -> (obs, rewards, terminated, truncated, infos)`` with
      ``actions`` of shape ``(num_envs, *act_shape)``, ``rewards`` of shape
      ``(num_envs,)`` (float64) and ``terminated``/``truncated`` of shape
      ``(num_envs,)`` (bool).

    Episodes auto-reset: a sub-environment that finishes an episode during
    ``step`` returns the next episode's initial observation.
    """

    metadata: Dict[str, Any] = {"render_modes": []}

    num_envs: int
    observation_space: Space
    action_space: Space

    _np_random: Optional[np.random.Generator] = None
    _np_random_seed: Optional[int] = None

    @property
    def np_random(self) -> np.random.Generator:
        """Shared random generator for natively-batched subclasses."""
        if self._np_random is None:
            self._np_random, self._np_random_seed = np_random()
        return self._np_random

    @np_random.setter
    def np_random(self, value: np.random.Generator) -> None:
        self._np_random = value

    @property
    def unwrapped(self) -> "VecEnv":
        return self

    def reset(
        self, *, seed: SeedLike = None, options: Optional[Dict[str, Any]] = None
    ) -> Tuple[np.ndarray, List[Dict[str, Any]]]:
        raise NotImplementedError

    def step(
        self, actions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, List[Dict[str, Any]]]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources held by the environments."""

    def _per_env_seeds(self, seed: SeedLike) -> List[Optional[int]]:
        """Expand a reset seed into one seed per sub-environment.

        An integer seed ``s`` becomes ``[s, s + 1, ..., s + num_envs - 1]``
        (the Gymnasium convention, so env 0 of a 1-env vector matches a scalar
        environment reset with the same seed bit-for-bit); a sequence is used
        as-is; ``None`` leaves every environment unseeded.
        """
        if seed is None:
            return [None] * self.num_envs
        if isinstance(seed, (int, np.integer)):
            return [int(seed) + i for i in range(self.num_envs)]
        seeds = [int(s) for s in seed]
        if len(seeds) != self.num_envs:
            raise ValueError(f"got {len(seeds)} seeds for {self.num_envs} environments")
        return seeds

    def __enter__(self) -> "VecEnv":
        return self

    def __exit__(self, *args: Any) -> bool:
        self.close()
        return False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} num_envs={getattr(self, 'num_envs', '?')}>"


class SyncVecEnv(VecEnv):
    """Step a list of scalar environments sequentially behind the batched API.

    Parameters
    ----------
    env_fns:
        A sequence of :class:`~repro.gymapi.core.Env` instances or zero-arg
        factories returning them.  All environments must share the same
        observation and action space shapes.
    """

    def __init__(self, env_fns: Sequence[Union[Env, Callable[[], Env]]]) -> None:
        if not env_fns:
            raise ValueError("SyncVecEnv requires at least one environment")
        self.envs: List[Env] = [fn() if callable(fn) else fn for fn in env_fns]
        self.num_envs = len(self.envs)
        first = self.envs[0]
        self.observation_space = first.observation_space
        self.action_space = first.action_space
        for env in self.envs[1:]:
            if tuple(env.observation_space.shape) != tuple(first.observation_space.shape):
                raise ValueError("all environments must share the same observation shape")
            if type(env.action_space) is not type(first.action_space) or tuple(
                getattr(env.action_space, "shape", ()) or ()
            ) != tuple(getattr(first.action_space, "shape", ()) or ()):
                raise ValueError("all environments must share the same action space shape")
        self._obs_shape = tuple(self.observation_space.shape)

    def reset(
        self, *, seed: SeedLike = None, options: Optional[Dict[str, Any]] = None
    ) -> Tuple[np.ndarray, List[Dict[str, Any]]]:
        seeds = self._per_env_seeds(seed)
        observations = np.zeros((self.num_envs, *self._obs_shape), dtype=np.float64)
        infos: List[Dict[str, Any]] = []
        for i, (env, env_seed) in enumerate(zip(self.envs, seeds)):
            obs, info = env.reset(seed=env_seed, options=options)
            observations[i] = np.asarray(obs, dtype=np.float64)
            infos.append(info)
        return observations, infos

    def step(
        self, actions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, List[Dict[str, Any]]]:
        actions_arr = np.asarray(actions)
        if actions_arr.shape[0] != self.num_envs:
            raise ValueError(
                f"expected {self.num_envs} actions, got leading dimension {actions_arr.shape[0]}"
            )
        observations = np.zeros((self.num_envs, *self._obs_shape), dtype=np.float64)
        rewards = np.zeros(self.num_envs, dtype=np.float64)
        terminated = np.zeros(self.num_envs, dtype=bool)
        truncated = np.zeros(self.num_envs, dtype=bool)
        infos: List[Dict[str, Any]] = []
        for i, env in enumerate(self.envs):
            obs, reward, term, trunc, info = env.step(actions_arr[i])
            if term or trunc:
                terminal_info = info
                info = dict(terminal_info)
                info["final_observation"] = obs
                info["final_info"] = terminal_info
                obs, _reset_info = env.reset()
            observations[i] = np.asarray(obs, dtype=np.float64)
            rewards[i] = float(reward)
            terminated[i] = bool(term)
            truncated[i] = bool(trunc)
            infos.append(info)
        return observations, rewards, terminated, truncated, infos

    def close(self) -> None:
        for env in self.envs:
            env.close()

    def render(self) -> List[Any]:  # pragma: no cover - diagnostic helper
        return [env.render() for env in self.envs]
