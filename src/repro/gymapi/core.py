"""Environment and wrapper base classes (Gymnasium-compatible subset)."""

from __future__ import annotations

from typing import Any, Dict, Generic, Optional, SupportsFloat, Tuple, TypeVar

import numpy as np

from repro.gymapi.seeding import np_random
from repro.gymapi.spaces import Space

__all__ = ["Env", "Wrapper", "ObservationWrapper", "ActionWrapper", "RewardWrapper"]

ObsType = TypeVar("ObsType")
ActType = TypeVar("ActType")


class Env(Generic[ObsType, ActType]):
    """Base class for environments.

    Subclasses must define :attr:`observation_space`, :attr:`action_space`
    and implement :meth:`reset` and :meth:`step` with the Gymnasium 0.26+
    API:

    * ``reset(seed=None, options=None) -> (observation, info)``
    * ``step(action) -> (observation, reward, terminated, truncated, info)``
    """

    metadata: Dict[str, Any] = {"render_modes": []}
    render_mode: Optional[str] = None
    spec: Optional[Any] = None

    observation_space: Space
    action_space: Space

    _np_random: Optional[np.random.Generator] = None
    _np_random_seed: Optional[int] = None

    @property
    def np_random(self) -> np.random.Generator:
        """Environment random generator (lazily seeded)."""
        if self._np_random is None:
            self._np_random, self._np_random_seed = np_random()
        return self._np_random

    @np_random.setter
    def np_random(self, value: np.random.Generator) -> None:
        self._np_random = value

    @property
    def np_random_seed(self) -> Optional[int]:
        """The seed the generator was initialised with (if any)."""
        return self._np_random_seed

    @property
    def unwrapped(self) -> "Env":
        """The innermost (unwrapped) environment."""
        return self

    def reset(
        self,
        *,
        seed: Optional[int] = None,
        options: Optional[Dict[str, Any]] = None,
    ) -> Tuple[ObsType, Dict[str, Any]]:
        """Reset the environment; subclasses should call ``super().reset(seed=seed)``."""
        if seed is not None:
            self._np_random, self._np_random_seed = np_random(seed)
        return None, {}  # type: ignore[return-value]

    def step(self, action: ActType) -> Tuple[ObsType, SupportsFloat, bool, bool, Dict[str, Any]]:
        """Advance the environment by one step."""
        raise NotImplementedError

    def render(self) -> Any:
        """Render the environment (no-op by default)."""
        return None

    def close(self) -> None:
        """Release any resources held by the environment."""

    def __enter__(self) -> "Env":
        return self

    def __exit__(self, *args: Any) -> bool:
        self.close()
        return False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} instance>"


class Wrapper(Env[ObsType, ActType]):
    """Wraps an environment, forwarding everything by default."""

    def __init__(self, env: Env) -> None:
        self.env = env

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(f"accessing private attribute '{name}' is prohibited")
        return getattr(self.env, name)

    @property
    def observation_space(self) -> Space:  # type: ignore[override]
        if "observation_space" in self.__dict__:
            return self.__dict__["observation_space"]
        return self.env.observation_space

    @observation_space.setter
    def observation_space(self, space: Space) -> None:
        self.__dict__["observation_space"] = space

    @property
    def action_space(self) -> Space:  # type: ignore[override]
        if "action_space" in self.__dict__:
            return self.__dict__["action_space"]
        return self.env.action_space

    @action_space.setter
    def action_space(self, space: Space) -> None:
        self.__dict__["action_space"] = space

    @property
    def unwrapped(self) -> Env:
        return self.env.unwrapped

    @property
    def np_random(self) -> np.random.Generator:  # type: ignore[override]
        return self.env.np_random

    def reset(self, *, seed: Optional[int] = None, options: Optional[Dict[str, Any]] = None):
        return self.env.reset(seed=seed, options=options)

    def step(self, action: ActType):
        return self.env.step(action)

    def render(self) -> Any:
        return self.env.render()

    def close(self) -> None:
        self.env.close()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}{self.env}>"


class ObservationWrapper(Wrapper):
    """A wrapper that transforms observations via :meth:`observation`."""

    def reset(self, *, seed: Optional[int] = None, options: Optional[Dict[str, Any]] = None):
        obs, info = self.env.reset(seed=seed, options=options)
        return self.observation(obs), info

    def step(self, action: ActType):
        obs, reward, terminated, truncated, info = self.env.step(action)
        return self.observation(obs), reward, terminated, truncated, info

    def observation(self, observation: ObsType) -> ObsType:
        raise NotImplementedError


class ActionWrapper(Wrapper):
    """A wrapper that transforms actions via :meth:`action`."""

    def step(self, action: ActType):
        return self.env.step(self.action(action))

    def action(self, action: ActType) -> ActType:
        raise NotImplementedError


class RewardWrapper(Wrapper):
    """A wrapper that transforms rewards via :meth:`reward`."""

    def step(self, action: ActType):
        obs, reward, terminated, truncated, info = self.env.step(action)
        return obs, self.reward(reward), terminated, truncated, info

    def reward(self, reward: SupportsFloat) -> SupportsFloat:
        raise NotImplementedError
