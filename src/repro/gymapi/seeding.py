"""Random-number seeding helpers (Gymnasium-compatible)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["np_random"]


def np_random(seed: Optional[int] = None) -> Tuple[np.random.Generator, int]:
    """Create a seeded :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        Non-negative integer seed.  If ``None`` a seed is drawn from entropy.

    Returns
    -------
    (generator, seed):
        The generator and the seed that was actually used.
    """
    if seed is not None and (not isinstance(seed, (int, np.integer)) or seed < 0):
        raise ValueError(f"Seed must be a non-negative integer or None, got {seed!r}")
    seed_seq = np.random.SeedSequence(seed)
    used_seed = seed_seq.entropy
    generator = np.random.Generator(np.random.PCG64(seed_seq))
    return generator, int(used_seed) if used_seed is not None else 0
