"""A minimal Gymnasium-compatible environment API.

The paper formulates the allocation problem as a single-step MDP exposed
through the Gymnasium API (§4.1).  Gymnasium itself is not available offline,
so this subpackage provides a drop-in substitute with the same signatures:

* :class:`~repro.gymapi.core.Env` with ``reset() -> (obs, info)`` and
  ``step(action) -> (obs, reward, terminated, truncated, info)``,
* :mod:`~repro.gymapi.spaces` with :class:`~repro.gymapi.spaces.Box`,
  :class:`~repro.gymapi.spaces.Discrete` and
  :class:`~repro.gymapi.spaces.MultiDiscrete`,
* common wrappers (:class:`~repro.gymapi.wrappers.TimeLimit`,
  :class:`~repro.gymapi.wrappers.ClipAction`,
  :class:`~repro.gymapi.wrappers.NormalizeObservation`,
  :class:`~repro.gymapi.wrappers.RecordEpisodeStatistics`),
* :mod:`~repro.gymapi.vector` with the batched-environment API
  (:class:`~repro.gymapi.vector.VecEnv`,
  :class:`~repro.gymapi.vector.SyncVecEnv`) used by vectorized PPO rollout
  collection.
"""

from repro.gymapi import spaces, vector, wrappers
from repro.gymapi.core import (
    ActionWrapper,
    Env,
    ObservationWrapper,
    RewardWrapper,
    Wrapper,
)
from repro.gymapi.seeding import np_random
from repro.gymapi.vector import SyncVecEnv, VecEnv

__all__ = [
    "ActionWrapper",
    "Env",
    "ObservationWrapper",
    "RewardWrapper",
    "SyncVecEnv",
    "VecEnv",
    "Wrapper",
    "np_random",
    "spaces",
    "vector",
    "wrappers",
]
