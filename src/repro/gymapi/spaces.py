"""Observation/action spaces (Gymnasium-compatible subset).

Only the space types the reproduction needs are implemented:

* :class:`Box` — bounded/unbounded continuous vectors (the paper's 16-dim
  state and 5-dim action),
* :class:`Discrete` — a finite set of integers (used by baseline policies and
  tests),
* :class:`MultiDiscrete` — a vector of independent discrete dimensions,
* :class:`Dict` — a dictionary of component spaces (used by diagnostic
  wrappers).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Iterable, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.gymapi.seeding import np_random

__all__ = ["Space", "Box", "Discrete", "MultiDiscrete", "Dict", "flatten", "flatdim"]


class Space:
    """Base class of all spaces."""

    def __init__(
        self,
        shape: Optional[Tuple[int, ...]] = None,
        dtype: Optional[Any] = None,
        seed: Optional[int] = None,
    ) -> None:
        self._shape = None if shape is None else tuple(shape)
        self.dtype = None if dtype is None else np.dtype(dtype)
        self._np_random: Optional[np.random.Generator] = None
        if seed is not None:
            self.seed(seed)

    @property
    def shape(self) -> Optional[Tuple[int, ...]]:
        """Shape of elements of the space."""
        return self._shape

    @property
    def np_random(self) -> np.random.Generator:
        """The space's random generator (lazily created)."""
        if self._np_random is None:
            self.seed()
        assert self._np_random is not None
        return self._np_random

    def seed(self, seed: Optional[int] = None) -> int:
        """Seed the space's random generator and return the seed used."""
        self._np_random, used = np_random(seed)
        return used

    def sample(self) -> Any:
        """Draw a random element of the space."""
        raise NotImplementedError

    def contains(self, x: Any) -> bool:
        """Return ``True`` if *x* is a member of the space."""
        raise NotImplementedError

    def __contains__(self, x: Any) -> bool:
        return self.contains(x)


class Box(Space):
    """A (possibly unbounded) box in :math:`R^n`.

    Parameters
    ----------
    low, high:
        Scalars or arrays giving the inclusive bounds.
    shape:
        Required when *low*/*high* are scalars.
    dtype:
        Element dtype (default ``float32`` to match Gymnasium).
    """

    def __init__(
        self,
        low: Union[float, np.ndarray],
        high: Union[float, np.ndarray],
        shape: Optional[Sequence[int]] = None,
        dtype: Any = np.float32,
        seed: Optional[int] = None,
    ) -> None:
        if shape is not None:
            shape = tuple(int(dim) for dim in shape)
        elif isinstance(low, np.ndarray):
            shape = low.shape
        elif isinstance(high, np.ndarray):
            shape = high.shape
        else:
            shape = (1,)

        low_arr = np.full(shape, low, dtype=dtype) if np.isscalar(low) else np.asarray(low, dtype=dtype)
        high_arr = np.full(shape, high, dtype=dtype) if np.isscalar(high) else np.asarray(high, dtype=dtype)
        if low_arr.shape != shape or high_arr.shape != shape:
            raise ValueError("low/high shapes do not match the requested shape")
        if np.any(low_arr > high_arr):
            raise ValueError("low must be <= high elementwise")

        super().__init__(shape, dtype, seed)
        self.low = low_arr
        self.high = high_arr
        self.bounded_below = np.isfinite(self.low)
        self.bounded_above = np.isfinite(self.high)

    def is_bounded(self, manner: str = "both") -> bool:
        """Whether the box is bounded ``"below"``, ``"above"`` or ``"both"``."""
        below = bool(np.all(self.bounded_below))
        above = bool(np.all(self.bounded_above))
        if manner == "both":
            return below and above
        if manner == "below":
            return below
        if manner == "above":
            return above
        raise ValueError(f"manner must be 'both', 'below' or 'above', got {manner!r}")

    def sample(self) -> np.ndarray:
        """Uniformly sample inside the box (exponential tails where unbounded)."""
        high = self.high.astype(np.float64)
        low = self.low.astype(np.float64)
        sample = np.empty(self.shape, dtype=np.float64)

        unbounded = ~self.bounded_below & ~self.bounded_above
        upp_bounded = ~self.bounded_below & self.bounded_above
        low_bounded = self.bounded_below & ~self.bounded_above
        bounded = self.bounded_below & self.bounded_above

        sample[unbounded] = self.np_random.normal(size=unbounded[unbounded].shape)
        sample[low_bounded] = self.np_random.exponential(size=low_bounded[low_bounded].shape) + low[low_bounded]
        sample[upp_bounded] = high[upp_bounded] - self.np_random.exponential(size=upp_bounded[upp_bounded].shape)
        sample[bounded] = self.np_random.uniform(low=low[bounded], high=high[bounded], size=bounded[bounded].shape)
        return sample.astype(self.dtype)

    def contains(self, x: Any) -> bool:
        x = np.asarray(x, dtype=self.dtype)
        return bool(
            x.shape == self.shape
            and np.all(x >= self.low - 1e-6)
            and np.all(x <= self.high + 1e-6)
        )

    def clip(self, x: np.ndarray) -> np.ndarray:
        """Clip *x* into the box."""
        return np.clip(np.asarray(x, dtype=self.dtype), self.low, self.high)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Box({self.low.min()}, {self.high.max()}, {self.shape}, {self.dtype})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Box)
            and self.shape == other.shape
            and np.allclose(self.low, other.low)
            and np.allclose(self.high, other.high)
        )


class Discrete(Space):
    """A space of ``n`` integers ``{start, ..., start + n - 1}``."""

    def __init__(self, n: int, seed: Optional[int] = None, start: int = 0) -> None:
        if n <= 0:
            raise ValueError("n must be > 0")
        super().__init__((), np.int64, seed)
        self.n = int(n)
        self.start = int(start)

    def sample(self) -> int:
        return int(self.start + self.np_random.integers(self.n))

    def contains(self, x: Any) -> bool:
        if isinstance(x, np.ndarray):
            if x.shape != () or not np.issubdtype(x.dtype, np.integer):
                return False
            x = int(x)
        if not isinstance(x, (int, np.integer)):
            return False
        return self.start <= int(x) < self.start + self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Discrete({self.n})" if self.start == 0 else f"Discrete({self.n}, start={self.start})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Discrete) and self.n == other.n and self.start == other.start


class MultiDiscrete(Space):
    """A cartesian product of :class:`Discrete` spaces."""

    def __init__(self, nvec: Sequence[int], seed: Optional[int] = None) -> None:
        self.nvec = np.asarray(nvec, dtype=np.int64)
        if np.any(self.nvec <= 0):
            raise ValueError("all entries of nvec must be > 0")
        super().__init__(self.nvec.shape, np.int64, seed)

    def sample(self) -> np.ndarray:
        return (self.np_random.random(self.nvec.shape) * self.nvec).astype(np.int64)

    def contains(self, x: Any) -> bool:
        x = np.asarray(x)
        return bool(x.shape == self.shape and np.all(x >= 0) and np.all(x < self.nvec))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MultiDiscrete({self.nvec.tolist()})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MultiDiscrete) and np.array_equal(self.nvec, other.nvec)


class Dict(Space):
    """A dictionary of component spaces."""

    def __init__(self, spaces: Mapping[str, Space], seed: Optional[int] = None) -> None:
        self.spaces = OrderedDict(spaces)
        super().__init__(None, None, seed)

    def seed(self, seed: Optional[int] = None) -> int:
        used = super().seed(seed)
        for i, space in enumerate(self.spaces.values()):
            space.seed(None if seed is None else seed + i + 1)
        return used

    def sample(self) -> "OrderedDict[str, Any]":
        return OrderedDict((key, space.sample()) for key, space in self.spaces.items())

    def contains(self, x: Any) -> bool:
        if not isinstance(x, Mapping) or set(x.keys()) != set(self.spaces.keys()):
            return False
        return all(space.contains(x[key]) for key, space in self.spaces.items())

    def __getitem__(self, key: str) -> Space:
        return self.spaces[key]

    def __iter__(self):
        return iter(self.spaces)

    def __len__(self) -> int:
        return len(self.spaces)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dict({dict(self.spaces)!r})"


def flatdim(space: Space) -> int:
    """Number of scalar entries when flattening an element of *space*."""
    if isinstance(space, Box):
        return int(np.prod(space.shape))
    if isinstance(space, Discrete):
        return space.n
    if isinstance(space, MultiDiscrete):
        return int(np.sum(space.nvec))
    if isinstance(space, Dict):
        return sum(flatdim(s) for s in space.spaces.values())
    raise NotImplementedError(f"Unsupported space {space!r}")


def flatten(space: Space, x: Any) -> np.ndarray:
    """Flatten an element *x* of *space* into a 1-D float64 array."""
    if isinstance(space, Box):
        return np.asarray(x, dtype=np.float64).flatten()
    if isinstance(space, Discrete):
        onehot = np.zeros(space.n, dtype=np.float64)
        onehot[int(x) - space.start] = 1.0
        return onehot
    if isinstance(space, MultiDiscrete):
        offsets = np.concatenate(([0], np.cumsum(space.nvec)[:-1]))
        onehot = np.zeros(int(np.sum(space.nvec)), dtype=np.float64)
        onehot[offsets + np.asarray(x, dtype=np.int64)] = 1.0
        return onehot
    if isinstance(space, Dict):
        return np.concatenate([flatten(s, x[key]) for key, s in space.spaces.items()])
    raise NotImplementedError(f"Unsupported space {space!r}")
