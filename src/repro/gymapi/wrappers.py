"""Common environment wrappers (Gymnasium-compatible subset)."""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Optional, SupportsFloat, Tuple

import numpy as np

from repro.gymapi.core import ActionWrapper, Env, ObservationWrapper, Wrapper
from repro.gymapi.spaces import Box

__all__ = [
    "RunningMeanStd",
    "TimeLimit",
    "ClipAction",
    "RescaleAction",
    "NormalizeObservation",
    "RecordEpisodeStatistics",
]


class RunningMeanStd:
    """Tracks the running mean and variance of a stream of arrays.

    Uses the parallel-variance (Chan et al.) update so batches of any size can
    be folded in.  This mirrors the utility of the same name used by common
    PPO implementations for observation/return normalisation.
    """

    def __init__(self, epsilon: float = 1e-4, shape: Tuple[int, ...] = ()) -> None:
        self.mean = np.zeros(shape, dtype=np.float64)
        self.var = np.ones(shape, dtype=np.float64)
        self.count = float(epsilon)

    def update(self, batch: np.ndarray) -> None:
        """Fold a batch (first axis = batch axis) into the running moments."""
        batch = np.asarray(batch, dtype=np.float64)
        batch_mean = batch.mean(axis=0)
        batch_var = batch.var(axis=0)
        batch_count = batch.shape[0]
        self.update_from_moments(batch_mean, batch_var, batch_count)

    def update_from_moments(self, batch_mean: np.ndarray, batch_var: np.ndarray, batch_count: float) -> None:
        delta = batch_mean - self.mean
        tot_count = self.count + batch_count

        new_mean = self.mean + delta * batch_count / tot_count
        m_a = self.var * self.count
        m_b = batch_var * batch_count
        m2 = m_a + m_b + np.square(delta) * self.count * batch_count / tot_count
        new_var = m2 / tot_count

        self.mean = new_mean
        self.var = new_var
        self.count = tot_count

    @property
    def std(self) -> np.ndarray:
        """Running standard deviation."""
        return np.sqrt(self.var)


class TimeLimit(Wrapper):
    """Truncate episodes after ``max_episode_steps`` steps."""

    def __init__(self, env: Env, max_episode_steps: int) -> None:
        super().__init__(env)
        if max_episode_steps <= 0:
            raise ValueError("max_episode_steps must be > 0")
        self._max_episode_steps = int(max_episode_steps)
        self._elapsed_steps = 0

    def reset(self, *, seed: Optional[int] = None, options: Optional[Dict[str, Any]] = None):
        self._elapsed_steps = 0
        return self.env.reset(seed=seed, options=options)

    def step(self, action):
        obs, reward, terminated, truncated, info = self.env.step(action)
        self._elapsed_steps += 1
        if self._elapsed_steps >= self._max_episode_steps:
            truncated = True
        return obs, reward, terminated, truncated, info


class ClipAction(ActionWrapper):
    """Clip continuous actions into the action space's bounds."""

    def __init__(self, env: Env) -> None:
        super().__init__(env)
        if not isinstance(env.action_space, Box):
            raise TypeError("ClipAction requires a Box action space")

    def action(self, action):
        space: Box = self.env.action_space  # type: ignore[assignment]
        return np.clip(action, space.low, space.high)


class RescaleAction(ActionWrapper):
    """Affinely rescale actions from ``[min_action, max_action]`` into the env's bounds."""

    def __init__(self, env: Env, min_action: float = -1.0, max_action: float = 1.0) -> None:
        super().__init__(env)
        if not isinstance(env.action_space, Box):
            raise TypeError("RescaleAction requires a Box action space")
        self.min_action = float(min_action)
        self.max_action = float(max_action)
        space: Box = env.action_space
        self.action_space = Box(
            low=self.min_action, high=self.max_action, shape=space.shape, dtype=space.dtype
        )

    def action(self, action):
        space: Box = self.env.action_space  # type: ignore[assignment]
        action = np.asarray(action, dtype=np.float64)
        frac = (action - self.min_action) / (self.max_action - self.min_action)
        rescaled = space.low + frac * (space.high - space.low)
        return np.clip(rescaled, space.low, space.high).astype(space.dtype)


class NormalizeObservation(ObservationWrapper):
    """Normalise observations to approximately zero mean / unit variance."""

    def __init__(self, env: Env, epsilon: float = 1e-8) -> None:
        super().__init__(env)
        if not isinstance(env.observation_space, Box):
            raise TypeError("NormalizeObservation requires a Box observation space")
        self.obs_rms = RunningMeanStd(shape=env.observation_space.shape)
        self.epsilon = float(epsilon)
        #: Whether to keep updating the running statistics.
        self.update_running_mean = True

    def observation(self, observation):
        observation = np.asarray(observation, dtype=np.float64)
        if self.update_running_mean:
            self.obs_rms.update(observation[None, ...])
        return (observation - self.obs_rms.mean) / np.sqrt(self.obs_rms.var + self.epsilon)


class RecordEpisodeStatistics(Wrapper):
    """Record per-episode return/length into ``info["episode"]`` on termination."""

    def __init__(self, env: Env, buffer_length: int = 100) -> None:
        super().__init__(env)
        self.episode_return = 0.0
        self.episode_length = 0
        self.return_queue: deque = deque(maxlen=buffer_length)
        self.length_queue: deque = deque(maxlen=buffer_length)

    def reset(self, *, seed: Optional[int] = None, options: Optional[Dict[str, Any]] = None):
        self.episode_return = 0.0
        self.episode_length = 0
        return self.env.reset(seed=seed, options=options)

    def step(self, action):
        obs, reward, terminated, truncated, info = self.env.step(action)
        self.episode_return += float(reward)
        self.episode_length += 1
        if terminated or truncated:
            info = dict(info)
            info["episode"] = {"r": self.episode_return, "l": self.episode_length}
            self.return_queue.append(self.episode_return)
            self.length_queue.append(self.episode_length)
        return obs, reward, terminated, truncated, info
