"""Per-tenant admission control: token buckets and queue caps.

The admission controller is the serve broker's first line of defence: it
decides *at submission time* whether a job may enter the dispatch queue at
all.  Two independent limits per tenant (see
:class:`~repro.serve.tenant.AdmissionSpec`):

* a **token bucket** on the submission rate — the bucket holds up to
  ``burst`` tokens, refills at ``rate`` tokens/second of simulated time and
  each admitted job consumes one token,
* a **queue cap** — at most ``max_queued`` of the tenant's jobs may be
  waiting in the dispatch queue simultaneously.

Decisions are pure functions of simulated time and prior decisions, so runs
remain bit-reproducible.  Rejected jobs never reach the device fleet; the
broker logs a ``rejected`` record event carrying the tenant and reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.serve.tenant import TenantMix

__all__ = ["AdmissionDecision", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    #: Machine-readable reason (``"ok"``, ``"rate_limit"`` or ``"queue_full"``).
    reason: str = "ok"


class _TokenBucket:
    """A lazily-refilled token bucket over simulated time."""

    __slots__ = ("rate", "burst", "tokens", "last_refill")

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)  # start full: an initial burst is admitted
        self.last_refill = 0.0

    def try_take(self, now: float) -> bool:
        elapsed = now - self.last_refill
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
            self.last_refill = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Tracks per-tenant buckets and queue occupancy for one simulation."""

    def __init__(self, mix: TenantMix) -> None:
        self.mix = mix
        self._buckets: Dict[str, _TokenBucket] = {}
        self._queued: Dict[str, int] = {}
        self._rejections: Dict[str, int] = {}
        for tenant in mix.tenants:
            if tenant.admission.rate is not None:
                self._buckets[tenant.name] = _TokenBucket(
                    tenant.admission.rate, tenant.admission.burst
                )
            self._queued[tenant.name] = 0
            self._rejections[tenant.name] = 0

    # -- admission ------------------------------------------------------------
    def admit(self, tenant_name: str, now: float) -> AdmissionDecision:
        """Decide whether one job of *tenant_name* may enter the queue at *now*.

        An admitted job counts against the tenant's queue occupancy until
        :meth:`job_started` (or a terminal :meth:`job_left`) is called.
        """
        spec = self.mix.tenant(tenant_name)
        cap = spec.admission.max_queued
        if cap is not None and self._queued[tenant_name] >= cap:
            self._rejections[tenant_name] += 1
            return AdmissionDecision(admitted=False, reason="queue_full")
        bucket = self._buckets.get(tenant_name)
        if bucket is not None and not bucket.try_take(now):
            self._rejections[tenant_name] += 1
            return AdmissionDecision(admitted=False, reason="rate_limit")
        self._queued[tenant_name] += 1
        return AdmissionDecision(admitted=True)

    # -- queue occupancy ------------------------------------------------------
    def job_started(self, tenant_name: str) -> None:
        """A queued job of *tenant_name* started running (left the queue)."""
        self._decrement(tenant_name)

    def job_requeued(self, tenant_name: str) -> None:
        """A running job of *tenant_name* re-entered the queue (outage/preemption).

        Requeued jobs re-occupy a queue slot but are never re-priced by the
        token bucket — admission is a one-time decision.
        """
        self._queued[tenant_name] += 1

    def job_left(self, tenant_name: str) -> None:
        """A queued job of *tenant_name* left the queue terminally (failed)."""
        self._decrement(tenant_name)

    def _decrement(self, tenant_name: str) -> None:
        if self._queued[tenant_name] <= 0:
            raise RuntimeError(f"queue underflow for tenant {tenant_name!r}")
        self._queued[tenant_name] -= 1

    # -- queries ---------------------------------------------------------------
    def queued(self, tenant_name: str) -> int:
        """Jobs of *tenant_name* currently occupying queue slots."""
        return self._queued[tenant_name]

    def rejections(self, tenant_name: str) -> int:
        """Jobs of *tenant_name* rejected so far."""
        return self._rejections[tenant_name]

    def tokens(self, tenant_name: str) -> Optional[float]:
        """Tokens currently in the tenant's bucket (``None`` if unlimited)."""
        bucket = self._buckets.get(tenant_name)
        return None if bucket is None else bucket.tokens

    def rate(self, tenant_name: str) -> Optional[float]:
        """Current refill rate of the tenant's bucket (``None`` if unlimited)."""
        bucket = self._buckets.get(tenant_name)
        return None if bucket is None else bucket.rate

    # -- adaptation ------------------------------------------------------------
    def set_rate(self, tenant_name: str, rate: float, now: float) -> None:
        """Change a tenant's token refill rate at simulated time *now*.

        Accrual earned at the old rate is settled first (the bucket refills
        up to *now* before the rate switches), so rate changes compose
        deterministically with admission decisions regardless of tick
        phase.  Tenants without a bucket (unlimited admission) cannot be
        rate-adapted; asking to is an error.
        """
        bucket = self._buckets.get(tenant_name)
        if bucket is None:
            raise KeyError(f"tenant {tenant_name!r} has no admission bucket")
        if rate <= 0:
            raise ValueError("rate must be positive")
        elapsed = now - bucket.last_refill
        if elapsed > 0:
            bucket.tokens = min(bucket.burst, bucket.tokens + elapsed * bucket.rate)
            bucket.last_refill = now
        bucket.rate = float(rate)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<AdmissionController mix={self.mix.name!r} queued={dict(self._queued)}>"
