"""repro.serve — the multi-tenant QoS layer.

The serve layer makes the *demand side* of the simulated cloud realistic:
instead of one anonymous stream of jobs, a named :class:`TenantMix` describes
tenants with priority classes, fair-share weights, arrival/workload mixes,
SLO targets and admission limits.  The :class:`ServeBroker` then dispatches
through a tenant-aware queue — admission control sheds excess load
(``rejected`` events), priority classes overtake, same-class tenants share
capacity by weighted fair queueing, and jobs past their queueing-delay SLO
preempt strictly lower classes (re-using the outage abort/requeue machinery
of :mod:`repro.dynamics`).  Per-tenant outcomes are summarised by
:func:`compute_tenant_reports`: SLO attainment, p50/p95/p99 queueing and
completion latency, and rejected/preempted/failed counts.

Selectable anywhere a config travels::

    env = QCloudSimEnv(SimulationConfig(num_jobs=200, tenants="free-tier-vs-premium"))
    env.run_until_complete()
    for report in env.tenant_reports():
        print(report.tenant, report.attainment)

Presets (``single``, ``free-tier-vs-premium``, ``batch-vs-interactive``,
``noisy-neighbor``) are registered in :mod:`repro.serve.presets`.  Every run
is bit-reproducible given its seed, and the ``single`` preset is
byte-identical to the plain pre-serve broker.
"""

from repro.serve.accounting import (
    TenantSLOReport,
    compute_tenant_reports,
    compute_tenant_reports_streaming,
    slo_satisfied,
)
from repro.serve.admission import AdmissionController, AdmissionDecision
from repro.serve.broker import ServeBroker
from repro.serve.presets import (
    available_tenant_mixes,
    get_tenant_mix,
    register_tenant_mix,
    resolve_tenant_mix,
)
from repro.serve.tenant import AdmissionSpec, SLOSpec, TenantMix, TenantSpec
from repro.serve.workload import apportion_jobs, route_jobs_to_tenants, tenant_jobs

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionSpec",
    "SLOSpec",
    "ServeBroker",
    "TenantMix",
    "TenantSLOReport",
    "TenantSpec",
    "apportion_jobs",
    "available_tenant_mixes",
    "compute_tenant_reports",
    "compute_tenant_reports_streaming",
    "get_tenant_mix",
    "register_tenant_mix",
    "resolve_tenant_mix",
    "route_jobs_to_tenants",
    "slo_satisfied",
    "tenant_jobs",
]
