"""Tenant specifications: the demand side of multi-tenant serving.

A :class:`TenantSpec` describes one tenant of the quantum cloud — who is
sending jobs, how important they are, what they were promised and how much
they are allowed to submit:

* a **priority class** (smaller = more important) used by the serve broker's
  dispatch queue and preemption policy,
* a **fair-share weight** dividing capacity among tenants of the same class,
* an **arrival/workload mix** (a :class:`~repro.dynamics.scenario.TrafficSpec`
  reusing the generators of :mod:`repro.workloads.arrivals`, plus optional
  size/depth/shot overrides and a share of the total job count),
* **SLO targets** (:class:`SLOSpec`): a queueing-delay deadline, a completion
  deadline and a fidelity floor,
* **admission limits** (:class:`AdmissionSpec`): a token bucket on the
  submission rate and a cap on concurrently queued jobs.

A :class:`TenantMix` is a named, frozen collection of tenants — the unit the
configuration layer, the experiment grid and the CLI select by name (see
:mod:`repro.serve.presets`).  Like the scenario specs of PR 3, everything
here is a frozen dataclass: picklable, with a ``repr`` that doubles as a
stable content fingerprint for result caching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.dynamics.scenario import TrafficSpec

__all__ = ["SLOSpec", "AdmissionSpec", "TenantSpec", "TenantMix"]


@dataclass(frozen=True)
class SLOSpec:
    """Service-level objectives promised to one tenant.

    All targets are optional; ``None`` means the tenant has no promise on
    that axis.  The serve broker uses ``queue_deadline`` as its preemption
    trigger: once a job of this tenant has waited longer than the deadline,
    strictly lower-priority classes may be preempted to make room.
    """

    #: Max acceptable queueing delay (start - arrival), seconds.
    queue_deadline: Optional[float] = None
    #: Max acceptable completion latency (finish - arrival), seconds.
    completion_deadline: Optional[float] = None
    #: Min acceptable final fidelity of a completed job.
    fidelity_floor: Optional[float] = None

    def __post_init__(self) -> None:
        if self.queue_deadline is not None and self.queue_deadline <= 0:
            raise ValueError("queue_deadline must be positive when given")
        if self.completion_deadline is not None and self.completion_deadline <= 0:
            raise ValueError("completion_deadline must be positive when given")
        if self.fidelity_floor is not None and not 0.0 < self.fidelity_floor <= 1.0:
            raise ValueError("fidelity_floor must be in (0, 1] when given")

    @property
    def is_unbounded(self) -> bool:
        """Whether the tenant carries no SLO targets at all."""
        return (
            self.queue_deadline is None
            and self.completion_deadline is None
            and self.fidelity_floor is None
        )


@dataclass(frozen=True)
class AdmissionSpec:
    """Per-tenant admission limits (token bucket + queue cap).

    ``rate`` is the sustained submission rate in jobs/second; ``burst`` is
    the bucket depth (how many jobs may arrive back-to-back before the
    bucket empties).  ``max_queued`` caps the number of this tenant's jobs
    waiting in the dispatch queue; submissions beyond either limit are
    rejected with a ``rejected`` record event.  ``rate=None`` disables the
    token bucket, ``max_queued=None`` disables the queue cap — the default
    admits everything, like the plain broker.
    """

    #: Sustained admission rate, jobs/second (``None`` — unlimited).
    rate: Optional[float] = None
    #: Token-bucket depth (max burst admitted at once).
    burst: float = 10.0
    #: Max jobs of this tenant waiting in the dispatch queue (``None`` — no cap).
    max_queued: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be positive when given")
        if self.burst < 1.0:
            raise ValueError("burst must be at least 1 (one admissible job)")
        if self.max_queued is not None and self.max_queued <= 0:
            raise ValueError("max_queued must be positive when given")

    @property
    def is_unlimited(self) -> bool:
        """Whether this spec never rejects anything."""
        return self.rate is None and self.max_queued is None


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: priority class, traffic mix, SLOs and admission limits."""

    #: Tenant name (unique within a mix).
    name: str
    #: Priority class, **smaller = more important** (mirrors ``QJob.priority``).
    priority_class: int = 0
    #: Fair-share weight among tenants of the same priority class.
    weight: float = 1.0
    #: Fraction of the configured job count this tenant contributes (shares
    #: are normalised over the mix).
    share: float = 1.0
    #: Arrival process / job-size shaping (``None`` — the config's default
    #: arrival model).
    traffic: Optional[TrafficSpec] = None
    #: Qubit-demand range override (``None`` — the config's range).
    qubit_range: Optional[Tuple[int, int]] = None
    #: Circuit-depth range override (``None`` — the config's range).
    depth_range: Optional[Tuple[int, int]] = None
    #: Shot-count range override (``None`` — the config's range).
    shots_range: Optional[Tuple[int, int]] = None
    #: ``QJob.priority`` stamped on this tenant's generated jobs.
    job_priority: int = 0
    #: Service-level objectives.
    slo: SLOSpec = field(default_factory=SLOSpec)
    #: Admission limits.
    admission: AdmissionSpec = field(default_factory=AdmissionSpec)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.share <= 0:
            raise ValueError("share must be positive")
        for attr in ("qubit_range", "depth_range", "shots_range"):
            bounds = getattr(self, attr)
            if bounds is not None and bounds[0] > bounds[1]:
                raise ValueError(f"invalid {attr}: {bounds}")

    @property
    def shapes_workload(self) -> bool:
        """Whether this tenant overrides any part of the default workload."""
        return (
            self.traffic is not None
            or self.qubit_range is not None
            or self.depth_range is not None
            or self.shots_range is not None
        )


@dataclass(frozen=True)
class TenantMix:
    """A named set of tenants sharing one simulated cloud."""

    name: str
    tenants: Tuple[TenantSpec, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("mix name must be non-empty")
        if not self.tenants:
            raise ValueError("a tenant mix needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")

    def tenant(self, name: str) -> TenantSpec:
        """Look up a tenant by name."""
        for spec in self.tenants:
            if spec.name == name:
                return spec
        raise KeyError(f"no tenant named {name!r} in mix {self.name!r}")

    def tenant_names(self) -> Tuple[str, ...]:
        """Names of all tenants in mix order."""
        return tuple(t.name for t in self.tenants)

    @property
    def default_tenant(self) -> TenantSpec:
        """The tenant untagged jobs are attributed to (the first in the mix)."""
        return self.tenants[0]

    @property
    def is_passthrough(self) -> bool:
        """Whether this mix leaves the configured workload untouched.

        A passthrough mix (one tenant, no traffic shaping, no overrides)
        runs the exact default workload — the property the single-tenant
        byte-equality guarantee is built on.
        """
        return len(self.tenants) == 1 and not self.tenants[0].shapes_workload

    @property
    def priority_classes(self) -> Tuple[int, ...]:
        """Distinct priority classes in the mix, most important first."""
        return tuple(sorted({t.priority_class for t in self.tenants}))

    @property
    def is_multiclass(self) -> bool:
        """Whether tenants span more than one priority class (enables the
        serve broker's cross-class overtaking and preemption paths)."""
        return len(self.priority_classes) > 1
