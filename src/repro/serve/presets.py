"""Named tenant-mix presets and the tenant-mix registry.

The registry maps mix names to :class:`~repro.serve.tenant.TenantMix`
instances so that configurations, experiment grids and the CLI can select a
demand mix by name (``SimulationConfig(tenants="free-tier-vs-premium")``,
``repro serve --tenants noisy-neighbor``).  Four presets ship built-in:

=======================  =====================================================
``single``               one unlimited tenant, default workload — byte-
                         identical to the plain broker
``free-tier-vs-premium`` a premium class with tight SLOs and 3x weight vs a
                         rate-limited, sheddable free tier
``batch-vs-interactive`` small latency-sensitive interactive jobs that may
                         preempt a best-effort batch backlog
``noisy-neighbor``       a bursty MMPP tenant held back by admission control
                         so a well-behaved victim tenant keeps its SLOs
=======================  =====================================================

Arrival-rate and deadline constants are sized against the paper's case-study
workload (a 100-job batch drains in roughly 5-6 k simulated seconds).
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.dynamics.scenario import TrafficSpec
from repro.serve.tenant import AdmissionSpec, SLOSpec, TenantMix, TenantSpec

__all__ = [
    "register_tenant_mix",
    "get_tenant_mix",
    "available_tenant_mixes",
    "resolve_tenant_mix",
]

_REGISTRY: Dict[str, TenantMix] = {}


def register_tenant_mix(mix: TenantMix) -> None:
    """Register *mix* under its name (overwrites existing entries)."""
    _REGISTRY[mix.name] = mix


def get_tenant_mix(name: str) -> TenantMix:
    """Look up a registered tenant mix by name."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown tenant mix {name!r}; available: {available_tenant_mixes()}")
    return _REGISTRY[name]


def available_tenant_mixes() -> List[str]:
    """Names of all registered tenant mixes (presets first, in preset order)."""
    return list(_REGISTRY)


def resolve_tenant_mix(mix: Union[str, TenantMix]) -> TenantMix:
    """Resolve a mix reference: a registered name or an explicit instance."""
    if isinstance(mix, TenantMix):
        return mix
    return get_tenant_mix(mix)


def _register_presets() -> None:
    register_tenant_mix(
        TenantMix(
            name="single",
            description="one unlimited tenant, default workload (the plain broker's world)",
            tenants=(TenantSpec(name="default"),),
        )
    )
    register_tenant_mix(
        TenantMix(
            name="free-tier-vs-premium",
            description="premium tenants with SLOs and 3x weight vs a rate-limited free tier",
            tenants=(
                TenantSpec(
                    name="premium",
                    priority_class=0,
                    weight=3.0,
                    share=0.3,
                    traffic=TrafficSpec(model="poisson", rate=0.01),
                    slo=SLOSpec(queue_deadline=1200.0, completion_deadline=2400.0),
                ),
                TenantSpec(
                    name="free",
                    priority_class=2,
                    weight=1.0,
                    share=0.7,
                    traffic=TrafficSpec(model="poisson", rate=0.03),
                    admission=AdmissionSpec(rate=0.02, burst=5.0, max_queued=25),
                ),
            ),
        )
    )
    register_tenant_mix(
        TenantMix(
            name="batch-vs-interactive",
            description="latency-sensitive interactive jobs preempting a best-effort batch backlog",
            tenants=(
                TenantSpec(
                    name="interactive",
                    priority_class=0,
                    weight=2.0,
                    share=0.5,
                    traffic=TrafficSpec(model="diurnal", rate=0.005, peak_rate=0.06, period=7200.0),
                    qubit_range=(130, 180),
                    depth_range=(5, 10),
                    shots_range=(10_000, 40_000),
                    slo=SLOSpec(queue_deadline=600.0, completion_deadline=1500.0),
                ),
                TenantSpec(
                    name="batch",
                    priority_class=3,
                    weight=1.0,
                    share=0.5,
                    traffic=TrafficSpec(model="poisson", rate=0.01),
                    qubit_range=(200, 350),
                    depth_range=(10, 20),
                    shots_range=(50_000, 100_000),
                    job_priority=5,
                ),
            ),
        )
    )
    register_tenant_mix(
        TenantMix(
            name="noisy-neighbor",
            description="a bursty tenant shed by admission control next to a protected victim",
            tenants=(
                TenantSpec(
                    name="victim",
                    priority_class=1,
                    weight=1.0,
                    share=0.4,
                    traffic=TrafficSpec(model="poisson", rate=0.01),
                    slo=SLOSpec(queue_deadline=1800.0, fidelity_floor=0.05),
                ),
                TenantSpec(
                    name="neighbor",
                    priority_class=1,
                    weight=1.0,
                    share=0.6,
                    traffic=TrafficSpec(
                        model="mmpp",
                        rate=0.01,
                        burst_rate=0.2,
                        dwell_normal=900.0,
                        dwell_burst=300.0,
                        qubit_dist="heavy_tail",
                        tail_alpha=2.2,
                    ),
                    admission=AdmissionSpec(rate=0.015, burst=8.0, max_queued=15),
                ),
            ),
        )
    )


_register_presets()
