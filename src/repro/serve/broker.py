"""The serve broker: tenant-aware dispatch, fair-share ordering, preemption.

:class:`ServeBroker` extends the paper's :class:`~repro.cloud.broker.Broker`
with the demand-side machinery of a multi-tenant cloud:

* **admission control** — every submission passes the per-tenant token
  bucket / queue cap of :class:`~repro.serve.admission.AdmissionController`;
  shed jobs get a ``rejected`` record event and never touch the fleet,
* **tenant-aware dispatch** — the plain broker's FIFO admission section is
  replaced by a dispatch queue ordered by ``(priority class, weighted-fair
  virtual finish tag, job priority, submission order)``.  Tenants of the same
  class share capacity in proportion to their weights (start-time fair
  queueing over qubit demand); smaller priority classes dispatch first,
* **cross-class overtaking** — when the job at the head of the queue cannot
  fit and a strictly more important class is waiting, the head yields its
  turn instead of head-of-line-blocking the premium job (the plain broker's
  convoy behaviour is preserved within a class),
* **deadline-driven preemption** — once a job has waited past its tenant's
  queueing-delay SLO, the broker aborts the sub-jobs of strictly
  lower-priority running jobs (re-using the outage abort/release/requeue
  machinery of :mod:`repro.dynamics`) until the deadline-missing job fits.
  Victims are requeued and count the preemption against the shared
  ``max_requeues`` starvation guard.

With a single-class mix every one of these paths degenerates to the plain
broker's behaviour: the dispatch keys are monotone in submission order, the
floor is never yielded, nothing is preempted and (with the ``single``
preset) nothing is rejected — runs are byte-identical to the pre-serve
broker, which the regression tests assert across all four paper policies.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Generator, List, Optional, Tuple, Union

from repro.cloud.broker import Broker
from repro.cloud.qcloud import QCloud
from repro.cloud.qjob import QJob, QJobStatus
from repro.cloud.records import JobRecord, JobRecordsManager
from repro.des.environment import Environment
from repro.des.events import Initialize, Process
from repro.des.resources.resource import Request, Resource
from repro.serve.admission import AdmissionController
from repro.serve.tenant import TenantMix, TenantSpec

__all__ = ["ServeBroker"]

_ticket_key = lambda ticket: ticket.key  # noqa: E731 - bisect key


class _DispatchTicket(Request):
    """An admission request carrying an externally-computed dispatch key."""

    def __init__(self, resource: "Resource", key: Tuple = (0,)) -> None:
        self.key = key
        super().__init__(resource)


class _TicketQueue(list):
    """A list kept sorted by ticket key.

    Unlike :class:`~repro.des.resources.resource.SortedQueue` (which re-sorts
    on every append), insertion uses :func:`bisect.insort` — O(log n)
    comparisons per enqueue, which matters when arrival storms keep the
    dispatch queue hundreds of tickets deep.  ``insort`` keeps equal keys in
    insertion order, matching a stable sort.
    """

    def append(self, item: Any) -> None:
        bisect.insort(self, item, key=_ticket_key)


class _DispatchQueue(Resource):
    """A capacity-1 resource granting requests in dispatch-key order.

    Identical event mechanics to the plain broker's FIFO admission
    :class:`~repro.des.resources.resource.Resource`; only the grant order of
    *waiting* tickets differs (sorted by key instead of insertion order).
    """

    PutQueue = _TicketQueue
    _request_cls = _DispatchTicket

    def _do_put(self, event: _DispatchTicket) -> Optional[bool]:
        if len(self.users) < self.capacity:
            self.users.append(event)
            event.usage_since = self.env.now
            event.succeed()
            return None
        # The single slot is taken: no later ticket can be granted either, so
        # stop the queue pump instead of probing every waiting ticket (keeps
        # each release O(1) when arrival storms hold hundreds of tickets).
        return False


class _JobEntry:
    """Per-job dispatch state tracked by the serve broker."""

    __slots__ = (
        "job",
        "tenant",
        "seq",
        "start_tag",
        "finish_tag",
        "occupies_queue_slot",
    )

    def __init__(self, job: QJob, tenant: TenantSpec, seq: int) -> None:
        self.job = job
        self.tenant = tenant
        self.seq = seq
        self.start_tag = 0.0
        self.finish_tag = 0.0
        #: Whether the job currently counts against its tenant's queue cap.
        self.occupies_queue_slot = False

    @property
    def class_rank(self) -> int:
        return self.tenant.priority_class

    @property
    def key(self) -> Tuple[int, float, int, int]:
        """Dispatch ordering: class, fair-share tag, job priority, submission."""
        return (self.class_rank, self.finish_tag, self.job.priority, self.seq)


class _RunningInfo:
    """A running job's plan and sub-processes (the preemption target set)."""

    __slots__ = ("job", "plan", "processes", "class_rank", "started_at")

    def __init__(
        self, job: QJob, plan: Any, processes: List[Process], class_rank: int, started_at: float
    ) -> None:
        self.job = job
        self.plan = plan
        self.processes = processes
        self.class_rank = class_rank
        self.started_at = started_at


class ServeBroker(Broker):
    """A :class:`~repro.cloud.broker.Broker` serving a multi-tenant mix.

    Parameters
    ----------
    env, cloud, policy, records:
        As for the plain broker.
    tenants:
        The :class:`~repro.serve.tenant.TenantMix` (or registered mix name)
        describing the demand side.
    max_plan_attempts, max_requeues:
        Safety valves inherited from the plain broker; preemptions count
        against ``max_requeues`` exactly like outage kills.
    checkpointing:
        Checkpointed preemption (inherited): preemption and outage victims
        save their completed shots and resume with only the remainder — a
        preempted job no longer pays for its lost attempt twice.
    """

    def __init__(
        self,
        env: Environment,
        cloud: QCloud,
        policy: Any,
        records: JobRecordsManager,
        tenants: Union[TenantMix, str],
        max_plan_attempts: int = 100_000,
        max_requeues: int = 100,
        checkpointing: bool = False,
    ) -> None:
        super().__init__(
            env,
            cloud,
            policy,
            records,
            max_plan_attempts=max_plan_attempts,
            max_requeues=max_requeues,
            checkpointing=checkpointing,
        )
        from repro.serve.presets import resolve_tenant_mix

        self.mix = resolve_tenant_mix(tenants)
        self.admission_controller = AdmissionController(self.mix)
        #: Jobs shed by admission control.
        self.rejected_jobs: List[QJob] = []
        #: Total preemption events issued.
        self.preempted_total = 0
        #: Preemption events per victim tenant (streaming reports read this:
        #: a streaming records manager keeps no event log to count from).
        self.preempted_by_tenant: Dict[str, int] = {t.name: 0 for t in self.mix.tenants}
        #: Tenant attribution of every submitted job (admitted or rejected).
        self.tenant_of: Dict[int, str] = {}

        self._dispatch = _DispatchQueue(env, capacity=1)
        self._entries: Dict[int, _JobEntry] = {}
        self._running: Dict[int, _RunningInfo] = {}
        self._multiclass = self.mix.is_multiclass
        self._seq = 0
        #: Start-time-fair-queueing state: global virtual clock plus one
        #: virtual finish time per tenant.
        self._vclock = 0.0
        self._tenant_vft: Dict[str, float] = {t.name: 0.0 for t in self.mix.tenants}
        #: The floor-holding entry currently parked on a capacity wait, plus
        #: its nudge event (so premium arrivals can wake it to yield).
        self._floor_wait: Optional[Tuple[_JobEntry, Any]] = None

    # -- submission -----------------------------------------------------------------
    def submit(self, job: QJob) -> Process:
        """Admission-check *job*, enqueue it and return its process.

        Untagged jobs are stamped with the mix's default tenant; a job tagged
        with a tenant the mix does not know is an error (silently
        re-attributing it would corrupt the SLO accounting).  Rejected jobs
        return a process that terminates immediately (so callers can still
        wait on every submission uniformly).
        """
        if job.tenant is None:
            job.tenant = self.mix.default_tenant.name
        elif job.tenant not in self._tenant_vft:
            raise KeyError(
                f"job {job.job_id} is tagged for unknown tenant {job.tenant!r}; "
                f"mix {self.mix.name!r} serves {list(self._tenant_vft)}"
            )
        tenant = self.mix.tenant(job.tenant)
        self.tenant_of[job.job_id] = job.tenant

        decision = self.admission_controller.admit(job.tenant, self.env.now)
        if not decision.admitted:
            job.status = QJobStatus.REJECTED
            self.rejected_jobs.append(job)
            self.records.log_rejection(
                job.job_id, self.env.now, reason=f"{job.tenant}:{decision.reason}"
            )
            process = self.env.process(self._rejected_process(job))
            self.job_processes.append(process)
            return process

        entry = _JobEntry(job, tenant, self._seq)
        self._seq += 1
        entry.occupies_queue_slot = True
        # Start-time fair queueing: the job's virtual span is its qubit
        # demand scaled by its tenant's weight.
        entry.start_tag = max(self._vclock, self._tenant_vft[job.tenant])
        entry.finish_tag = entry.start_tag + job.num_qubits / tenant.weight
        self._tenant_vft[job.tenant] = entry.finish_tag
        self._entries[job.job_id] = entry

        self._nudge_floor_holder(entry)
        return super().submit(job)

    def _rejected_process(self, job: QJob) -> Generator[object, object, None]:
        """A submission process for a rejected job: terminates immediately."""
        return None
        yield  # pragma: no cover — unreachable; makes this a generator

    # -- tenant-aware dispatch ---------------------------------------------------------
    def _plan_and_reserve(self, job: QJob) -> Generator[object, object, Optional[Any]]:
        """Plan/reserve through the tenant-aware dispatch queue.

        Mirrors the plain broker's plan-wait-replan loop, with two extra
        transitions (both unreachable in single-class mixes): yielding the
        floor to a waiting higher class, and deadline-driven preemption of
        lower-class running jobs.
        """
        entry = self._entries[job.job_id]
        attempts = 0
        while True:
            with self._dispatch.request(entry.key) as ticket:
                yield ticket
                self._vclock = max(self._vclock, entry.start_tag)
                while True:
                    plan = self.policy.plan(job, self.cloud.online_devices)
                    if plan is not None:
                        if plan.total_qubits != job.num_qubits:
                            raise RuntimeError(
                                f"policy {self.policy.name!r} allocated {plan.total_qubits} "
                                f"qubits for a job needing {job.num_qubits}"
                            )
                        if not plan.is_feasible_now():
                            raise RuntimeError(
                                f"policy {self.policy.name!r} returned an infeasible plan "
                                f"for job {job.job_id}"
                            )
                        reservations = [
                            alloc.device.request_qubits(alloc.num_qubits)
                            for alloc in plan.allocations
                        ]
                        yield self.env.all_of(reservations)
                        return plan
                    attempts += 1
                    if attempts >= self.max_plan_attempts:
                        job.status = QJobStatus.FAILED
                        self.failed_jobs.append(job)
                        self.records.log_failure(
                            job.job_id, self.env.now, "no feasible allocation"
                        )
                        self._note_failed(job)
                        return None
                    if self._should_yield_floor(entry):
                        break  # release the floor to a more important class
                    self._maybe_preempt_for(job, entry)
                    yield self._capacity_wait(entry)
            # Floor yielded: the premium waiter was granted it on release.
            # Re-request our turn immediately — our fair tag keeps our place
            # in line, and waiting for a capacity signal instead would idle
            # this job on free qubits until some other job completes.

    def _should_yield_floor(self, entry: _JobEntry) -> bool:
        """Whether a strictly more important class is waiting behind *entry*."""
        if not self._multiclass:
            return False
        queue = self._dispatch.queue
        return bool(queue) and queue[0].key[0] < entry.class_rank

    def _capacity_wait(self, entry: _JobEntry) -> Any:
        """The event a blocked floor holder waits on before re-planning.

        Single-class mixes wait on the raw capacity-released signal exactly
        like the plain broker.  Multi-class floor holders additionally wait
        on a *nudge* event (so a premium arrival can wake them to yield) and
        on their queueing-SLO deadline (so the preemption check runs the
        moment the deadline expires, not at the next capacity change).
        """
        capacity = self.cloud.capacity_released
        if not self._multiclass:
            return capacity
        nudge = self.env.event()
        self._floor_wait = (entry, nudge)

        def _clear(_event: Any) -> None:
            if self._floor_wait is not None and self._floor_wait[1] is nudge:
                self._floor_wait = None

        events = [capacity, nudge]
        deadline = entry.tenant.slo.queue_deadline
        if deadline is not None:
            wake_at = entry.job.arrival_time + deadline
            if wake_at > self.env.now:
                events.append(self.env.timeout_at(wake_at))
        condition = self.env.any_of(events)
        condition.callbacks.append(_clear)
        return condition

    def _nudge_floor_holder(self, entry: _JobEntry) -> None:
        """Wake a parked floor holder outranked by the newly-admitted *entry*."""
        if self._floor_wait is None:
            return
        holder, nudge = self._floor_wait
        if entry.class_rank < holder.class_rank and not nudge.triggered:
            self._floor_wait = None
            nudge.succeed()

    # -- deadline-driven preemption ---------------------------------------------------
    def _maybe_preempt_for(self, job: QJob, entry: _JobEntry) -> None:
        """Preempt lower-class running jobs once *job* misses its queue SLO.

        Only fires when (a) the mix is multi-class, (b) the tenant promises a
        queueing-delay deadline that has already passed, and (c) aborting a
        set of strictly lower-priority running jobs would actually free
        enough online qubits for *job* to fit.  Victims' sub-jobs are
        interrupted; the outage machinery releases their reservations and
        requeues them.
        """
        deadline = entry.tenant.slo.queue_deadline
        if not self._multiclass or deadline is None:
            return
        if self.env.now < job.arrival_time + deadline:
            return
        free = sum(d.free_qubits for d in self.cloud.online_devices)
        need = job.num_qubits - free
        if need <= 0:
            return  # already fits capacity-wise; the policy will place it

        victims: List[Tuple[Tuple[int, float, int], _RunningInfo, int]] = []
        for info in self._running.values():
            if info.class_rank <= entry.class_rank:
                continue
            alive = [p for p in info.processes if p.is_alive]
            if not alive or any(isinstance(p.target, Initialize) for p in alive):
                # Nothing left to reclaim, or sub-jobs not yet started
                # (interrupting an unstarted process is not supported).
                continue
            reclaim = sum(
                alloc.num_qubits for alloc in info.plan.allocations if alloc.device.online
            )
            if reclaim <= 0:
                continue
            order = (-info.class_rank, -info.started_at, -info.job.job_id)
            victims.append((order, info, reclaim))

        victims.sort(key=lambda v: v[0])
        chosen: List[_RunningInfo] = []
        reclaimed = 0
        for _, info, reclaim in victims:
            chosen.append(info)
            reclaimed += reclaim
            if reclaimed >= need:
                break
        if reclaimed < need:
            return  # preemption cannot make the job fit — keep waiting

        for info in chosen:
            self.preempted_total += 1
            self.preempted_by_tenant[info.job.tenant] += 1
            self.records.log_preemption(
                info.job.job_id,
                self.env.now,
                detail=f"by job {job.job_id} ({job.tenant})",
            )
            for process in info.processes:
                if process.is_alive:
                    process.interrupt("preempted")

    # -- life-cycle hooks --------------------------------------------------------------
    def _register_running(self, job: QJob, plan: Any, sub_processes: List[Process]) -> None:
        entry = self._entries[job.job_id]
        self._running[job.job_id] = _RunningInfo(
            job, plan, sub_processes, entry.class_rank, self.env.now
        )
        if entry.occupies_queue_slot:
            entry.occupies_queue_slot = False
            self.admission_controller.job_started(job.tenant)

    def _unregister_running(self, job: QJob) -> None:
        self._running.pop(job.job_id, None)

    def _note_requeued(self, job: QJob, retries: int) -> None:
        super()._note_requeued(job, retries)
        entry = self._entries[job.job_id]
        if not entry.occupies_queue_slot:
            entry.occupies_queue_slot = True
            self.admission_controller.job_requeued(job.tenant)
        # Re-tag the entry as a fresh arrival: the job will re-execute (and
        # re-consume capacity), so it re-charges its tenant's fair share and
        # re-enters its class behind currently waiting peers — exactly where
        # the plain broker's FIFO puts a requeued job (byte-identity for the
        # single mix depends on this).
        entry.seq = self._seq
        self._seq += 1
        entry.start_tag = max(self._vclock, self._tenant_vft[job.tenant])
        entry.finish_tag = entry.start_tag + job.num_qubits / entry.tenant.weight
        self._tenant_vft[job.tenant] = entry.finish_tag

    def _note_failed(self, job: QJob) -> None:
        entry = self._entries.get(job.job_id)
        if entry is not None and entry.occupies_queue_slot:
            entry.occupies_queue_slot = False
            self.admission_controller.job_left(job.tenant)

    # -- reporting ---------------------------------------------------------------------
    def tenant_reports(self, percentile_method: str = "exact") -> List[Any]:
        """Per-tenant SLO reports over everything logged so far.

        ``percentile_method="p2"`` swaps the exact ``np.percentile`` tail
        latencies for constant-memory streaming P² estimates (million-job
        runs; see :mod:`repro.metrics.quantiles`).

        With a :class:`~repro.cloud.records_stream.StreamingRecordsManager`
        installed there are no materialised records to aggregate; reports are
        instead read straight off the manager's per-tenant P² sketches plus
        the broker's own counters (rejections, failures, preemptions).
        """
        from repro.serve.accounting import compute_tenant_reports

        records = self.records
        if not getattr(records, "KEEPS_EVENT_DETAIL", True) and hasattr(
            records, "latency_percentiles"
        ):
            from repro.serve.accounting import compute_tenant_reports_streaming

            failed_by_tenant: Dict[str, int] = {t.name: 0 for t in self.mix.tenants}
            for job in self.failed_jobs:
                name = job.tenant or self.tenant_of.get(job.job_id)
                if name in failed_by_tenant:
                    failed_by_tenant[name] += 1
            return compute_tenant_reports_streaming(
                self.mix,
                records,
                self.tenant_of,
                rejected={
                    t.name: self.admission_controller.rejections(t.name)
                    for t in self.mix.tenants
                },
                failed=failed_by_tenant,
                preemptions=self.preempted_by_tenant,
            )
        return compute_tenant_reports(
            self.mix,
            self.records.completed_records,
            self.records.events,
            self.tenant_of,
            percentile_method=percentile_method,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ServeBroker mix={self.mix.name!r} "
            f"policy={getattr(self.policy, 'name', '?')!r}>"
        )
