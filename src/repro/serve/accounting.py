"""Per-tenant SLO accounting: attainment, tail latency, shed/preempted counts.

Turns the raw output of a serving run — completed :class:`JobRecord`\\ s plus
the event log (``rejected`` / ``preempted`` / ``failed`` events) — into one
:class:`TenantSLOReport` per tenant: the metrics a cloud operator actually
watches.

Definitions
-----------
* **queueing latency** — a completed job's :attr:`JobRecord.wait_time`:
  cumulative time *not* executing.  For a single-attempt job that is exactly
  ``start - arrival``; for a job requeued after outages/preemptions it also
  counts every inter-attempt wait (but not the aborted attempts' execution
  time),
* **completion latency** — ``finish - arrival`` (turnaround),
* **SLO-violating job** — a *completed* job that breaks any of its tenant's
  targets (queue deadline, completion deadline, fidelity floor),
* **attainment** — the fraction of *submitted* jobs that completed within
  every target.  Rejected and failed jobs count against attainment: shedding
  a job is an SLO miss from the customer's point of view.  A tenant that
  submitted nothing has no attainment (``None``, rendered as ``-``),
* **p50/p95/p99** — linear-interpolation percentiles over completed jobs.

All quantities are deterministic functions of the run's records and events,
so reports are bit-reproducible whenever the run is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.cloud.records import JobEvent, JobRecord
from repro.serve.tenant import SLOSpec, TenantMix, TenantSpec

__all__ = [
    "TenantSLOReport",
    "slo_satisfied",
    "compute_tenant_reports",
    "compute_tenant_reports_streaming",
]


@dataclass(frozen=True)
class TenantSLOReport:
    """Operator-facing serving metrics of one tenant over one run."""

    tenant: str
    priority_class: int
    weight: float

    #: Jobs submitted (admitted + rejected).
    submitted: int
    #: Jobs completed successfully.
    completed: int
    #: Jobs shed by admission control.
    rejected: int
    #: Jobs that terminally failed (requeue limit, no feasible allocation).
    failed: int
    #: Preemption events suffered (one job may be preempted repeatedly).
    preemptions: int
    #: Completed jobs that broke at least one SLO target.
    violated: int

    #: Fraction of submitted jobs completed within every SLO target (0..1),
    #: or ``None`` for a tenant that submitted nothing — an idle tenant has
    #: no attainment, and must not read as perfectly served in tables or
    #: sweep aggregates.
    attainment: Optional[float]

    #: Queueing-latency percentiles over completed jobs (``None`` if none).
    queue_p50: Optional[float] = None
    queue_p95: Optional[float] = None
    queue_p99: Optional[float] = None
    #: Completion-latency percentiles over completed jobs (``None`` if none).
    completion_p50: Optional[float] = None
    completion_p95: Optional[float] = None
    completion_p99: Optional[float] = None
    #: Mean final fidelity over completed jobs (``None`` if none).
    mean_fidelity: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        """Flat JSON/CSV-friendly representation."""
        return {
            "tenant": self.tenant,
            "priority_class": self.priority_class,
            "weight": self.weight,
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "failed": self.failed,
            "preemptions": self.preemptions,
            "violated": self.violated,
            "attainment": self.attainment,
            "queue_p50": self.queue_p50,
            "queue_p95": self.queue_p95,
            "queue_p99": self.queue_p99,
            "completion_p50": self.completion_p50,
            "completion_p95": self.completion_p95,
            "completion_p99": self.completion_p99,
            "mean_fidelity": self.mean_fidelity,
        }


def slo_satisfied(record: JobRecord, slo: SLOSpec) -> bool:
    """Whether a completed job met every target of its tenant's SLO."""
    if slo.queue_deadline is not None and record.wait_time > slo.queue_deadline:
        return False
    if slo.completion_deadline is not None and record.turnaround_time > slo.completion_deadline:
        return False
    if slo.fidelity_floor is not None and record.fidelity < slo.fidelity_floor:
        return False
    return True


def _percentiles(values: List[float], method: str = "exact") -> Dict[str, Optional[float]]:
    if not values:
        return {"p50": None, "p95": None, "p99": None}
    if method == "p2":
        # Constant-memory streaming sketches (opt-in for million-job runs;
        # estimates converge on the exact values as the sample grows).
        from repro.metrics.quantiles import P2Quantile

        sketches = [P2Quantile(0.5), P2Quantile(0.95), P2Quantile(0.99)]
        for value in values:
            for sketch in sketches:
                sketch.add(value)
        return {
            "p50": sketches[0].value,
            "p95": sketches[1].value,
            "p99": sketches[2].value,
        }
    if method != "exact":
        raise ValueError(f"percentile_method must be 'exact' or 'p2', got {method!r}")
    arr = np.asarray(values, dtype=np.float64)
    p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
    return {"p50": float(p50), "p95": float(p95), "p99": float(p99)}


def _report_for(
    tenant: TenantSpec,
    records: Sequence[JobRecord],
    submitted: int,
    rejected: int,
    failed: int,
    preemptions: int,
    percentile_method: str = "exact",
) -> TenantSLOReport:
    completed = len(records)
    violated = sum(0 if slo_satisfied(r, tenant.slo) else 1 for r in records)
    attained = completed - violated
    attainment = attained / submitted if submitted else None

    queue = _percentiles([r.wait_time for r in records], method=percentile_method)
    completion = _percentiles([r.turnaround_time for r in records], method=percentile_method)
    mean_fidelity = (
        float(np.mean([r.fidelity for r in records])) if records else None
    )
    return TenantSLOReport(
        tenant=tenant.name,
        priority_class=tenant.priority_class,
        weight=tenant.weight,
        submitted=submitted,
        completed=completed,
        rejected=rejected,
        failed=failed,
        preemptions=preemptions,
        violated=violated,
        attainment=attainment,
        queue_p50=queue["p50"],
        queue_p95=queue["p95"],
        queue_p99=queue["p99"],
        completion_p50=completion["p50"],
        completion_p95=completion["p95"],
        completion_p99=completion["p99"],
        mean_fidelity=mean_fidelity,
    )


def compute_tenant_reports(
    mix: TenantMix,
    records: Sequence[JobRecord],
    events: Sequence[JobEvent],
    tenant_of: Mapping[int, str],
    percentile_method: str = "exact",
) -> List[TenantSLOReport]:
    """One :class:`TenantSLOReport` per tenant of *mix*, in mix order.

    Parameters
    ----------
    mix:
        The tenant mix served.
    records:
        Completed job records (their ``tenant`` field wins over *tenant_of*).
    events:
        The run's raw event log (supplies rejected/failed/preempted counts).
    tenant_of:
        Tenant attribution of every submitted job id (the serve broker's
        ``tenant_of`` mapping) — needed for jobs that never completed.
    percentile_method:
        ``"exact"`` (default, ``np.percentile`` over all values) or ``"p2"``
        (constant-memory streaming P² sketches — see
        :mod:`repro.metrics.quantiles`).
    """
    def tenant_name(job_id: int) -> Optional[str]:
        return tenant_of.get(job_id)

    records_by_tenant: Dict[str, List[JobRecord]] = {t.name: [] for t in mix.tenants}
    for record in records:
        name = record.tenant or tenant_name(record.job_id)
        if name in records_by_tenant:
            records_by_tenant[name].append(record)

    counts = {t.name: {"rejected": 0, "failed": 0, "preempted": 0} for t in mix.tenants}
    for event in events:
        if event.event not in ("rejected", "failed", "preempted"):
            continue
        name = tenant_name(event.job_id)
        if name in counts:
            counts[name][event.event] += 1

    submitted_by_tenant: Dict[str, int] = {t.name: 0 for t in mix.tenants}
    for name in tenant_of.values():
        if name in submitted_by_tenant:
            submitted_by_tenant[name] += 1

    return [
        _report_for(
            tenant,
            records_by_tenant[tenant.name],
            submitted=submitted_by_tenant[tenant.name],
            rejected=counts[tenant.name]["rejected"],
            failed=counts[tenant.name]["failed"],
            preemptions=counts[tenant.name]["preempted"],
            percentile_method=percentile_method,
        )
        for tenant in mix.tenants
    ]


def compute_tenant_reports_streaming(
    mix: TenantMix,
    manager,
    tenant_of: Mapping[int, str],
    rejected: Mapping[str, int],
    failed: Mapping[str, int],
    preemptions: Mapping[str, int],
) -> List[TenantSLOReport]:
    """Per-tenant reports from a :class:`StreamingRecordsManager`'s sketches.

    The closing piece of million-job serving runs: instead of materialising
    per-job latency lists, every percentile in the report is read straight
    from the manager's per-tenant P² sketches (O(1) memory in job count,
    ``method="p2"`` estimates).  Counts the manager cannot know come from
    the caller (the serve broker supplies admission rejections, terminal
    failures and preemption totals per tenant).

    Limitation, by construction: per-job SLO evaluation needs the exact
    records the stream discarded, so ``violated`` is 0 and ``attainment``
    is ``None`` in streaming reports — tail latencies and counts are the
    streaming observables.  Use the exact manager when attainment is the
    metric under study.
    """
    reports: List[TenantSLOReport] = []
    submitted_by_tenant: Dict[str, int] = {t.name: 0 for t in mix.tenants}
    for name in tenant_of.values():
        if name in submitted_by_tenant:
            submitted_by_tenant[name] += 1
    for tenant in mix.tenants:
        name = tenant.name
        percentiles = manager.latency_percentiles(name)
        reports.append(
            TenantSLOReport(
                tenant=name,
                priority_class=tenant.priority_class,
                weight=tenant.weight,
                submitted=submitted_by_tenant[name],
                completed=manager.tenant_completed(name),
                rejected=rejected.get(name, 0),
                failed=failed.get(name, 0),
                preemptions=preemptions.get(name, 0),
                violated=0,
                attainment=None,
                queue_p50=percentiles["wait_p50"],
                queue_p95=percentiles["wait_p95"],
                queue_p99=percentiles["wait_p99"],
                completion_p50=percentiles["turnaround_p50"],
                completion_p95=percentiles["turnaround_p95"],
                completion_p99=percentiles["turnaround_p99"],
                mean_fidelity=None,
            )
        )
    return reports
