"""Multi-tenant workload construction and traffic routing.

Two entry points, both deterministic in the config seed:

* :func:`tenant_jobs` — build the merged workload a tenant mix imposes.
  Every tenant contributes its share of the configured job count, generated
  from its own arrival model (a per-tenant
  :class:`~repro.dynamics.scenario.TrafficSpec` reusing
  :mod:`repro.workloads.arrivals`, or the config's default arrival process)
  and its own size/depth/shot ranges, on an independent seed sub-stream.
  The per-tenant streams are merged in arrival order and renumbered so job
  ids stay globally unique.

* :func:`route_jobs_to_tenants` — attribute an *existing* workload (e.g. the
  one a :mod:`repro.dynamics` scenario's traffic model generated) to tenants
  by weighted random routing over their shares.  This is how scenario
  traffic events reach individual tenants: the scenario shapes *when* jobs
  arrive, the mix decides *whose* jobs they are.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.cloud.qjob import QJob
from repro.engine.spec import derive_seed
from repro.serve.tenant import TenantMix, TenantSpec

__all__ = ["apportion_jobs", "tenant_jobs", "route_jobs_to_tenants"]


def apportion_jobs(mix: TenantMix, num_jobs: int) -> List[int]:
    """Split *num_jobs* over the mix's tenants by share (largest remainder).

    Deterministic: quotas are floored, then leftover jobs go to the largest
    fractional remainders (ties broken by mix order).
    """
    if num_jobs <= 0:
        raise ValueError("num_jobs must be positive")
    total_share = sum(t.share for t in mix.tenants)
    quotas = [num_jobs * t.share / total_share for t in mix.tenants]
    counts = [int(q) for q in quotas]
    remainders = [q - c for q, c in zip(quotas, counts)]
    leftover = num_jobs - sum(counts)
    for index in sorted(range(len(counts)), key=lambda i: (-remainders[i], i))[:leftover]:
        counts[index] += 1
    return counts


def _generate_for_tenant(tenant: TenantSpec, count: int, seed: int, config) -> List[QJob]:
    qubit_range = tenant.qubit_range or config.qubit_range
    depth_range = tenant.depth_range or config.depth_range
    shots_range = tenant.shots_range or config.shots_range
    if tenant.traffic is not None:
        from repro.workloads.arrivals import generate_traffic_jobs

        jobs = generate_traffic_jobs(
            tenant.traffic,
            num_jobs=count,
            seed=seed,
            qubit_range=qubit_range,
            depth_range=depth_range,
            shots_range=shots_range,
            two_qubit_density=config.two_qubit_density,
        )
    else:
        from repro.cloud.job_generator import generate_synthetic_jobs

        jobs = generate_synthetic_jobs(
            num_jobs=count,
            seed=seed,
            qubit_range=qubit_range,
            depth_range=depth_range,
            shots_range=shots_range,
            two_qubit_density=config.two_qubit_density,
            arrival=config.arrival,
            arrival_rate=config.arrival_rate,
        )
    for job in jobs:
        job.tenant = tenant.name
        job.priority = tenant.job_priority
    return jobs


def tenant_jobs(mix: TenantMix, config) -> Optional[List[QJob]]:
    """The workload a tenant mix imposes, or ``None`` for passthrough mixes.

    A passthrough mix (the ``single`` preset) returns ``None`` so the
    environment generates the exact default workload — the serve broker then
    stamps the sole tenant at submission, keeping results byte-identical to
    the plain broker.

    Parameters
    ----------
    mix:
        The tenant mix.
    config:
        The run's :class:`~repro.cloud.config.SimulationConfig` (job count,
        default ranges/arrival model and base seed).
    """
    if mix.is_passthrough:
        return None

    counts = apportion_jobs(mix, config.num_jobs)
    merged: List[QJob] = []
    for tenant_index, (tenant, count) in enumerate(zip(mix.tenants, counts)):
        if count == 0:
            continue
        seed = derive_seed(config.seed, "tenant-workload", mix.name, tenant.name)
        for job in _generate_for_tenant(tenant, count, seed, config):
            # Offset ids per tenant so the pre-renumber sort key is unique.
            job.job_id = tenant_index * config.num_jobs + job.job_id
            merged.append(job)

    merged.sort(key=lambda j: (j.arrival_time, j.job_id))
    for new_id, job in enumerate(merged):
        job.job_id = new_id
    return merged


def route_jobs_to_tenants(
    jobs: Sequence[QJob], mix: TenantMix, seed: Optional[int]
) -> List[QJob]:
    """Attribute *jobs* to the mix's tenants by weighted random routing.

    Each job is independently routed to a tenant with probability
    proportional to the tenant's ``share`` (one deterministic draw per job
    from a dedicated seed sub-stream) and stamped with the tenant's name.
    Jobs still carrying the default priority (0) inherit the tenant's
    ``job_priority``; explicitly prioritised jobs keep their own.  Arrival
    times and circuits are left untouched.
    """
    jobs = list(jobs)

    def stamp(job: QJob, tenant: TenantSpec) -> None:
        job.tenant = tenant.name
        if job.priority == 0:
            job.priority = tenant.job_priority

    if len(mix.tenants) == 1:
        for job in jobs:
            stamp(job, mix.tenants[0])
        return jobs

    rng = np.random.default_rng(derive_seed(seed, "serve-routing", mix.name))
    shares = np.array([t.share for t in mix.tenants], dtype=np.float64)
    shares /= shares.sum()
    choices = rng.choice(len(mix.tenants), size=len(jobs), p=shares)
    for job, index in zip(jobs, choices):
        stamp(job, mix.tenants[int(index)])
    return jobs
