"""CLOPS / quantum-volume execution-time helpers (paper §6.1, Eq. 3).

IBM's CLOPS benchmark measures how many parameterised quantum-volume circuit
layers a system executes per second.  The paper estimates the execution time
of a job as::

    tau = (M * K * S * D) / CLOPS                      (Eq. 3)

with ``M`` circuit templates, ``K`` parameter updates, ``S`` shots and
``D = log2(QV)`` layers.  The worked example in §6.1 (M=100, K=10, S=40,000,
D=7, CLOPS=220,000) gives roughly 21 minutes.
"""

from __future__ import annotations

import math

__all__ = [
    "DEFAULT_NUM_TEMPLATES",
    "DEFAULT_NUM_UPDATES",
    "log2_quantum_volume",
    "clops_execution_time",
]

#: Number of circuit templates ``M`` used by the CLOPS benchmark [35].
DEFAULT_NUM_TEMPLATES = 100
#: Number of parameter updates ``K`` used by the CLOPS benchmark [35].
DEFAULT_NUM_UPDATES = 10


def log2_quantum_volume(quantum_volume: float) -> float:
    """Number of quantum-volume layers ``D = log2(QV)``.

    The paper's case study uses devices with a quantum volume of 127, giving
    ``D ≈ 7`` layers.
    """
    if quantum_volume <= 1:
        raise ValueError(f"quantum volume must be > 1, got {quantum_volume}")
    return math.log2(quantum_volume)


def clops_execution_time(
    shots: int,
    clops: float,
    quantum_volume: float = 127,
    num_templates: int = DEFAULT_NUM_TEMPLATES,
    num_updates: int = DEFAULT_NUM_UPDATES,
) -> float:
    """Execution time in seconds according to Eq. (3).

    Parameters
    ----------
    shots:
        Number of measurement shots ``S``.
    clops:
        Device speed in circuit layer operations per second.
    quantum_volume:
        Device quantum volume (``D = log2(QV)``).
    num_templates, num_updates:
        CLOPS benchmark constants ``M`` and ``K`` (defaults from [35]).

    Returns
    -------
    Estimated execution time in seconds.
    """
    if shots <= 0:
        raise ValueError("shots must be positive")
    if clops <= 0:
        raise ValueError("CLOPS must be positive")
    if num_templates <= 0 or num_updates <= 0:
        raise ValueError("M and K must be positive")
    depth = log2_quantum_volume(quantum_volume)
    return (num_templates * num_updates * shots * depth) / clops
