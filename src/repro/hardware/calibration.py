"""Calibration data model and synthetic calibration snapshots.

IBM Quantum publishes real-time calibration data for every backend: per-qubit
readout errors and coherence times, per-gate error rates, etc.  The paper's
error-aware scheduling consumes that data through a single scalar *error
score* (Eq. 2).  This module provides:

* :class:`QubitCalibration` / :class:`GateCalibration` /
  :class:`CalibrationData` — typed containers mirroring the fields the paper
  uses (readout error, single-qubit RX error, two-qubit gate errors, T1/T2),
* :func:`synthetic_calibration` — a seeded generator producing snapshots with
  realistic error ranges for Eagle-class devices, standing in for the
  March-2025 snapshots the authors downloaded (which are not archived
  publicly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import networkx as nx
import numpy as np

__all__ = [
    "QubitCalibration",
    "GateCalibration",
    "CalibrationData",
    "synthetic_calibration",
]

#: Valid ``(low, high)`` clip bounds per error category, shared by the
#: scaled-snapshot record materialisation, the scaled-array views and the
#: aggregate fast paths — one source of truth so the three stay consistent.
READOUT_ERROR_BOUNDS = (1e-6, 0.5)
SINGLE_QUBIT_ERROR_BOUNDS = (1e-7, 0.1)
TWO_QUBIT_ERROR_BOUNDS = (1e-6, 0.5)


@dataclass(frozen=True)
class QubitCalibration:
    """Calibration record for a single physical qubit."""

    #: Qubit index on the device.
    index: int
    #: T1 relaxation time in microseconds.
    t1_us: float
    #: T2 dephasing time in microseconds.
    t2_us: float
    #: Readout (measurement) error probability.
    readout_error: float
    #: Single-qubit gate (RX / SX) error probability.
    single_qubit_error: float

    def __post_init__(self) -> None:
        if self.t1_us <= 0 or self.t2_us <= 0:
            raise ValueError("coherence times must be positive")
        for name in ("readout_error", "single_qubit_error"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")


@dataclass(frozen=True)
class GateCalibration:
    """Calibration record for a two-qubit gate on a coupling-map edge."""

    #: The pair of qubits the gate acts on.
    qubits: Tuple[int, int]
    #: Two-qubit gate error probability.
    error: float
    #: Gate duration in nanoseconds.
    duration_ns: float = 300.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.error <= 1.0:
            raise ValueError(f"gate error must be a probability, got {self.error}")
        if self.duration_ns <= 0:
            raise ValueError("gate duration must be positive")


@dataclass
class CalibrationData:
    """A full calibration snapshot for one device.

    Attributes
    ----------
    qubits:
        Per-qubit calibration records (length = number of qubits).
    gates:
        Per-edge two-qubit gate calibration records.
    timestamp:
        ISO-8601 string identifying when the snapshot was taken.
    """

    qubits: List[QubitCalibration]
    gates: List[GateCalibration]
    timestamp: str = "2025-03-01T00:00:00Z"

    def __post_init__(self) -> None:
        if not self.qubits:
            raise ValueError("calibration needs at least one qubit record")
        indices = [q.index for q in self.qubits]
        if len(set(indices)) != len(indices):
            raise ValueError("duplicate qubit indices in calibration data")

    # -- aggregates used by the error score (Eq. 2) -------------------------
    @property
    def num_qubits(self) -> int:
        """Number of qubits covered by the snapshot."""
        return len(self.qubits)

    @property
    def readout_errors(self) -> np.ndarray:
        """Array of per-qubit readout errors."""
        return np.array([q.readout_error for q in self.qubits], dtype=np.float64)

    @property
    def single_qubit_errors(self) -> np.ndarray:
        """Array of per-qubit single-qubit gate errors."""
        return np.array([q.single_qubit_error for q in self.qubits], dtype=np.float64)

    @property
    def two_qubit_errors(self) -> np.ndarray:
        """Array of per-edge two-qubit gate errors."""
        return np.array([g.error for g in self.gates], dtype=np.float64)

    def average_readout_error(self) -> float:
        """Mean readout error over all qubits (Σ ε_readout,i / N_readout)."""
        return float(self.readout_errors.mean())

    def average_single_qubit_error(self) -> float:
        """Mean single-qubit (RX) gate error (ε_1Q in Eq. 2)."""
        return float(self.single_qubit_errors.mean())

    def average_two_qubit_error(self) -> float:
        """Mean two-qubit gate error over all coupling edges (Σ ε_2Q,j / N_2Q)."""
        if len(self.gates) == 0:
            return 0.0
        return float(self.two_qubit_errors.mean())

    def average_error_rates(self) -> Tuple[float, float, float]:
        """The three error-score aggregates in one call: ``(readout, single
        qubit, two qubit)`` means.  Devices use this to refresh their cached
        aggregates after a calibration swap."""
        return (
            self.average_readout_error(),
            self.average_single_qubit_error(),
            self.average_two_qubit_error(),
        )

    def average_t1_us(self) -> float:
        """Mean T1 over all qubits (microseconds)."""
        return float(np.mean([q.t1_us for q in self.qubits]))

    def average_t2_us(self) -> float:
        """Mean T2 over all qubits (microseconds)."""
        return float(np.mean([q.t2_us for q in self.qubits]))

    def as_dict(self) -> Dict[str, object]:
        """Serialise the snapshot into plain Python containers (JSON-safe)."""
        return {
            "timestamp": self.timestamp,
            "qubits": [
                {
                    "index": q.index,
                    "t1_us": q.t1_us,
                    "t2_us": q.t2_us,
                    "readout_error": q.readout_error,
                    "single_qubit_error": q.single_qubit_error,
                }
                for q in self.qubits
            ],
            "gates": [
                {"qubits": list(g.qubits), "error": g.error, "duration_ns": g.duration_ns}
                for g in self.gates
            ],
        }

    def scaled(
        self,
        *,
        readout: float = 1.0,
        single_qubit: float = 1.0,
        two_qubit: float = 1.0,
        t1: float = 1.0,
        t2: float = 1.0,
        timestamp: Optional[str] = None,
    ) -> "CalibrationData":
        """A new snapshot with every record scaled by per-category factors.

        This is the primitive behind calibration drift
        (:mod:`repro.dynamics`): error rates are multiplied by their factor
        and clipped back into valid probability ranges, coherence times are
        scaled and re-clamped to the physical ``T2 <= 2*T1`` bound.  The
        receiver is never mutated, so baseline snapshots (and the shared
        device catalogue) stay pristine.

        Runs on the drift hot path (once per device per drift step), so the
        result is *lazy*: the aggregate statistics the simulator consumes
        (average error rates, coherence means) are computed vectorized from
        cached baseline statistics, while the per-record ``qubits``/``gates``
        lists materialise only if something actually reads them.  The
        scaled snapshot's ``average_*`` methods are the defining aggregates:
        they can differ from a hand-computed mean over the materialised
        records by a few ulps (``mean(x) * f`` vs ``mean(x * f)`` round
        differently), but every consumer — device aggregates, error scores,
        the fidelity model, replayed traces — reads the same methods, so
        results stay internally consistent and bit-reproducible.
        """
        return _ScaledCalibrationData(
            self,
            factors={
                "readout": float(readout),
                "single_qubit": float(single_qubit),
                "two_qubit": float(two_qubit),
                "t1": float(t1),
                "t2": float(t2),
            },
            timestamp=timestamp,
        )

    def _baseline_arrays(self) -> Dict[str, np.ndarray]:
        """Per-category numpy views of the records, cached on first use."""
        cached = self.__dict__.get("_arrays_cache")
        if cached is None:
            cached = {
                "readout": self.readout_errors,
                "single_qubit": self.single_qubit_errors,
                "two_qubit": self.two_qubit_errors,
                "t1": np.array([q.t1_us for q in self.qubits], dtype=np.float64),
                "t2": np.array([q.t2_us for q in self.qubits], dtype=np.float64),
            }
            self.__dict__["_arrays_cache"] = cached
        return cached

    def _baseline_stats(self) -> Dict[str, Tuple[float, float, float, np.ndarray]]:
        """Per-category ``(mean, min, max, values)`` of the records, cached.

        Backs the scaled-snapshot aggregate fast path: when a drift factor
        keeps every value inside its clip bounds (the overwhelmingly common
        case), the scaled mean is just ``factor * mean``."""
        cached = self.__dict__.get("_stats_cache")
        if cached is None:
            arrays = self._baseline_arrays()
            cached = {
                name: (float(arr.mean()), float(arr.min()), float(arr.max()), arr)
                if arr.size
                else (0.0, 0.0, 0.0, arr)
                for name, arr in arrays.items()
            }
            self.__dict__["_stats_cache"] = cached
        return cached

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CalibrationData":
        """Rebuild a snapshot from :meth:`as_dict` output."""
        qubits = [
            QubitCalibration(
                index=int(q["index"]),
                t1_us=float(q["t1_us"]),
                t2_us=float(q["t2_us"]),
                readout_error=float(q["readout_error"]),
                single_qubit_error=float(q["single_qubit_error"]),
            )
            for q in payload["qubits"]  # type: ignore[index]
        ]
        gates = [
            GateCalibration(
                qubits=(int(g["qubits"][0]), int(g["qubits"][1])),
                error=float(g["error"]),
                duration_ns=float(g.get("duration_ns", 300.0)),
            )
            for g in payload["gates"]  # type: ignore[index]
        ]
        return cls(qubits=qubits, gates=gates, timestamp=str(payload.get("timestamp", "")))


class _ScaledCalibrationData(CalibrationData):
    """A lazily-materialised scaled view of a baseline snapshot.

    Produced by :meth:`CalibrationData.scaled`.  Aggregate queries (the only
    thing the simulator's hot path touches) are answered from the baseline's
    cached statistics; the per-record ``qubits``/``gates`` lists are built on
    first access only (e.g. when a trace or report serialises the snapshot).
    The per-record values use the same multiply/clamp operations, but the
    fast-path aggregate ``mean(x) * f`` may differ from a recomputed
    ``mean(x * f)`` by a few ulps — ``average_*`` here is the single source
    of truth all simulator consumers read.
    """

    def __init__(self, base: CalibrationData, factors: Dict[str, float],
                 timestamp: Optional[str]) -> None:
        # Deliberately no super().__init__: the dataclass fields ``qubits``
        # and ``gates`` stay unset until _materialize fills them in.
        self._base = base
        self._factors = factors
        self.timestamp = timestamp if timestamp is not None else base.timestamp

    # -- lazy record materialisation ------------------------------------------
    def __getattr__(self, name: str):
        if name in ("qubits", "gates"):
            self._materialize()
            return self.__dict__[name]
        raise AttributeError(name)

    def _materialize(self) -> None:
        base, f = self._base, self._factors
        readout, single, two, t1, t2 = (
            f["readout"], f["single_qubit"], f["two_qubit"], f["t1"], f["t2"]
        )
        (ro_lo, ro_hi) = READOUT_ERROR_BOUNDS
        (sq_lo, sq_hi) = SINGLE_QUBIT_ERROR_BOUNDS
        (tq_lo, tq_hi) = TWO_QUBIT_ERROR_BOUNDS
        qubits = []
        for q in base.qubits:
            new_t1 = max(q.t1_us * t1, 1.0)
            qubits.append(
                QubitCalibration(
                    index=q.index,
                    t1_us=new_t1,
                    t2_us=min(max(q.t2_us * t2, 1.0), 2.0 * new_t1),
                    readout_error=min(max(q.readout_error * readout, ro_lo), ro_hi),
                    single_qubit_error=min(max(q.single_qubit_error * single, sq_lo), sq_hi),
                )
            )
        self.qubits = qubits
        self.gates = [
            GateCalibration(
                qubits=g.qubits,
                error=min(max(g.error * two, tq_lo), tq_hi),
                duration_ns=g.duration_ns,
            )
            for g in base.gates
        ]

    # -- vectorized aggregate fast paths ----------------------------------------
    @property
    def num_qubits(self) -> int:
        return self._base.num_qubits

    @property
    def readout_errors(self) -> np.ndarray:
        arr = self._base._baseline_arrays()["readout"] * self._factors["readout"]
        return np.clip(arr, *READOUT_ERROR_BOUNDS)

    @property
    def single_qubit_errors(self) -> np.ndarray:
        arr = self._base._baseline_arrays()["single_qubit"] * self._factors["single_qubit"]
        return np.clip(arr, *SINGLE_QUBIT_ERROR_BOUNDS)

    @property
    def two_qubit_errors(self) -> np.ndarray:
        arr = self._base._baseline_arrays()["two_qubit"] * self._factors["two_qubit"]
        return np.clip(arr, *TWO_QUBIT_ERROR_BOUNDS)

    def _coherence_arrays(self):
        base = self._base._baseline_arrays()
        t1 = np.maximum(base["t1"] * self._factors["t1"], 1.0)
        t2 = np.minimum(np.maximum(base["t2"] * self._factors["t2"], 1.0), 2.0 * t1)
        return t1, t2

    def _scaled_mean(self, category: str, lo: float, hi: float) -> float:
        """Mean of the clipped scaled values.

        Fast path: when the factor keeps the whole baseline range inside the
        clip bounds (the common case — drift steps are small), the mean is
        ``factor * baseline_mean`` — one multiplication instead of three
        numpy array operations.  This is the *defining* aggregate for scaled
        snapshots; ``average_*`` delegates here so the device hot path and
        all consumers see one consistent value.
        """
        mean, lowest, highest, values = self._base._baseline_stats()[category]
        factor = self._factors[category]
        if values.size == 0:
            return 0.0
        if lowest * factor >= lo and highest * factor <= hi:
            return mean * factor
        return float(np.clip(values * factor, lo, hi).mean())

    def average_readout_error(self) -> float:
        return self._scaled_mean("readout", *READOUT_ERROR_BOUNDS)

    def average_single_qubit_error(self) -> float:
        return self._scaled_mean("single_qubit", *SINGLE_QUBIT_ERROR_BOUNDS)

    def average_two_qubit_error(self) -> float:
        return self._scaled_mean("two_qubit", *TWO_QUBIT_ERROR_BOUNDS)

    def average_t1_us(self) -> float:
        return float(self._coherence_arrays()[0].mean())

    def average_t2_us(self) -> float:
        return float(self._coherence_arrays()[1].mean())

    def average_error_rates(self) -> "Tuple[float, float, float]":
        return (
            self.average_readout_error(),
            self.average_single_qubit_error(),
            self.average_two_qubit_error(),
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CalibrationData):
            return (self.qubits, self.gates, self.timestamp) == (
                other.qubits, other.gates, other.timestamp
            )
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]  # mutable, like the base dataclass


def synthetic_calibration(
    coupling: nx.Graph,
    *,
    readout_error_mean: float = 1.3e-2,
    single_qubit_error_mean: float = 2.5e-4,
    two_qubit_error_mean: float = 7.5e-3,
    spread: float = 0.25,
    t1_mean_us: float = 250.0,
    t2_mean_us: float = 180.0,
    timestamp: str = "2025-03-01T00:00:00Z",
    seed: Optional[int] = None,
) -> CalibrationData:
    """Generate a synthetic calibration snapshot for a device.

    Error rates are drawn from log-normal distributions centred on the given
    means with a relative *spread*; coherence times from normal distributions
    clipped to stay positive.  The defaults match publicly documented ranges
    for 127-qubit Eagle-class devices (readout ≈ 1-2 %, single-qubit ≈ 2-5e-4,
    ECR/CZ two-qubit ≈ 5-12e-3).

    Parameters
    ----------
    coupling:
        The device coupling map; one :class:`GateCalibration` is produced per
        edge, one :class:`QubitCalibration` per node.
    seed:
        Seed for reproducibility.
    """
    if spread < 0:
        raise ValueError("spread must be non-negative")
    rng = np.random.default_rng(seed)
    sigma = np.log1p(spread)

    def lognormal(mean: float, size: int) -> np.ndarray:
        # Parameterise so that the distribution mean equals ``mean``.
        mu = np.log(mean) - 0.5 * sigma**2
        return rng.lognormal(mu, sigma, size=size)

    nodes = sorted(coupling.nodes())
    n = len(nodes)
    readout = np.clip(lognormal(readout_error_mean, n), 1e-5, 0.5)
    single = np.clip(lognormal(single_qubit_error_mean, n), 1e-6, 0.1)
    t1 = np.clip(rng.normal(t1_mean_us, t1_mean_us * 0.2, size=n), 20.0, None)
    t2 = np.clip(rng.normal(t2_mean_us, t2_mean_us * 0.25, size=n), 10.0, None)
    # T2 cannot exceed 2*T1 physically.
    t2 = np.minimum(t2, 2.0 * t1)

    qubits = [
        QubitCalibration(
            index=int(node),
            t1_us=float(t1[i]),
            t2_us=float(t2[i]),
            readout_error=float(readout[i]),
            single_qubit_error=float(single[i]),
        )
        for i, node in enumerate(nodes)
    ]

    edges = sorted(tuple(sorted(edge)) for edge in coupling.edges())
    two_q = np.clip(lognormal(two_qubit_error_mean, len(edges)), 1e-5, 0.5)
    gates = [
        GateCalibration(qubits=(int(u), int(v)), error=float(two_q[i]))
        for i, (u, v) in enumerate(edges)
    ]
    return CalibrationData(qubits=qubits, gates=gates, timestamp=timestamp)
