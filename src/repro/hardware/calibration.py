"""Calibration data model and synthetic calibration snapshots.

IBM Quantum publishes real-time calibration data for every backend: per-qubit
readout errors and coherence times, per-gate error rates, etc.  The paper's
error-aware scheduling consumes that data through a single scalar *error
score* (Eq. 2).  This module provides:

* :class:`QubitCalibration` / :class:`GateCalibration` /
  :class:`CalibrationData` — typed containers mirroring the fields the paper
  uses (readout error, single-qubit RX error, two-qubit gate errors, T1/T2),
* :func:`synthetic_calibration` — a seeded generator producing snapshots with
  realistic error ranges for Eagle-class devices, standing in for the
  March-2025 snapshots the authors downloaded (which are not archived
  publicly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import networkx as nx
import numpy as np

__all__ = [
    "QubitCalibration",
    "GateCalibration",
    "CalibrationData",
    "synthetic_calibration",
]


@dataclass(frozen=True)
class QubitCalibration:
    """Calibration record for a single physical qubit."""

    #: Qubit index on the device.
    index: int
    #: T1 relaxation time in microseconds.
    t1_us: float
    #: T2 dephasing time in microseconds.
    t2_us: float
    #: Readout (measurement) error probability.
    readout_error: float
    #: Single-qubit gate (RX / SX) error probability.
    single_qubit_error: float

    def __post_init__(self) -> None:
        if self.t1_us <= 0 or self.t2_us <= 0:
            raise ValueError("coherence times must be positive")
        for name in ("readout_error", "single_qubit_error"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")


@dataclass(frozen=True)
class GateCalibration:
    """Calibration record for a two-qubit gate on a coupling-map edge."""

    #: The pair of qubits the gate acts on.
    qubits: Tuple[int, int]
    #: Two-qubit gate error probability.
    error: float
    #: Gate duration in nanoseconds.
    duration_ns: float = 300.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.error <= 1.0:
            raise ValueError(f"gate error must be a probability, got {self.error}")
        if self.duration_ns <= 0:
            raise ValueError("gate duration must be positive")


@dataclass
class CalibrationData:
    """A full calibration snapshot for one device.

    Attributes
    ----------
    qubits:
        Per-qubit calibration records (length = number of qubits).
    gates:
        Per-edge two-qubit gate calibration records.
    timestamp:
        ISO-8601 string identifying when the snapshot was taken.
    """

    qubits: List[QubitCalibration]
    gates: List[GateCalibration]
    timestamp: str = "2025-03-01T00:00:00Z"

    def __post_init__(self) -> None:
        if not self.qubits:
            raise ValueError("calibration needs at least one qubit record")
        indices = [q.index for q in self.qubits]
        if len(set(indices)) != len(indices):
            raise ValueError("duplicate qubit indices in calibration data")

    # -- aggregates used by the error score (Eq. 2) -------------------------
    @property
    def num_qubits(self) -> int:
        """Number of qubits covered by the snapshot."""
        return len(self.qubits)

    @property
    def readout_errors(self) -> np.ndarray:
        """Array of per-qubit readout errors."""
        return np.array([q.readout_error for q in self.qubits], dtype=np.float64)

    @property
    def single_qubit_errors(self) -> np.ndarray:
        """Array of per-qubit single-qubit gate errors."""
        return np.array([q.single_qubit_error for q in self.qubits], dtype=np.float64)

    @property
    def two_qubit_errors(self) -> np.ndarray:
        """Array of per-edge two-qubit gate errors."""
        return np.array([g.error for g in self.gates], dtype=np.float64)

    def average_readout_error(self) -> float:
        """Mean readout error over all qubits (Σ ε_readout,i / N_readout)."""
        return float(self.readout_errors.mean())

    def average_single_qubit_error(self) -> float:
        """Mean single-qubit (RX) gate error (ε_1Q in Eq. 2)."""
        return float(self.single_qubit_errors.mean())

    def average_two_qubit_error(self) -> float:
        """Mean two-qubit gate error over all coupling edges (Σ ε_2Q,j / N_2Q)."""
        if len(self.gates) == 0:
            return 0.0
        return float(self.two_qubit_errors.mean())

    def average_t1_us(self) -> float:
        """Mean T1 over all qubits (microseconds)."""
        return float(np.mean([q.t1_us for q in self.qubits]))

    def average_t2_us(self) -> float:
        """Mean T2 over all qubits (microseconds)."""
        return float(np.mean([q.t2_us for q in self.qubits]))

    def as_dict(self) -> Dict[str, object]:
        """Serialise the snapshot into plain Python containers (JSON-safe)."""
        return {
            "timestamp": self.timestamp,
            "qubits": [
                {
                    "index": q.index,
                    "t1_us": q.t1_us,
                    "t2_us": q.t2_us,
                    "readout_error": q.readout_error,
                    "single_qubit_error": q.single_qubit_error,
                }
                for q in self.qubits
            ],
            "gates": [
                {"qubits": list(g.qubits), "error": g.error, "duration_ns": g.duration_ns}
                for g in self.gates
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CalibrationData":
        """Rebuild a snapshot from :meth:`as_dict` output."""
        qubits = [
            QubitCalibration(
                index=int(q["index"]),
                t1_us=float(q["t1_us"]),
                t2_us=float(q["t2_us"]),
                readout_error=float(q["readout_error"]),
                single_qubit_error=float(q["single_qubit_error"]),
            )
            for q in payload["qubits"]  # type: ignore[index]
        ]
        gates = [
            GateCalibration(
                qubits=(int(g["qubits"][0]), int(g["qubits"][1])),
                error=float(g["error"]),
                duration_ns=float(g.get("duration_ns", 300.0)),
            )
            for g in payload["gates"]  # type: ignore[index]
        ]
        return cls(qubits=qubits, gates=gates, timestamp=str(payload.get("timestamp", "")))


def synthetic_calibration(
    coupling: nx.Graph,
    *,
    readout_error_mean: float = 1.3e-2,
    single_qubit_error_mean: float = 2.5e-4,
    two_qubit_error_mean: float = 7.5e-3,
    spread: float = 0.25,
    t1_mean_us: float = 250.0,
    t2_mean_us: float = 180.0,
    timestamp: str = "2025-03-01T00:00:00Z",
    seed: Optional[int] = None,
) -> CalibrationData:
    """Generate a synthetic calibration snapshot for a device.

    Error rates are drawn from log-normal distributions centred on the given
    means with a relative *spread*; coherence times from normal distributions
    clipped to stay positive.  The defaults match publicly documented ranges
    for 127-qubit Eagle-class devices (readout ≈ 1-2 %, single-qubit ≈ 2-5e-4,
    ECR/CZ two-qubit ≈ 5-12e-3).

    Parameters
    ----------
    coupling:
        The device coupling map; one :class:`GateCalibration` is produced per
        edge, one :class:`QubitCalibration` per node.
    seed:
        Seed for reproducibility.
    """
    if spread < 0:
        raise ValueError("spread must be non-negative")
    rng = np.random.default_rng(seed)
    sigma = np.log1p(spread)

    def lognormal(mean: float, size: int) -> np.ndarray:
        # Parameterise so that the distribution mean equals ``mean``.
        mu = np.log(mean) - 0.5 * sigma**2
        return rng.lognormal(mu, sigma, size=size)

    nodes = sorted(coupling.nodes())
    n = len(nodes)
    readout = np.clip(lognormal(readout_error_mean, n), 1e-5, 0.5)
    single = np.clip(lognormal(single_qubit_error_mean, n), 1e-6, 0.1)
    t1 = np.clip(rng.normal(t1_mean_us, t1_mean_us * 0.2, size=n), 20.0, None)
    t2 = np.clip(rng.normal(t2_mean_us, t2_mean_us * 0.25, size=n), 10.0, None)
    # T2 cannot exceed 2*T1 physically.
    t2 = np.minimum(t2, 2.0 * t1)

    qubits = [
        QubitCalibration(
            index=int(node),
            t1_us=float(t1[i]),
            t2_us=float(t2[i]),
            readout_error=float(readout[i]),
            single_qubit_error=float(single[i]),
        )
        for i, node in enumerate(nodes)
    ]

    edges = sorted(tuple(sorted(edge)) for edge in coupling.edges())
    two_q = np.clip(lognormal(two_qubit_error_mean, len(edges)), 1e-5, 0.5)
    gates = [
        GateCalibration(qubits=(int(u), int(v)), error=float(two_q[i]))
        for i, (u, v) in enumerate(edges)
    ]
    return CalibrationData(qubits=qubits, gates=gates, timestamp=timestamp)
