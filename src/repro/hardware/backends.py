"""Catalogue of simulated IBM quantum device profiles.

The paper's case study (§7) uses five simulated 127-qubit IBM devices, all
with quantum volume 127:

=================  =========  =====================================
Device             CLOPS      Notes
=================  =========  =====================================
ibm_strasbourg     220,000    fastest tier
ibm_brussels       220,000    fastest tier
ibm_quebec          32,000    slower tier
ibm_kyiv            30,000    slower tier
ibm_kawasaki        29,000    slower tier
=================  =========  =====================================

The authors initialised the devices with calibration data collected in March
2025; those snapshots are not archived, so each profile here carries a
*synthetic* calibration snapshot drawn from realistic Eagle-class error
ranges (see :func:`repro.hardware.calibration.synthetic_calibration`).  The
per-device error levels are chosen so that the slower devices tend to have
slightly better calibration — the regime in which the paper's speed-versus-
fidelity trade-off appears.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import networkx as nx

from repro.hardware.calibration import CalibrationData, synthetic_calibration
from repro.hardware.coupling import ibm_eagle_coupling

__all__ = [
    "DeviceProfile",
    "DEVICE_CATALOG",
    "DEFAULT_DEVICE_NAMES",
    "get_device_profile",
    "list_available_devices",
    "build_default_fleet",
]


@dataclass
class DeviceProfile:
    """Static description of one quantum device.

    This corresponds to the device tuple ``D_i = (C_i, E_i, K_i, G_i)`` of the
    paper's problem definition (§4): qubit capacity, error score, CLOPS
    throughput and coupling graph — plus the calibration snapshot from which
    the error score is derived.
    """

    #: Backend name (e.g. ``"ibm_strasbourg"``).
    name: str
    #: Qubit capacity ``C_i``.
    num_qubits: int
    #: Circuit layer operations per second ``K_i``.
    clops: float
    #: Quantum volume of the device.
    quantum_volume: float
    #: Qubit connectivity graph ``G_i``.
    coupling: nx.Graph
    #: Calibration snapshot used for the error score and fidelity model.
    calibration: CalibrationData

    def __post_init__(self) -> None:
        if self.num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        if self.clops <= 0:
            raise ValueError("clops must be positive")
        if self.quantum_volume <= 1:
            raise ValueError("quantum_volume must be > 1")
        if self.coupling.number_of_nodes() != self.num_qubits:
            raise ValueError(
                f"coupling map has {self.coupling.number_of_nodes()} nodes but "
                f"num_qubits={self.num_qubits}"
            )
        if self.calibration.num_qubits != self.num_qubits:
            raise ValueError("calibration snapshot does not cover all qubits")

    # Aggregated calibration values reused throughout the metrics layer.
    @property
    def avg_readout_error(self) -> float:
        """Average per-qubit readout error."""
        return self.calibration.average_readout_error()

    @property
    def avg_single_qubit_error(self) -> float:
        """Average single-qubit gate error."""
        return self.calibration.average_single_qubit_error()

    @property
    def avg_two_qubit_error(self) -> float:
        """Average two-qubit gate error."""
        return self.calibration.average_two_qubit_error()

    def error_score(self, alpha: float = 0.5, theta: float = 0.3, gamma: float = 0.2) -> float:
        """Calibration-derived error score ``E_i`` (paper Eq. 2)."""
        from repro.metrics.error_score import error_score

        return error_score(self.calibration, alpha=alpha, theta=theta, gamma=gamma)


#: Per-device specification: (CLOPS, calibration quality multipliers, seed).
#: The multipliers scale the baseline Eagle-class error means; values < 1 mean
#: a better-calibrated device.  Slower devices are given slightly better
#: calibration so that error-aware scheduling faces a genuine trade-off, as in
#: the paper's discussion (§7.2).
_DEVICE_SPECS: Dict[str, Dict[str, float]] = {
    "ibm_strasbourg": {"clops": 220_000, "quality": 0.90, "seed": 101},
    "ibm_brussels": {"clops": 220_000, "quality": 1.00, "seed": 102},
    "ibm_quebec": {"clops": 32_000, "quality": 0.84, "seed": 103},
    "ibm_kyiv": {"clops": 30_000, "quality": 0.78, "seed": 104},
    "ibm_kawasaki": {"clops": 29_000, "quality": 1.25, "seed": 105},
}

#: Device names in the order used throughout the paper's case study.
DEFAULT_DEVICE_NAMES: List[str] = [
    "ibm_strasbourg",
    "ibm_brussels",
    "ibm_kyiv",
    "ibm_quebec",
    "ibm_kawasaki",
]

#: Baseline error means for Eagle-class devices (scaled by the quality factor).
_BASE_READOUT_ERROR = 2.2e-2
_BASE_SINGLE_QUBIT_ERROR = 2.5e-4
_BASE_TWO_QUBIT_ERROR = 7.5e-3

#: Default number of qubits / quantum volume for every catalogue device (§7).
_DEFAULT_NUM_QUBITS = 127
_DEFAULT_QUANTUM_VOLUME = 127

#: Cache of constructed profiles (building the coupling map is not free).
DEVICE_CATALOG: Dict[str, DeviceProfile] = {}


def list_available_devices() -> List[str]:
    """Names of all devices available in the catalogue."""
    return list(_DEVICE_SPECS)


def get_device_profile(
    name: str,
    num_qubits: int = _DEFAULT_NUM_QUBITS,
    quantum_volume: float = _DEFAULT_QUANTUM_VOLUME,
    seed: Optional[int] = None,
) -> DeviceProfile:
    """Build (or fetch from cache) the profile of a catalogue device.

    Parameters
    ----------
    name:
        One of :func:`list_available_devices`.
    num_qubits, quantum_volume:
        Override the default 127/127 used in the paper's case study.
    seed:
        Override the calibration seed (defaults to a per-device constant so
        repeated calls return identical snapshots).
    """
    if name not in _DEVICE_SPECS:
        raise KeyError(f"Unknown device {name!r}; available: {list_available_devices()}")
    cache_key = f"{name}:{num_qubits}:{quantum_volume}:{seed}"
    if cache_key in DEVICE_CATALOG:
        return DEVICE_CATALOG[cache_key]

    spec = _DEVICE_SPECS[name]
    coupling = ibm_eagle_coupling(num_qubits)
    quality = spec["quality"]
    calibration = synthetic_calibration(
        coupling,
        readout_error_mean=_BASE_READOUT_ERROR * quality,
        single_qubit_error_mean=_BASE_SINGLE_QUBIT_ERROR * quality,
        two_qubit_error_mean=_BASE_TWO_QUBIT_ERROR * quality,
        seed=int(spec["seed"]) if seed is None else seed,
        timestamp="2025-03-15T00:00:00Z",
    )
    profile = DeviceProfile(
        name=name,
        num_qubits=num_qubits,
        clops=float(spec["clops"]),
        quantum_volume=float(quantum_volume),
        coupling=coupling,
        calibration=calibration,
    )
    DEVICE_CATALOG[cache_key] = profile
    return profile


def build_default_fleet(
    names: Optional[Sequence[str]] = None,
    num_qubits: int = _DEFAULT_NUM_QUBITS,
    quantum_volume: float = _DEFAULT_QUANTUM_VOLUME,
) -> List[DeviceProfile]:
    """Build the five-device fleet used in the paper's case study (§7)."""
    names = list(names) if names is not None else list(DEFAULT_DEVICE_NAMES)
    return [get_device_profile(name, num_qubits, quantum_volume) for name in names]
