"""Connected-region tracking on device coupling maps.

The paper's allocation workflow assumes that the qubits allocated to a
sub-job form a connected subgraph of the device topology, but deliberately
treats that as a black box because searching for optimal connected subgraphs
is combinatorially expensive (§5.2).  This module provides the machinery to
*check* that assumption:

* :class:`QubitRegionTracker` maintains the set of free physical qubits of
  one device, hands out regions (preferring connected ones, found with a
  cheap BFS heuristic over the free subgraph) and takes them back on release,
  while counting how often a connected region was actually available.

It is used by :mod:`repro.analysis.connectivity` to replay completed
simulations and quantify how often the black-box assumption holds under each
scheduling strategy.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

import networkx as nx

__all__ = ["RegionAllocation", "QubitRegionTracker"]


@dataclass(frozen=True)
class RegionAllocation:
    """One granted qubit region."""

    #: Opaque handle used to release the region later.
    handle: int
    #: The physical qubit indices granted.
    qubits: FrozenSet[int]
    #: Whether the region is connected in the device coupling map.
    connected: bool

    @property
    def size(self) -> int:
        """Number of qubits in the region."""
        return len(self.qubits)


class QubitRegionTracker:
    """Tracks free/busy physical qubits of one device and allocates regions.

    Parameters
    ----------
    coupling:
        The device coupling map (nodes = physical qubits).
    """

    def __init__(self, coupling: nx.Graph) -> None:
        if coupling.number_of_nodes() == 0:
            raise ValueError("coupling map must contain at least one qubit")
        self.coupling = coupling
        self._free = set(coupling.nodes())
        self._regions: Dict[int, FrozenSet[int]] = {}
        self._handles = itertools.count()
        #: Total allocations granted.
        self.allocations_total = 0
        #: Allocations whose region was connected.
        self.allocations_connected = 0

    # -- state -------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Total number of physical qubits."""
        return self.coupling.number_of_nodes()

    @property
    def num_free(self) -> int:
        """Number of currently free qubits."""
        return len(self._free)

    @property
    def utilization(self) -> float:
        """Fraction of qubits currently allocated."""
        return 1.0 - self.num_free / self.num_qubits

    @property
    def connected_fraction(self) -> float:
        """Fraction of granted allocations that were connected regions."""
        if self.allocations_total == 0:
            return 1.0
        return self.allocations_connected / self.allocations_total

    def free_qubits(self) -> FrozenSet[int]:
        """The currently free physical qubits."""
        return frozenset(self._free)

    # -- allocation ----------------------------------------------------------
    def _find_connected_region(self, size: int) -> Optional[FrozenSet[int]]:
        """BFS heuristic: a connected set of *size* free qubits, or ``None``."""
        free_subgraph = self.coupling.subgraph(self._free)
        for component in nx.connected_components(free_subgraph):
            if len(component) < size:
                continue
            start = min(component)
            order = list(nx.bfs_tree(free_subgraph.subgraph(component), start).nodes())
            return frozenset(order[:size])
        return None

    def allocate(self, size: int) -> RegionAllocation:
        """Grant *size* qubits, preferring a connected region.

        Falls back to an arbitrary set of free qubits (``connected=False``)
        when the free subgraph is too fragmented — this is exactly the case
        the paper's black-box abstraction glosses over.

        Raises ``ValueError`` when fewer than *size* qubits are free.
        """
        if size <= 0:
            raise ValueError("size must be positive")
        if size > self.num_free:
            raise ValueError(f"requested {size} qubits but only {self.num_free} are free")

        region = self._find_connected_region(size)
        connected = region is not None
        if region is None:
            region = frozenset(sorted(self._free)[:size])

        self._free -= region
        handle = next(self._handles)
        self._regions[handle] = region
        self.allocations_total += 1
        if connected:
            self.allocations_connected += 1
        return RegionAllocation(handle=handle, qubits=region, connected=connected)

    def release(self, handle: int) -> None:
        """Return a previously granted region to the free pool."""
        try:
            region = self._regions.pop(handle)
        except KeyError:
            raise KeyError(f"unknown or already-released region handle {handle}") from None
        self._free |= region

    def reset(self) -> None:
        """Free every qubit and clear the statistics."""
        self._free = set(self.coupling.nodes())
        self._regions.clear()
        self.allocations_total = 0
        self.allocations_connected = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<QubitRegionTracker free={self.num_free}/{self.num_qubits} "
            f"connected={self.connected_fraction:.2%}>"
        )
