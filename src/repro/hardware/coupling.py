"""Qubit connectivity (coupling-map) generators.

The paper models each device's qubit topology as an undirected graph
``G_i = (V_i, E_i)`` (§4).  Superconducting IBM devices use the *heavy-hex*
lattice: a hexagonal lattice with an extra qubit on every edge, giving a
maximum degree of 3.  The scheduler itself treats connectivity as a black box
(§5.2), but the graphs are still used for capacity accounting, for the
connected-subgraph checks in the test-suite, and for reporting.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import networkx as nx

__all__ = [
    "heavy_hex_graph",
    "ibm_eagle_coupling",
    "grid_graph",
    "line_graph",
    "ring_graph",
    "coupling_graph",
    "largest_connected_subgraph",
]


def _relabel_to_integers(graph: nx.Graph) -> nx.Graph:
    """Relabel nodes to contiguous integers 0..n-1 (deterministic order).

    Nodes may be heterogeneous (lattice coordinates and edge-subdivision
    markers), so ordering is by ``repr`` which is stable across runs.
    """
    mapping = {node: idx for idx, node in enumerate(sorted(graph.nodes(), key=repr))}
    return nx.relabel_nodes(graph, mapping, copy=True)


def heavy_hex_graph(rows: int = 3, cols: int = 3) -> nx.Graph:
    """Build a heavy-hex lattice.

    A hexagonal lattice of the given size is generated and every edge is
    subdivided by an additional vertex, reproducing the heavy-hex structure
    of IBM's Falcon/Eagle/Heron processors (vertex degree at most 3).

    Parameters
    ----------
    rows, cols:
        Size of the underlying hexagonal lattice.

    Returns
    -------
    networkx.Graph with integer node labels ``0..n-1``.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    hexagonal = nx.hexagonal_lattice_graph(rows, cols)
    heavy = nx.Graph()
    heavy.add_nodes_from(hexagonal.nodes())
    for u, v in hexagonal.edges():
        midpoint = ("edge", u, v)
        heavy.add_node(midpoint)
        heavy.add_edge(u, midpoint)
        heavy.add_edge(midpoint, v)
    return _relabel_to_integers(heavy)


def _trim_to_size(graph: nx.Graph, num_qubits: int) -> nx.Graph:
    """Return a connected subgraph of exactly *num_qubits* nodes (BFS order)."""
    if graph.number_of_nodes() < num_qubits:
        raise ValueError(
            f"graph has only {graph.number_of_nodes()} nodes, cannot trim to {num_qubits}"
        )
    start = min(graph.nodes())
    order = list(nx.bfs_tree(graph, start).nodes())
    keep = order[:num_qubits]
    sub = graph.subgraph(keep).copy()
    if not nx.is_connected(sub):  # pragma: no cover - BFS prefix is always connected
        raise RuntimeError("trimmed subgraph unexpectedly disconnected")
    return _relabel_to_integers(sub)


def ibm_eagle_coupling(num_qubits: int = 127) -> nx.Graph:
    """A 127-qubit Eagle-class heavy-hex coupling map.

    The exact IBM layout is not required by the scheduler (connectivity is
    treated as a black box, §5.2); this function produces a heavy-hex lattice
    trimmed to exactly *num_qubits* connected nodes with max degree 3.
    """
    if num_qubits <= 0:
        raise ValueError("num_qubits must be positive")
    rows = cols = 2
    graph = heavy_hex_graph(rows, cols)
    while graph.number_of_nodes() < num_qubits:
        if rows <= cols:
            rows += 1
        else:
            cols += 1
        graph = heavy_hex_graph(rows, cols)
    return _trim_to_size(graph, num_qubits)


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """A 2-D grid coupling map (used by some trapped-ion/neutral-atom layouts)."""
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    return _relabel_to_integers(nx.grid_2d_graph(rows, cols))


def line_graph(num_qubits: int) -> nx.Graph:
    """A 1-D chain of qubits."""
    if num_qubits <= 0:
        raise ValueError("num_qubits must be positive")
    return nx.path_graph(num_qubits)


def ring_graph(num_qubits: int) -> nx.Graph:
    """A ring of qubits."""
    if num_qubits < 3:
        raise ValueError("a ring needs at least 3 qubits")
    return nx.cycle_graph(num_qubits)


_TOPOLOGY_BUILDERS = {
    "heavy_hex": lambda n: ibm_eagle_coupling(n),
    "eagle": lambda n: ibm_eagle_coupling(n),
    "line": line_graph,
    "ring": ring_graph,
    "grid": lambda n: _square_grid(n),
}


def _square_grid(num_qubits: int) -> nx.Graph:
    """Smallest square-ish grid with at least *num_qubits* nodes, trimmed."""
    side = 1
    while side * side < num_qubits:
        side += 1
    return _trim_to_size(grid_graph(side, side), num_qubits)


def coupling_graph(topology: str, num_qubits: int) -> nx.Graph:
    """Build a coupling map by name.

    Parameters
    ----------
    topology:
        One of ``"heavy_hex"``, ``"eagle"``, ``"grid"``, ``"line"``, ``"ring"``.
    num_qubits:
        Number of qubits in the device.
    """
    try:
        builder = _TOPOLOGY_BUILDERS[topology]
    except KeyError:
        raise ValueError(
            f"Unknown topology {topology!r}; choose from {sorted(_TOPOLOGY_BUILDERS)}"
        ) from None
    return builder(num_qubits)


def largest_connected_subgraph(graph: nx.Graph, size: int) -> Optional[frozenset]:
    """Find *some* connected subgraph of exactly *size* nodes (BFS heuristic).

    Returns a frozenset of nodes, or ``None`` if the graph has fewer than
    *size* nodes in its largest connected component.  This implements the
    "practical assumption" of §5.2: on highly connected devices, a connected
    region of any requested size can be found greedily.
    """
    if size <= 0:
        raise ValueError("size must be positive")
    components = sorted(nx.connected_components(graph), key=len, reverse=True)
    if not components or len(components[0]) < size:
        return None
    component = components[0]
    start = min(component)
    order = list(nx.bfs_tree(graph.subgraph(component), start).nodes())
    return frozenset(order[:size])
