"""Quantum hardware models: topologies, calibration data and device profiles.

This subpackage provides the hardware substrate the scheduler reasons about:

* :mod:`repro.hardware.coupling` — qubit connectivity graphs (heavy-hex /
  grid / line / ring) built with :mod:`networkx`,
* :mod:`repro.hardware.calibration` — calibration snapshots (readout,
  single- and two-qubit gate errors, coherence times) and the error-score
  formula of the paper's Eq. (2),
* :mod:`repro.hardware.backends` — a catalogue of the five 127-qubit IBM
  devices used in the paper's case study (ibm_strasbourg, ibm_brussels,
  ibm_kyiv, ibm_quebec, ibm_kawasaki) with the CLOPS values quoted in §7 and
  synthetic calibration data standing in for the March-2025 snapshots,
* :mod:`repro.hardware.clops` — CLOPS / quantum-volume execution-time helpers.
"""

from repro.hardware.backends import (
    DEFAULT_DEVICE_NAMES,
    DeviceProfile,
    build_default_fleet,
    get_device_profile,
    list_available_devices,
)
from repro.hardware.calibration import (
    CalibrationData,
    GateCalibration,
    QubitCalibration,
    synthetic_calibration,
)
from repro.hardware.clops import clops_execution_time, log2_quantum_volume
from repro.hardware.coupling import (
    coupling_graph,
    grid_graph,
    heavy_hex_graph,
    ibm_eagle_coupling,
    line_graph,
    ring_graph,
)
from repro.hardware.regions import QubitRegionTracker, RegionAllocation

__all__ = [
    "QubitRegionTracker",
    "RegionAllocation",
    "CalibrationData",
    "DEFAULT_DEVICE_NAMES",
    "DeviceProfile",
    "GateCalibration",
    "QubitCalibration",
    "build_default_fleet",
    "clops_execution_time",
    "coupling_graph",
    "get_device_profile",
    "grid_graph",
    "heavy_hex_graph",
    "ibm_eagle_coupling",
    "line_graph",
    "list_available_devices",
    "log2_quantum_volume",
    "ring_graph",
    "synthetic_calibration",
]
