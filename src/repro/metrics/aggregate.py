"""Aggregation of simulation results into the paper's reported metrics.

Table 2 of the paper reports, per allocation strategy:

* total simulation time ``T_sim`` (wall-clock of the simulated schedule, i.e.
  the makespan until all jobs complete),
* average fidelity ``mu_F ± sigma_F`` over all jobs,
* total communication time ``T_comm`` summed over all jobs.

Figure 6 reports per-strategy fidelity histograms.  This module computes both
from a sequence of completed job records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["StrategySummary", "summarize_records", "empty_summary", "fidelity_histogram"]


def _get(record: Any, name: str) -> Any:
    """Fetch a field from either an object attribute or a mapping key."""
    if isinstance(record, dict):
        return record[name]
    return getattr(record, name)


def _get_wait(record: Any) -> float:
    """Per-job waiting time: the record's ``wait_time`` when it has one.

    Retried jobs' ``wait_time`` is cumulative time *not* executing, which
    differs from the naive ``start - arrival`` (that silently includes
    aborted attempts' execution time); minimal records without the field
    fall back to the legacy expression.
    """
    try:
        return float(_get(record, "wait_time"))
    except (AttributeError, KeyError):
        return float(_get(record, "start_time")) - float(_get(record, "arrival_time"))


@dataclass(frozen=True)
class StrategySummary:
    """One row of Table 2."""

    #: Name of the allocation strategy ("speed", "fidelity", "fair", "rlbase", ...).
    strategy: str
    #: Number of completed jobs aggregated.
    num_jobs: int
    #: Total simulated time until the last job completed (seconds).
    total_simulation_time: float
    #: Mean final fidelity over all jobs.
    mean_fidelity: float
    #: Standard deviation of the final fidelity.
    std_fidelity: float
    #: Total inter-device communication time summed over all jobs (seconds).
    total_communication_time: float
    #: Mean number of devices used per job.
    mean_devices_per_job: float
    #: Mean per-job turnaround (finish - arrival) in seconds.
    mean_turnaround_time: float
    #: Mean per-job waiting time (cumulative time not executing) in seconds.
    mean_wait_time: float

    def as_row(self) -> Dict[str, float]:
        """Table-friendly dictionary (column name -> value)."""
        return {
            "strategy": self.strategy,
            "num_jobs": self.num_jobs,
            "T_sim_s": self.total_simulation_time,
            "mean_fidelity": self.mean_fidelity,
            "std_fidelity": self.std_fidelity,
            "T_comm_s": self.total_communication_time,
            "mean_devices_per_job": self.mean_devices_per_job,
            "mean_turnaround_s": self.mean_turnaround_time,
            "mean_wait_s": self.mean_wait_time,
        }

    def format_row(self) -> str:
        """Render the summary like a row of the paper's Table 2."""
        return (
            f"{self.strategy:<10s} {self.total_simulation_time:>12.2f} "
            f"{self.mean_fidelity:.5f} ± {self.std_fidelity:.5f} "
            f"{self.total_communication_time:>10.2f}"
        )


def summarize_records(records: Sequence[Any], strategy: str = "") -> StrategySummary:
    """Aggregate completed job records into a :class:`StrategySummary`.

    Each record must expose (attribute or key): ``fidelity``, ``arrival_time``,
    ``start_time``, ``finish_time``, ``communication_time`` and
    ``num_devices``.
    """
    records = list(records)
    if not records:
        raise ValueError("cannot summarize an empty record list")

    fidelities = np.array([float(_get(r, "fidelity")) for r in records])
    arrivals = np.array([float(_get(r, "arrival_time")) for r in records])
    finishes = np.array([float(_get(r, "finish_time")) for r in records])
    comms = np.array([float(_get(r, "communication_time")) for r in records])
    devices = np.array([float(_get(r, "num_devices")) for r in records])

    return StrategySummary(
        strategy=strategy,
        num_jobs=len(records),
        total_simulation_time=float(finishes.max()),
        mean_fidelity=float(fidelities.mean()),
        std_fidelity=float(fidelities.std()),
        total_communication_time=float(comms.sum()),
        mean_devices_per_job=float(devices.mean()),
        mean_turnaround_time=float((finishes - arrivals).mean()),
        mean_wait_time=float(np.mean([_get_wait(r) for r in records])),
    )


def empty_summary(strategy: str = "") -> StrategySummary:
    """The summary of a run that completed zero jobs.

    Totals are zero and per-job means are NaN (there are no jobs to average
    over).  Lets zero-completion cells — e.g. every job shed by admission
    control or failed as infeasible — flow through the experiment engine and
    CLI instead of raising (:func:`summarize_records` still rejects an empty
    list, since callers passing one usually have a bug).
    """
    nan = float("nan")
    return StrategySummary(
        strategy=strategy,
        num_jobs=0,
        total_simulation_time=0.0,
        mean_fidelity=nan,
        std_fidelity=nan,
        total_communication_time=0.0,
        mean_devices_per_job=nan,
        mean_turnaround_time=nan,
        mean_wait_time=nan,
    )


def fidelity_histogram(
    records: Sequence[Any],
    bins: int = 30,
    value_range: Optional[Tuple[float, float]] = None,
) -> Dict[str, np.ndarray]:
    """Histogram of final job fidelities (the series plotted in Fig. 6).

    Returns
    -------
    dict with keys ``counts`` (len = bins), ``edges`` (len = bins + 1) and
    ``centers`` (len = bins).
    """
    if bins <= 0:
        raise ValueError("bins must be positive")
    fidelities = np.array([float(_get(r, "fidelity")) for r in records])
    if fidelities.size == 0:
        raise ValueError("cannot histogram an empty record list")
    counts, edges = np.histogram(fidelities, bins=bins, range=value_range)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return {"counts": counts, "edges": edges, "centers": centers}
