"""Online quantile estimation with the P² algorithm (Jain & Chlamtac, 1985).

The exact percentile path (``np.percentile`` over every observation) needs
all values in memory — fine for thousand-job runs, prohibitive for the
million-job traces the scale benchmark sustains.  :class:`P2Quantile` keeps
five markers per tracked quantile and updates them in O(1) per observation,
giving a constant-memory estimate whose error shrinks as the sample grows.

The estimator is deterministic: the same observation sequence always yields
the same estimate.  For fewer than five observations the exact
``np.percentile`` value of the buffered sample is returned, so tiny runs
stay exact.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

__all__ = ["P2Quantile"]


class P2Quantile:
    """Streaming estimator of one quantile via the P² marker algorithm.

    Parameters
    ----------
    quantile:
        The tracked quantile ``p`` in (0, 1) — e.g. ``0.5`` for the median,
        ``0.99`` for p99.

    Example
    -------
    >>> est = P2Quantile(0.5)
    >>> for x in range(1, 101):
    ...     est.add(float(x))
    >>> 45 <= est.value <= 55
    True
    """

    # Marker state lives in scalar slots rather than the textbook five-entry
    # lists: ``add`` runs several times per completed job, and scalar
    # attribute access beats list indexing by enough to matter at a million
    # jobs.  Two invariants of the algorithm make the flattening exact:
    # position 0 is pinned at 1.0 (never incremented, never adjusted) and
    # position 4 grows by exactly 1.0 per observation, so it always equals
    # ``float(count)``.  The desired position of marker 4 likewise equals
    # ``count`` and is never read by the adjustment step, so neither needs a
    # slot.  The list views (``_heights``/``_positions``/``_desired``) are
    # reconstructed on demand as read-only properties.
    __slots__ = (
        "quantile",
        "_count",
        "_buffer",
        "_q0",
        "_q1",
        "_q2",
        "_q3",
        "_q4",
        "_n1",
        "_n2",
        "_n3",
        "_d1",
        "_d2",
        "_d3",
        "_i1",
        "_i2",
        "_i3",
    )

    def __init__(self, quantile: float) -> None:
        if not 0.0 < quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {quantile}")
        p = self.quantile = float(quantile)
        self._count = 0
        #: Raw-sample buffer for the first five observations.
        self._buffer: List[float] = []
        self._q0 = self._q1 = self._q2 = self._q3 = self._q4 = 0.0
        self._n1 = self._n2 = self._n3 = 0.0
        self._d1 = self._d2 = self._d3 = 0.0
        self._i1 = p / 2.0
        self._i2 = p
        self._i3 = (1.0 + p) / 2.0

    @property
    def count(self) -> int:
        """Number of observations seen."""
        return self._count

    def add(self, value: float) -> None:
        """Feed one observation.

        The body is hand-unrolled (cell location as a two-level branch, the
        parabolic/linear marker moves inlined, marker state in scalar
        locals) because streaming managers call it several times per
        completed job — at a million jobs this is one of the hottest
        functions in the whole simulator.  The arithmetic is the same
        operations in the same order as the textbook loop form, so
        estimates are unchanged bit for bit.
        """
        x = float(value)
        count = self._count = self._count + 1
        if count <= 5:
            buffer = self._buffer
            buffer.append(x)
            if count == 5:
                buffer.sort()
                self._q0, self._q1, self._q2, self._q3, self._q4 = buffer
                self._n1 = 2.0
                self._n2 = 3.0
                self._n3 = 4.0
                p = self.quantile
                self._d1 = 1.0 + 2.0 * p
                self._d2 = 1.0 + 4.0 * p
                self._d3 = 3.0 + 2.0 * p
            return

        q0 = self._q0
        q1 = self._q1
        q2 = self._q2
        q3 = self._q3
        q4 = self._q4
        if x < q0:
            self._q0 = q0 = x
            k = 0
        elif x >= q4:
            self._q4 = q4 = x
            k = 3
        elif x >= q2:
            # k is the largest marker index in 0..3 with height <= x.
            k = 3 if x >= q3 else 2
        else:
            k = 1 if x >= q1 else 0

        # Shift the positions of every marker above the cell (position 0 is
        # pinned at 1.0; position 4 becomes exactly ``count``).
        n1 = self._n1
        n2 = self._n2
        n3 = self._n3
        if k < 1:
            n1 += 1.0
        if k < 2:
            n2 += 1.0
        if k < 3:
            n3 += 1.0
        n4 = float(count)
        d1 = self._d1 = self._d1 + self._i1
        d2 = self._d2 = self._d2 + self._i2
        d3 = self._d3 = self._d3 + self._i3

        # Adjust the three interior markers toward their desired positions,
        # ascending — each marker sees its left neighbour's updated position
        # and height, exactly like the loop form.
        d = d1 - n1
        if (d >= 1.0 and n2 - n1 > 1.0) or (d <= -1.0 and 1.0 - n1 < -1.0):
            step = 1.0 if d > 0 else -1.0
            candidate = q1 + step / (n2 - 1.0) * (
                (n1 - 1.0 + step) * (q2 - q1) / (n2 - n1)
                + (n2 - n1 - step) * (q1 - q0) / (n1 - 1.0)
            )
            if not q0 < candidate < q2:
                if step > 0.0:
                    candidate = q1 + (q2 - q1) / (n2 - n1)
                else:
                    candidate = q1 - (q0 - q1) / (1.0 - n1)
            self._q1 = q1 = candidate
            n1 += step
        self._n1 = n1

        d = d2 - n2
        if (d >= 1.0 and n3 - n2 > 1.0) or (d <= -1.0 and n1 - n2 < -1.0):
            step = 1.0 if d > 0 else -1.0
            candidate = q2 + step / (n3 - n1) * (
                (n2 - n1 + step) * (q3 - q2) / (n3 - n2)
                + (n3 - n2 - step) * (q2 - q1) / (n2 - n1)
            )
            if not q1 < candidate < q3:
                if step > 0.0:
                    candidate = q2 + (q3 - q2) / (n3 - n2)
                else:
                    candidate = q2 - (q1 - q2) / (n1 - n2)
            self._q2 = q2 = candidate
            n2 += step
        self._n2 = n2

        d = d3 - n3
        if (d >= 1.0 and n4 - n3 > 1.0) or (d <= -1.0 and n2 - n3 < -1.0):
            step = 1.0 if d > 0 else -1.0
            candidate = q3 + step / (n4 - n2) * (
                (n3 - n2 + step) * (q4 - q3) / (n4 - n3)
                + (n4 - n3 - step) * (q3 - q2) / (n3 - n2)
            )
            if not q2 < candidate < q4:
                if step > 0.0:
                    candidate = q3 + (q4 - q3) / (n4 - n3)
                else:
                    candidate = q3 - (q2 - q3) / (n2 - n3)
            self._q3 = candidate
            n3 += step
        self._n3 = n3

    # -- list views of the marker state (kept for tests/introspection) ------
    @property
    def _heights(self) -> List[float]:
        """Marker heights ``q_i`` (the raw sample before five observations)."""
        if self._count < 5:
            return list(self._buffer)
        return [self._q0, self._q1, self._q2, self._q3, self._q4]

    @property
    def _positions(self) -> List[float]:
        """Marker positions ``n_i`` (empty before five observations)."""
        if self._count < 5:
            return []
        return [1.0, self._n1, self._n2, self._n3, float(self._count)]

    @property
    def _desired(self) -> List[float]:
        """Desired marker positions (empty before five observations)."""
        if self._count < 5:
            return []
        return [1.0, self._d1, self._d2, self._d3, float(self._count)]

    @property
    def _increments(self) -> tuple:
        """Per-observation desired-position increments."""
        return (0.0, self._i1, self._i2, self._i3, 1.0)

    def _parabolic(self, i: int, d: float) -> float:
        q = self._heights
        n = self._positions
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q = self._heights
        n = self._positions
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    @property
    def value(self) -> Optional[float]:
        """Current quantile estimate (``None`` before any observation).

        Exact (``np.percentile`` of the buffered sample) for fewer than five
        observations, the P² middle-marker height afterwards.
        """
        if self._count == 0:
            return None
        if self._count < 5:
            return float(np.percentile(self._buffer, self.quantile * 100.0))
        return self._q2
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<P2Quantile p={self.quantile} n={self._count} value={self.value}>"
