"""Execution-time and communication-overhead models (paper §6.1 and §6.5).

* Execution time (Eq. 3): ``tau = M * K * S * D / CLOPS`` with ``D = log2(QV)``.
* The problem definition (§4) expresses the same quantity divided by 60,
  i.e. in minutes (:func:`processing_time_minutes`, matching the authors'
  ``calculate_process_time``).
* Classical communication overhead (Eq. 9): ``tau_comm = N_qubits * lambda``
  with a default per-qubit latency ``lambda = 0.02 s``; communication is a
  blocking operation that delays job completion.
"""

from __future__ import annotations

from repro.hardware.clops import DEFAULT_NUM_TEMPLATES, DEFAULT_NUM_UPDATES, clops_execution_time

__all__ = [
    "DEFAULT_COMM_LATENCY_PER_QUBIT",
    "execution_time",
    "processing_time_minutes",
    "communication_time",
]

#: Per-qubit classical communication latency λ in seconds (paper §6.5).
DEFAULT_COMM_LATENCY_PER_QUBIT = 0.02


def execution_time(
    shots: int,
    clops: float,
    quantum_volume: float = 127,
    num_templates: int = DEFAULT_NUM_TEMPLATES,
    num_updates: int = DEFAULT_NUM_UPDATES,
) -> float:
    """Execution time in **seconds** (Eq. 3). See :func:`~repro.hardware.clops.clops_execution_time`."""
    return clops_execution_time(
        shots=shots,
        clops=clops,
        quantum_volume=quantum_volume,
        num_templates=num_templates,
        num_updates=num_updates,
    )


def processing_time_minutes(
    shots: int,
    clops: float,
    quantum_volume: float = 127,
    num_templates: int = DEFAULT_NUM_TEMPLATES,
    num_updates: int = DEFAULT_NUM_UPDATES,
) -> float:
    """Processing time in **minutes**, i.e. Eq. (3) divided by 60.

    This matches the ``T_i`` expression of the problem definition (§4), which
    divides by 60 to convert the CLOPS-model seconds into minutes.
    """
    return (
        execution_time(
            shots=shots,
            clops=clops,
            quantum_volume=quantum_volume,
            num_templates=num_templates,
            num_updates=num_updates,
        )
        / 60.0
    )


def communication_time(
    num_qubits_communicated: int,
    latency_per_qubit: float = DEFAULT_COMM_LATENCY_PER_QUBIT,
) -> float:
    """Classical communication delay ``tau_comm = N_qubits * lambda`` (Eq. 9).

    Parameters
    ----------
    num_qubits_communicated:
        Number of qubits whose measurement outcomes / classical control
        parameters must be exchanged between devices.
    latency_per_qubit:
        Per-qubit latency λ in seconds (0.02 s by default, §6.5).
    """
    if num_qubits_communicated < 0:
        raise ValueError("num_qubits_communicated must be non-negative")
    if latency_per_qubit < 0:
        raise ValueError("latency_per_qubit must be non-negative")
    return num_qubits_communicated * latency_per_qubit
