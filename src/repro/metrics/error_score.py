"""Device error score (paper §5.4, Eq. 2).

The error score quantifies overall device quality from calibration data::

    error_score = alpha * mean(readout errors)
                + theta * epsilon_1Q
                + gamma * mean(two-qubit gate errors)

with default weights ``alpha=0.5``, ``theta=0.3``, ``gamma=0.2``.  Readout
errors receive the highest weight because they directly corrupt measurement
outcomes; single-qubit errors are weighted above two-qubit errors because
single-qubit gates occur more frequently even though individual two-qubit
gates are noisier (§5.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.calibration import CalibrationData

__all__ = ["ErrorScoreWeights", "DEFAULT_WEIGHTS", "error_score", "error_score_from_averages"]


@dataclass(frozen=True)
class ErrorScoreWeights:
    """Weights (α, θ, γ) of the error-score formula."""

    alpha: float = 0.5
    theta: float = 0.3
    gamma: float = 0.2

    def __post_init__(self) -> None:
        for name in ("alpha", "theta", "gamma"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")
        if self.alpha + self.theta + self.gamma <= 0:
            raise ValueError("at least one weight must be positive")

    @property
    def total(self) -> float:
        """Sum of the weights (1.0 for the paper's defaults)."""
        return self.alpha + self.theta + self.gamma


#: The paper's default weighting (α=0.5, θ=0.3, γ=0.2).
DEFAULT_WEIGHTS = ErrorScoreWeights()


def error_score_from_averages(
    avg_readout_error: float,
    avg_single_qubit_error: float,
    avg_two_qubit_error: float,
    alpha: float = DEFAULT_WEIGHTS.alpha,
    theta: float = DEFAULT_WEIGHTS.theta,
    gamma: float = DEFAULT_WEIGHTS.gamma,
) -> float:
    """Evaluate Eq. (2) from pre-averaged error rates."""
    for name, value in (
        ("avg_readout_error", avg_readout_error),
        ("avg_single_qubit_error", avg_single_qubit_error),
        ("avg_two_qubit_error", avg_two_qubit_error),
    ):
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be a probability, got {value}")
    weights = ErrorScoreWeights(alpha, theta, gamma)
    return (
        weights.alpha * avg_readout_error
        + weights.theta * avg_single_qubit_error
        + weights.gamma * avg_two_qubit_error
    )


def error_score(
    calibration: "CalibrationData",
    alpha: float = DEFAULT_WEIGHTS.alpha,
    theta: float = DEFAULT_WEIGHTS.theta,
    gamma: float = DEFAULT_WEIGHTS.gamma,
) -> float:
    """Evaluate Eq. (2) from a :class:`~repro.hardware.calibration.CalibrationData`."""
    return error_score_from_averages(
        calibration.average_readout_error(),
        calibration.average_single_qubit_error(),
        calibration.average_two_qubit_error(),
        alpha=alpha,
        theta=theta,
        gamma=gamma,
    )
