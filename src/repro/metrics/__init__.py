"""Performance metrics of the paper (§5.4 and §6).

* :mod:`repro.metrics.error_score` — calibration-derived device error score,
  Eq. (2),
* :mod:`repro.metrics.timing` — CLOPS/QV execution-time model (Eq. 3) and
  classical communication overhead (Eq. 9),
* :mod:`repro.metrics.fidelity` — single-/two-qubit/readout fidelities
  (Eqs. 4-6), per-device fidelity (Eq. 7) and the inter-device communication
  penalty (Eq. 8),
* :mod:`repro.metrics.aggregate` — aggregation of job records into the rows
  of Table 2 and the histogram series of Fig. 6.
"""

from repro.metrics.aggregate import (
    StrategySummary,
    empty_summary,
    fidelity_histogram,
    summarize_records,
)
from repro.metrics.error_score import ErrorScoreWeights, error_score, error_score_from_averages
from repro.metrics.fidelity import (
    FidelityBreakdown,
    communication_penalty,
    device_fidelity,
    final_fidelity,
    merge_segment_fidelities,
    readout_fidelity,
    single_qubit_fidelity,
    two_qubit_fidelity,
)
from repro.metrics.timing import (
    communication_time,
    execution_time,
    processing_time_minutes,
)

__all__ = [
    "ErrorScoreWeights",
    "FidelityBreakdown",
    "StrategySummary",
    "communication_penalty",
    "communication_time",
    "device_fidelity",
    "empty_summary",
    "error_score",
    "error_score_from_averages",
    "execution_time",
    "fidelity_histogram",
    "final_fidelity",
    "merge_segment_fidelities",
    "processing_time_minutes",
    "readout_fidelity",
    "single_qubit_fidelity",
    "summarize_records",
    "two_qubit_fidelity",
]
