"""Fidelity model (paper §6.2-§6.4, Eqs. 4-8).

All fidelities in the paper are *analytic estimates* derived from reported
calibration error rates — no state-vector simulation is involved (§7.2).

* Single-qubit fidelity (Eq. 4):    ``F_1Q = (1 - eps_1Q) ** d``
* Two-qubit fidelity (Eq. 5):       ``F_2Q = (1 - eps_2Q) ** sqrt(N_2Q)``
* Readout fidelity (Eq. 6):         ``F_ro = (1 - eps_ro) ** sqrt(N_qubits / N_devices)``
* Device fidelity (Eq. 7):          ``F_dev = F_1Q * F_2Q * F_ro``
* Final fidelity (Eq. 8):           ``F_final = mean(F_dev) * phi ** (N_devices - 1)``

with the communication penalty factor ``phi = 0.95`` per inter-device link.

The elementary kernels (:func:`single_qubit_fidelity`,
:func:`two_qubit_fidelity`, :func:`readout_fidelity`,
:func:`communication_penalty`) accept either scalars or NumPy arrays: scalar
inputs return a Python ``float`` exactly as before, while array inputs
broadcast elementwise and return ``float64`` arrays.  The array form is what
lets :class:`repro.rlenv.batched_env.BatchedQCloudEnv` score a whole batch of
allocations with a handful of vectorized operations instead of a Python loop
per device.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Union

import numpy as np

__all__ = [
    "DEFAULT_COMMUNICATION_PENALTY",
    "FidelityBreakdown",
    "single_qubit_fidelity",
    "two_qubit_fidelity",
    "readout_fidelity",
    "device_fidelity",
    "communication_penalty",
    "final_fidelity",
    "merge_segment_fidelities",
]

#: Empirical per-link fidelity degradation factor φ (paper §6.4).
DEFAULT_COMMUNICATION_PENALTY = 0.95


#: Scalars or broadcastable float64 arrays — all elementary kernels take both.
ArrayLike = Union[float, int, np.ndarray]


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value}")


def _check_probability_array(name: str, value: np.ndarray) -> None:
    if np.any(value < 0.0) or np.any(value > 1.0):
        raise ValueError(f"{name} must contain probabilities in [0, 1]")


#: Types that can never be (or wrap) a non-scalar array — checked by exact
#: type so the fidelity kernels skip ``np.ndim`` on the all-scalar hot path
#: (the broker calls them once per sub-job; ``np.ndim`` dominates otherwise).
_SCALAR_TYPES = (float, int)


def _any_array(*values: ArrayLike) -> bool:
    """True when at least one argument is a (non-scalar) ndarray."""
    return any(type(v) not in _SCALAR_TYPES and np.ndim(v) > 0 for v in values)


def single_qubit_fidelity(avg_single_qubit_error: ArrayLike, depth: ArrayLike) -> ArrayLike:
    """Single-qubit fidelity ``F_1Q = (1 - ε_1Q)^d`` (Eq. 4).

    Parameters
    ----------
    avg_single_qubit_error:
        Average single-qubit gate error rate of the device.  Scalar or array
        (arrays broadcast elementwise against *depth*).
    depth:
        Circuit depth ``d`` — the number of layers over which single-qubit
        errors compound.
    """
    if _any_array(avg_single_qubit_error, depth):
        error = np.asarray(avg_single_qubit_error, dtype=np.float64)
        depth_arr = np.asarray(depth, dtype=np.float64)
        _check_probability_array("avg_single_qubit_error", error)
        if np.any(depth_arr < 0):
            raise ValueError("depth must be non-negative")
        return (1.0 - error) ** depth_arr
    _check_probability("avg_single_qubit_error", avg_single_qubit_error)
    if depth < 0:
        raise ValueError("depth must be non-negative")
    return (1.0 - avg_single_qubit_error) ** depth


def two_qubit_fidelity(avg_two_qubit_error: ArrayLike, num_two_qubit_gates: ArrayLike) -> ArrayLike:
    """Two-qubit fidelity ``F_2Q = (1 - ε_2Q)^sqrt(N_2Q)`` (Eq. 5).

    The square-root exponent moderates the naive independent-error product,
    reflecting that not every two-qubit gate contributes a full independent
    error to the measured observable.  Scalar or array inputs (arrays
    broadcast elementwise).
    """
    if _any_array(avg_two_qubit_error, num_two_qubit_gates):
        error = np.asarray(avg_two_qubit_error, dtype=np.float64)
        gates = np.asarray(num_two_qubit_gates, dtype=np.float64)
        _check_probability_array("avg_two_qubit_error", error)
        if np.any(gates < 0):
            raise ValueError("num_two_qubit_gates must be non-negative")
        return (1.0 - error) ** np.sqrt(gates)
    _check_probability("avg_two_qubit_error", avg_two_qubit_error)
    if num_two_qubit_gates < 0:
        raise ValueError("num_two_qubit_gates must be non-negative")
    return (1.0 - avg_two_qubit_error) ** math.sqrt(num_two_qubit_gates)


def readout_fidelity(
    avg_readout_error: ArrayLike, num_qubits: ArrayLike, num_devices: ArrayLike = 1
) -> ArrayLike:
    """Readout fidelity ``F_ro = (1 - ε_ro)^sqrt(N_qubits / N_devices)`` (Eq. 6).

    Splitting a circuit over more devices reduces the number of qubits
    measured per device, which this exponent captures.  Scalar or array
    inputs (arrays broadcast elementwise).
    """
    if _any_array(avg_readout_error, num_qubits, num_devices):
        error = np.asarray(avg_readout_error, dtype=np.float64)
        qubits = np.asarray(num_qubits, dtype=np.float64)
        devices = np.asarray(num_devices, dtype=np.float64)
        _check_probability_array("avg_readout_error", error)
        if np.any(qubits < 0):
            raise ValueError("num_qubits must be non-negative")
        if np.any(devices <= 0):
            raise ValueError("num_devices must be positive")
        return (1.0 - error) ** np.sqrt(qubits / devices)
    _check_probability("avg_readout_error", avg_readout_error)
    if num_qubits < 0:
        raise ValueError("num_qubits must be non-negative")
    if num_devices <= 0:
        raise ValueError("num_devices must be positive")
    return (1.0 - avg_readout_error) ** math.sqrt(num_qubits / num_devices)


def device_fidelity(
    avg_single_qubit_error: float,
    avg_two_qubit_error: float,
    avg_readout_error: float,
    depth: int,
    num_two_qubit_gates: float,
    num_qubits: int,
    num_devices: int = 1,
) -> float:
    """Per-device fidelity ``F_dev = F_1Q * F_2Q * F_ro`` (Eq. 7)."""
    return (
        single_qubit_fidelity(avg_single_qubit_error, depth)
        * two_qubit_fidelity(avg_two_qubit_error, num_two_qubit_gates)
        * readout_fidelity(avg_readout_error, num_qubits, num_devices)
    )


def communication_penalty(
    num_devices: ArrayLike, phi: float = DEFAULT_COMMUNICATION_PENALTY
) -> ArrayLike:
    """Inter-device communication penalty ``phi^(N_devices - 1)`` (Eq. 8).

    *num_devices* may be a scalar or an array (elementwise penalties).
    """
    if _any_array(num_devices):
        devices = np.asarray(num_devices, dtype=np.float64)
        if np.any(devices <= 0):
            raise ValueError("num_devices must be positive")
        _check_probability("phi", phi)
        return phi ** (devices - 1.0)
    if num_devices <= 0:
        raise ValueError("num_devices must be positive")
    _check_probability("phi", phi)
    return phi ** (num_devices - 1)


def final_fidelity(
    device_fidelities: Sequence[float],
    phi: float = DEFAULT_COMMUNICATION_PENALTY,
) -> float:
    """Final job fidelity: average device fidelity times the comm penalty (Eq. 8)."""
    fidelities = list(device_fidelities)
    if not fidelities:
        raise ValueError("at least one device fidelity is required")
    for f in fidelities:
        _check_probability("device fidelity", f)
    mean_fid = sum(fidelities) / len(fidelities)
    return mean_fid * communication_penalty(len(fidelities), phi)


def merge_segment_fidelities(
    segments: Sequence[tuple],
    phi: float = DEFAULT_COMMUNICATION_PENALTY,
) -> float:
    """Shot-weighted final fidelity across execution segments (checkpointing).

    A checkpointed job completes its shots in *segments*: each aborted
    attempt contributes the shots it finished before the kill, the final
    attempt contributes the remainder.  Every segment may have run on a
    different device allocation, so each gets its own Eq.-8 evaluation
    (mean device fidelity times that segment's communication penalty); the
    job-level fidelity is the shot-weighted average of the segment values.

    Parameters
    ----------
    segments:
        ``(shots, device_fidelities)`` pairs, one per segment, where
        ``device_fidelities`` is the per-device fidelity list of that
        segment's allocation.  All shot counts must be positive.
    phi:
        Per-link communication penalty factor.
    """
    segments = list(segments)
    if not segments:
        raise ValueError("at least one segment is required")
    total_shots = 0
    weighted = 0.0
    for shots, device_fidelities in segments:
        if shots <= 0:
            raise ValueError("segment shot counts must be positive")
        total_shots += shots
        weighted += shots * final_fidelity(device_fidelities, phi)
    return weighted / total_shots


@dataclass(frozen=True)
class FidelityBreakdown:
    """Full decomposition of a sub-job's fidelity on one device.

    Produced by the execution layer so that post-simulation analysis can
    attribute fidelity loss to its sources.
    """

    device_name: str
    qubits_allocated: int
    single_qubit: float
    two_qubit: float
    readout: float

    @property
    def device(self) -> float:
        """Combined per-device fidelity (Eq. 7)."""
        return self.single_qubit * self.two_qubit * self.readout

    def as_dict(self) -> dict:
        """Plain-dict view (JSON-safe)."""
        return {
            "device_name": self.device_name,
            "qubits_allocated": self.qubits_allocated,
            "single_qubit": self.single_qubit,
            "two_qubit": self.two_qubit,
            "readout": self.readout,
            "device": self.device,
        }
