"""Simulated quantum devices (paper §3, ``QDevice`` hierarchy).

Three levels of modelling detail:

* :class:`BaseQDevice` — a named pool of qubits backed by a DES
  :class:`~repro.des.resources.container.Container` (the paper's
  ``device.container.level`` is the number of currently available qubits),
* :class:`QuantumDevice` — adds a graph-based qubit topology (coupling map)
  and utilisation accounting,
* :class:`IBMQuantumDevice` — adds IBM-specific attributes: CLOPS, quantum
  volume and an error score derived from calibration data, and implements
  sub-job execution as a DES process whose duration follows the CLOPS model
  of Eq. (3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator, Optional

import networkx as nx
import numpy as np

from repro.circuits.circuit import CircuitSpec
from repro.des.environment import Environment
from repro.des.exceptions import Interrupt
from repro.des.resources.container import Container
from repro.hardware.backends import DeviceProfile
from repro.hardware.calibration import CalibrationData
from repro.hardware.clops import DEFAULT_NUM_TEMPLATES, DEFAULT_NUM_UPDATES, log2_quantum_volume
from repro.hardware.coupling import largest_connected_subgraph
from repro.metrics.error_score import error_score_from_averages
from repro.metrics.fidelity import FidelityBreakdown, readout_fidelity, single_qubit_fidelity, two_qubit_fidelity
from repro.metrics.timing import processing_time_minutes

__all__ = ["SubJobResult", "BaseQDevice", "QuantumDevice", "IBMQuantumDevice"]

#: CLOPS benchmark constant ``M * K``, hoisted for the fast-path kernels
#: (kept symbolic so the product can never drift from the scalar model).
_CLOPS_MK = DEFAULT_NUM_TEMPLATES * DEFAULT_NUM_UPDATES


@dataclass(frozen=True)
class SubJobResult:
    """Outcome of executing one job fragment on one device.

    ``aborted`` results normally carry no fidelity breakdown: the device went
    offline mid-execution (or was already offline at start) and the broker
    requeues the owning job.  Under checkpointed execution an aborted result
    additionally reports ``completed_shots`` — how many of the fragment's
    shots finished before the kill — and, when that is positive, the
    breakdown of those completed shots (the analytic per-device fidelity does
    not depend on the shot count, only the merge weighting does).
    """

    device_name: str
    qubits_allocated: int
    processing_time: float
    fidelity_breakdown: Optional[FidelityBreakdown]
    aborted: bool = False
    #: Shots of the fragment that completed (all of them for a successful
    #: result; a prefix for a checkpointed abort; 0 without checkpointing).
    completed_shots: int = 0


class BaseQDevice:
    """A quantum device as a pool of qubits.

    Parameters
    ----------
    env:
        The simulation environment.
    name:
        Backend name.
    num_qubits:
        Total qubit capacity ``C_i``.
    """

    def __init__(self, env: Environment, name: str, num_qubits: int) -> None:
        if num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        self.env = env
        self.name = name
        self.num_qubits = int(num_qubits)
        #: Pool of free qubits; ``container.level`` is the number available.
        self.container = Container(env, capacity=num_qubits, init=num_qubits)
        #: Number of sub-jobs completed on this device.
        self.completed_subjobs = 0
        #: Total busy time accumulated (qubit-seconds are tracked separately).
        self.busy_time = 0.0
        #: Accumulated qubit-seconds of work executed (for utilisation stats).
        self.qubit_seconds = 0.0
        #: Number of times the device has gone offline.
        self.outage_count = 0
        #: Number of sub-jobs aborted by outages.
        self.aborted_subjobs = 0
        #: In-flight execution processes (interrupted on a killing outage).
        self._running: set = set()
        #: Active offline causes; the device is online iff this is empty.
        #: Tracked per cause so overlapping outage and maintenance windows
        #: don't cancel each other (the device recovers only when *every*
        #: cause has cleared).
        self._offline_causes: set = set()

    # -- capacity --------------------------------------------------------------
    @property
    def free_qubits(self) -> int:
        """Qubits currently available (``device.container.level``)."""
        # Reads the container's level attribute directly: policies poll this
        # once per device per planning attempt, so the extra property hop
        # shows up at million-job scale.
        return int(self.container._level)

    @property
    def used_qubits(self) -> int:
        """Qubits currently reserved by running sub-jobs."""
        return self.num_qubits - self.free_qubits

    @property
    def utilization(self) -> float:
        """Fraction of qubits currently in use (0..1)."""
        return self.used_qubits / self.num_qubits

    def request_qubits(self, amount: int):
        """Return a DES get-event reserving *amount* qubits."""
        if amount <= 0:
            raise ValueError("amount must be positive")
        if amount > self.num_qubits:
            raise ValueError(
                f"cannot reserve {amount} qubits on {self.name} (capacity {self.num_qubits})"
            )
        return self.container.get(amount)

    def release_qubits(self, amount: int):
        """Return a DES put-event releasing *amount* qubits."""
        if amount <= 0:
            raise ValueError("amount must be positive")
        return self.container.put(amount)

    def reserve_qubits_now(self, amount: int) -> None:
        """Immediately reserve *amount* qubits (flat-dispatcher fast path).

        Equivalent to a granted :meth:`request_qubits` without creating the
        event: ``Container.get`` mutates the level synchronously whenever
        capacity suffices, which the flat dispatcher guarantees up front via
        ``plan.is_feasible_now()``.  Must not be mixed with queued event-based
        requests on the same container.
        """
        container = self.container
        if amount <= 0:
            raise ValueError("amount must be positive")
        if amount > container._level:
            raise RuntimeError(
                f"cannot reserve {amount} qubits on {self.name} "
                f"({container._level} free)"
            )
        container._level -= amount

    def release_qubits_now(self, amount: int) -> None:
        """Immediately release *amount* qubits (flat-dispatcher fast path)."""
        container = self.container
        if amount <= 0:
            raise ValueError("amount must be positive")
        if container._level + amount > container.capacity:
            raise RuntimeError(
                f"releasing {amount} qubits on {self.name} would exceed "
                f"capacity ({container._level}/{container.capacity})"
            )
        container._level += amount

    # -- availability ------------------------------------------------------------
    @property
    def online(self) -> bool:
        """Whether the device accepts new work (no active offline cause)."""
        return not self._offline_causes

    def set_offline(self, kill_running: bool = True, cause: str = "outage") -> bool:
        """Take the device offline for *cause*; returns whether it was online.

        Causes are tracked independently: an outage during a maintenance
        window adds a second cause, and the device only comes back online
        once :meth:`set_online` has cleared every one of them.

        With ``kill_running`` every in-flight execution process is
        interrupted (its sub-job aborts and the broker requeues the owning
        job); otherwise running sub-jobs drain gracefully while no new work
        is planned onto the device.
        """
        was_online = not self._offline_causes
        if cause in self._offline_causes:
            return False
        self._offline_causes.add(cause)
        if was_online:
            self.outage_count += 1
        if kill_running:
            for process in list(self._running):
                if process is not None and process.is_alive:
                    process.interrupt(cause)
        return was_online

    def set_online(self, cause: Optional[str] = None) -> bool:
        """Clear an offline *cause* (or all of them when ``None``).

        Returns ``True`` only when this call actually brought the device
        back online — i.e. it cleared the last active cause.
        """
        if not self._offline_causes:
            return False
        if cause is None:
            self._offline_causes.clear()
        else:
            self._offline_causes.discard(cause)
        return not self._offline_causes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "" if self.online else " OFFLINE"
        return f"<{type(self).__name__} {self.name} free={self.free_qubits}/{self.num_qubits}{state}>"


class QuantumDevice(BaseQDevice):
    """A device with an explicit qubit-connectivity graph."""

    def __init__(self, env: Environment, name: str, coupling: nx.Graph) -> None:
        super().__init__(env, name, coupling.number_of_nodes())
        self.coupling = coupling

    def has_connected_region(self, size: int) -> bool:
        """Whether the topology contains a connected subgraph of *size* qubits.

        Used to check the connectivity constraint of §4; the allocation
        workflow itself treats this as a black box (§5.2).
        """
        if size <= 0:
            raise ValueError("size must be positive")
        if size > self.num_qubits:
            return False
        return largest_connected_subgraph(self.coupling, size) is not None


class IBMQuantumDevice(QuantumDevice):
    """An IBM-flavoured device: CLOPS, quantum volume and calibration data.

    Corresponds to the device tuple ``D_i = (C_i, E_i, K_i, G_i)`` of §4.
    """

    def __init__(self, env: Environment, profile: DeviceProfile) -> None:
        super().__init__(env, profile.name, profile.coupling)
        self.profile = profile
        self.clops = float(profile.clops)
        self.quantum_volume = float(profile.quantum_volume)
        self._calibration = profile.calibration
        #: Snapshot the average aggregates were computed from (identity check).
        self._aggregates_for: Optional[object] = None
        #: Fast-path caches: ``log2(QV)`` keyed on the QV value, fidelity
        #: bases ``(1 - eps)`` keyed on the calibration snapshot.
        self._l2qv_for: Optional[float] = None
        self._l2qv = 0.0
        self._fid_bases_for: Optional[object] = None
        self._fid_bases = (0.0, 0.0, 0.0)
        self._refresh_aggregates()

    @classmethod
    def from_profile(cls, env: Environment, profile: DeviceProfile) -> "IBMQuantumDevice":
        """Alias constructor mirroring the framework documentation."""
        return cls(env, profile)

    # -- live calibration ----------------------------------------------------------
    @property
    def calibration(self) -> "CalibrationData":
        """The device's *current* calibration snapshot.

        Unlike the static :class:`~repro.hardware.backends.DeviceProfile`,
        this may change mid-run (calibration drift); assigning a new snapshot
        invalidates the cached error aggregates so the error score and the
        fidelity model always see fresh values.
        """
        return self._calibration

    @calibration.setter
    def calibration(self, snapshot: "CalibrationData") -> None:
        if snapshot.num_qubits != self.num_qubits:
            raise ValueError(
                f"calibration covers {snapshot.num_qubits} qubits but "
                f"{self.name} has {self.num_qubits}"
            )
        self._calibration = snapshot

    def _refresh_aggregates(self) -> None:
        calibration = self._calibration
        (
            self._avg_readout_error,
            self._avg_single_qubit_error,
            self._avg_two_qubit_error,
        ) = calibration.average_error_rates()
        self._aggregates_for = calibration

    @property
    def avg_readout_error(self) -> float:
        """Average readout error of the current calibration."""
        if self._aggregates_for is not self._calibration:
            self._refresh_aggregates()
        return self._avg_readout_error

    @property
    def avg_single_qubit_error(self) -> float:
        """Average single-qubit gate error of the current calibration."""
        if self._aggregates_for is not self._calibration:
            self._refresh_aggregates()
        return self._avg_single_qubit_error

    @property
    def avg_two_qubit_error(self) -> float:
        """Average two-qubit gate error of the current calibration."""
        if self._aggregates_for is not self._calibration:
            self._refresh_aggregates()
        return self._avg_two_qubit_error

    def error_score(self, alpha: float = 0.5, theta: float = 0.3, gamma: float = 0.2) -> float:
        """Calibration-derived error score ``E_i`` (Eq. 2)."""
        return error_score_from_averages(
            self.avg_readout_error,
            self.avg_single_qubit_error,
            self.avg_two_qubit_error,
            alpha=alpha,
            theta=theta,
            gamma=gamma,
        )

    # -- execution ---------------------------------------------------------------
    def calculate_process_time(self, circuit: CircuitSpec) -> float:
        """Processing time ``T_i`` of a sub-job on this device (§4).

        Follows the problem-definition expression ``M·K·s·log2(QV)/(K_i·60)``
        (the CLOPS model of Eq. 3 scaled by 1/60).
        """
        return processing_time_minutes(
            shots=circuit.num_shots,
            clops=self.clops,
            quantum_volume=self.quantum_volume,
        )

    def compute_fidelity_breakdown(
        self, fragment: CircuitSpec, num_devices: int, total_qubits: Optional[int] = None
    ) -> FidelityBreakdown:
        """Analytic fidelity of one fragment executed on this device (Eqs. 4-7).

        Parameters
        ----------
        fragment:
            The circuit fragment assigned to this device.
        num_devices:
            Total number of devices the parent job is split over (``N_devices``
            in Eq. 6).
        total_qubits:
            Total qubit count of the parent job (``N_qubits`` in Eq. 6).
            Defaults to ``fragment.num_qubits * num_devices`` when not given.
        """
        if total_qubits is None:
            total_qubits = fragment.num_qubits * num_devices
        return FidelityBreakdown(
            device_name=self.name,
            qubits_allocated=fragment.num_qubits,
            single_qubit=single_qubit_fidelity(self.avg_single_qubit_error, fragment.depth),
            two_qubit=two_qubit_fidelity(self.avg_two_qubit_error, fragment.num_two_qubit_gates),
            readout=readout_fidelity(self.avg_readout_error, total_qubits, num_devices),
        )

    # -- fast-path kernels -------------------------------------------------------
    def _log2_qv(self) -> float:
        """Cached ``log2(quantum_volume)`` (recomputed if QV is reassigned)."""
        if self._l2qv_for != self.quantum_volume:
            self._l2qv = log2_quantum_volume(self.quantum_volume)
            self._l2qv_for = self.quantum_volume
        return self._l2qv

    def _fidelity_bases(self) -> tuple:
        """Cached ``(1 - eps)`` bases of the three fidelity kernels.

        Keyed on the calibration snapshot like the ``avg_*_error`` caches, so
        calibration drift invalidates them the same way.
        """
        if self._fid_bases_for is not self._calibration:
            if self._aggregates_for is not self._calibration:
                self._refresh_aggregates()
            self._fid_bases = (
                1.0 - self._avg_single_qubit_error,
                1.0 - self._avg_two_qubit_error,
                1.0 - self._avg_readout_error,
            )
            self._fid_bases_for = self._calibration
        return self._fid_bases

    def scalar_process_time(self, shots: int) -> float:
        """:meth:`calculate_process_time` from a raw shot count.

        Lets the flat dispatcher compute durations without materialising a
        :class:`CircuitSpec` per fragment.  Bit-identical to
        :func:`~repro.metrics.timing.processing_time_minutes`: the same IEEE
        operations in the same order, with ``M*K`` and ``log2(QV)`` hoisted
        out (both exact values, not approximations).
        """
        if shots <= 0:
            raise ValueError("shots must be positive")
        return (_CLOPS_MK * shots) * self._log2_qv() / self.clops / 60.0

    def scalar_fidelity_breakdown(
        self,
        qubits: int,
        depth: int,
        two_qubit_gates: int,
        total_qubits: int,
        num_devices: int,
    ) -> FidelityBreakdown:
        """:meth:`compute_fidelity_breakdown` from raw fragment columns.

        Bit-identical to the kernel functions in
        :mod:`repro.metrics.fidelity`; range validation is skipped because
        the inputs come from validated circuits and planned allocations.
        """
        single_base, two_base, readout_base = self._fidelity_bases()
        return FidelityBreakdown(
            device_name=self.name,
            qubits_allocated=qubits,
            single_qubit=single_base ** depth,
            two_qubit=two_base ** math.sqrt(two_qubit_gates),
            readout=readout_base ** math.sqrt(total_qubits / num_devices),
        )

    def batch_process_times(self, shots) -> "np.ndarray":
        """Vectorised :meth:`calculate_process_time` over an array of shot counts.

        Bit-identical to the scalar path: the same chain of IEEE operations in
        the same order (``M*K*s`` stays exact in int64, then one float multiply
        and two divides), so each element equals
        ``processing_time_minutes(s, ...)`` exactly.
        """
        shots = np.asarray(shots, dtype=np.int64)
        if shots.size and int(shots.min()) <= 0:
            raise ValueError("shots must be positive")
        return (_CLOPS_MK * shots) * self._log2_qv() / self.clops / 60.0

    def batch_fidelity_breakdowns(
        self,
        qubits,
        depths,
        two_qubit_gates,
        total_qubits,
        num_devices,
    ) -> list:
        """Vectorised :meth:`compute_fidelity_breakdown` over parallel columns.

        NumPy handles the exactly-rounded steps (int conversion, division,
        ``sqrt``); the final powers run through Python's ``**`` elementwise
        because NumPy's SIMD ``pow`` is *not* bit-identical to C ``pow``.
        The result therefore matches the scalar kernels exactly.  Inputs are
        assumed valid (they come from planned allocations of validated
        circuits).
        """
        single_base, two_base, readout_base = self._fidelity_bases()
        two_exponents = np.sqrt(np.asarray(two_qubit_gates, dtype=np.float64))
        readout_exponents = np.sqrt(
            np.asarray(total_qubits, dtype=np.float64)
            / np.asarray(num_devices, dtype=np.float64)
        )
        name = self.name
        return [
            FidelityBreakdown(
                device_name=name,
                qubits_allocated=int(q),
                single_qubit=single_base ** int(d),
                two_qubit=two_base ** float(t),
                readout=readout_base ** float(r),
            )
            for q, d, t, r in zip(qubits, depths, two_exponents, readout_exponents)
        ]

    def execute(
        self,
        fragment: CircuitSpec,
        num_devices: int = 1,
        total_qubits: Optional[int] = None,
        checkpoint: bool = False,
    ) -> Generator[object, object, SubJobResult]:
        """DES process executing one circuit fragment on this device.

        The caller must already hold the fragment's qubits (reserved through
        :meth:`request_qubits`).  Yields a timeout for the processing time and
        returns a :class:`SubJobResult` with the fidelity breakdown.

        If the device is offline when execution starts, or goes offline with
        ``kill_running`` mid-execution, the result comes back ``aborted`` and
        the broker requeues the owning job.  With ``checkpoint`` the aborted
        result also reports the shots completed before the kill — the
        elapsed fraction of the CLOPS-model duration, floored, and capped at
        ``num_shots - 1`` so a resume always has at least one shot left to
        re-execute (the in-flight shot's results are never persisted) —
        along with their fidelity breakdown, so the broker can resume the
        job from where it died instead of re-executing everything.
        """
        if not self.online:
            self.aborted_subjobs += 1
            return SubJobResult(
                device_name=self.name,
                qubits_allocated=fragment.num_qubits,
                processing_time=0.0,
                fidelity_breakdown=None,
                aborted=True,
            )
        duration = self.calculate_process_time(fragment)
        start = self.env.now
        process = self.env.active_process
        if process is not None:
            self._running.add(process)
        try:
            yield self.env.timeout(duration)
        except Interrupt:
            elapsed = self.env.now - start
            self.busy_time += elapsed
            self.qubit_seconds += fragment.num_qubits * elapsed
            self.aborted_subjobs += 1
            completed = 0
            breakdown = None
            if checkpoint and duration > 0:
                completed = int(fragment.num_shots * (elapsed / duration))
                completed = max(0, min(completed, fragment.num_shots - 1))
                if completed > 0:
                    breakdown = self.compute_fidelity_breakdown(
                        fragment, num_devices, total_qubits
                    )
            return SubJobResult(
                device_name=self.name,
                qubits_allocated=fragment.num_qubits,
                processing_time=elapsed,
                fidelity_breakdown=breakdown,
                aborted=True,
                completed_shots=completed,
            )
        finally:
            if process is not None:
                self._running.discard(process)
        self.completed_subjobs += 1
        self.busy_time += self.env.now - start
        self.qubit_seconds += fragment.num_qubits * (self.env.now - start)
        breakdown = self.compute_fidelity_breakdown(fragment, num_devices, total_qubits)
        return SubJobResult(
            device_name=self.name,
            qubits_allocated=fragment.num_qubits,
            processing_time=duration,
            fidelity_breakdown=breakdown,
            completed_shots=fragment.num_shots,
        )
