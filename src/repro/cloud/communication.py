"""Inter-device classical communication model (paper §6.4-§6.5).

When a job is split over ``k`` devices, the devices must exchange
intermediate measurement outcomes over real-time classical channels:

* every inter-device link degrades the final fidelity by a factor ``phi``
  (Eq. 8, default 0.95),
* the classical transfer is a *blocking* delay proportional to the number of
  qubits communicated (Eq. 9, default 0.02 s per qubit).

The accounting of "qubits communicated" is configurable; the default counts
the full job width once per inter-device link (all fragments broadcast their
measurement outcomes across each of the ``k - 1`` links), which is the
per-link model implied by the paper's Table 2 numbers.  The alternative
``"non_primary"`` mode counts only the qubits residing away from the largest
fragment and is explored in the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.metrics.fidelity import DEFAULT_COMMUNICATION_PENALTY, communication_penalty
from repro.metrics.timing import DEFAULT_COMM_LATENCY_PER_QUBIT, communication_time

__all__ = ["ClassicalCommunicationModel"]


@dataclass(frozen=True)
class ClassicalCommunicationModel:
    """Parameters of the classical inter-device communication model.

    Attributes
    ----------
    latency_per_qubit:
        Per-qubit classical communication latency λ in seconds (Eq. 9).
    fidelity_penalty:
        Per-link fidelity penalty φ (Eq. 8).
    accounting:
        ``"per_link"`` (default): each of the ``k-1`` links transfers the full
        job width; ``"non_primary"``: only qubits outside the largest fragment
        are transferred (once).
    """

    latency_per_qubit: float = DEFAULT_COMM_LATENCY_PER_QUBIT
    fidelity_penalty: float = DEFAULT_COMMUNICATION_PENALTY
    accounting: str = "per_link"

    _ACCOUNTING_MODES = ("per_link", "non_primary")

    def __post_init__(self) -> None:
        if self.latency_per_qubit < 0:
            raise ValueError("latency_per_qubit must be non-negative")
        if not 0.0 <= self.fidelity_penalty <= 1.0:
            raise ValueError("fidelity_penalty must be in [0, 1]")
        if self.accounting not in self._ACCOUNTING_MODES:
            raise ValueError(
                f"accounting must be one of {self._ACCOUNTING_MODES}, got {self.accounting!r}"
            )

    # -- qubit accounting -----------------------------------------------------
    def qubits_communicated(self, allocation: Sequence[int]) -> int:
        """Number of qubits whose outcomes must be exchanged classically."""
        allocation = [int(a) for a in allocation if int(a) > 0]
        if len(allocation) <= 1:
            return 0
        total = sum(allocation)
        if self.accounting == "per_link":
            return (len(allocation) - 1) * total
        # "non_primary": everything that is not on the largest fragment moves once.
        return total - max(allocation)

    # -- derived quantities -----------------------------------------------------
    def communication_delay(self, allocation: Sequence[int]) -> float:
        """Blocking classical-communication delay for the given allocation (Eq. 9)."""
        return communication_time(self.qubits_communicated(allocation), self.latency_per_qubit)

    def penalty(self, num_devices: int) -> float:
        """Fidelity penalty factor ``phi^(k-1)`` (Eq. 8)."""
        return communication_penalty(num_devices, self.fidelity_penalty)
