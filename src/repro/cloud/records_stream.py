"""Constant-memory record keeping for million-job runs.

The default :class:`~repro.cloud.records.JobRecordsManager` keeps every
:class:`~repro.cloud.records.JobEvent` and :class:`~repro.cloud.records.JobRecord`
in RAM — the right default for thousand-job experiments, where tests and
analysis want the full streams, but linear memory at a million jobs.

:class:`StreamingRecordsManager` is the opt-in O(1)-memory alternative: it
exposes the exact same logging interface the broker drives, but folds every
completion into streaming aggregates (counts, running means, P² percentile
sketches — :mod:`repro.metrics.quantiles`) instead of storing it, and can
additionally append each record to a chunked JSONL file so nothing is lost
when a post-hoc analysis does want per-job data.

The exact in-memory path stays the default everywhere; this manager is
selected explicitly (the scale benchmark, ``fast_path`` bulk runs).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.cloud.records import JobEvent, JobRecord, JobRecordsManager
from repro.metrics.quantiles import P2Quantile

__all__ = ["JsonlRecordWriter", "StreamingRecordsManager"]


class JsonlRecordWriter:
    """Chunked JSONL exporter: buffers record rows, flushes every *chunk_size*.

    One JSON object per line (the :meth:`JobRecord.as_dict` schema), so the
    output streams into pandas / ``jq`` without ever holding the full run in
    memory on either side.  Usable as a context manager.
    """

    def __init__(self, path: str, chunk_size: int = 1000) -> None:
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.path = str(path)
        self.chunk_size = int(chunk_size)
        self.rows_written = 0
        self._buffer: List[str] = []
        self._fh = open(self.path, "w")

    def write(self, record: JobRecord) -> None:
        """Buffer one record, flushing when the chunk fills."""
        self._buffer.append(json.dumps(record.as_dict()))
        if len(self._buffer) >= self.chunk_size:
            self.flush()

    def flush(self) -> None:
        """Write any buffered rows to disk."""
        if self._buffer:
            self._fh.write("\n".join(self._buffer) + "\n")
            self.rows_written += len(self._buffer)
            self._buffer.clear()

    def close(self) -> None:
        """Flush and close the underlying file."""
        if not self._fh.closed:
            self.flush()
            self._fh.close()

    def __enter__(self) -> "JsonlRecordWriter":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


#: Percentiles tracked by every latency sketch.
_TRACKED = (0.5, 0.95, 0.99)


def _sketch_set() -> Dict[float, P2Quantile]:
    return {p: P2Quantile(p) for p in _TRACKED}


class StreamingRecordsManager(JobRecordsManager):
    """Drop-in records manager that aggregates instead of storing.

    Parameters
    ----------
    export_path:
        Optional JSONL path; every completed record is appended through a
        :class:`JsonlRecordWriter` (call :meth:`close` — or use the manager
        as a context manager — to flush the final chunk).
    chunk_size:
        Rows buffered between JSONL flushes.

    Memory is O(tenants + event kinds): per-kind event counters, a global
    and per-tenant latency sketch set, and running fidelity/shape sums.
    ``completed_records`` and ``events`` are intentionally empty — callers
    that need them want the exact default manager.
    """

    #: Event details are discarded (only counts are kept) — loggers may
    #: skip building them.
    KEEPS_EVENT_DETAIL = False

    def __init__(self, export_path: Optional[str] = None, chunk_size: int = 1000) -> None:
        super().__init__()
        self.completed = 0
        #: Per-event-kind counters (e.g. ``{"arrival": 100, "finish": 98}``).
        self.event_counts: Dict[str, int] = {}
        self._event_set = frozenset(self.EVENTS)
        self._fidelity_sum = 0.0
        self._wait = _sketch_set()
        self._turnaround = _sketch_set()
        #: Bound ``add`` methods of the global sketches — ``add_record`` runs
        #: once per completed job, so skip the dict iteration there.
        self._wait_adds = tuple(s.add for s in self._wait.values())
        self._turnaround_adds = tuple(s.add for s in self._turnaround.values())
        self._tenant_wait: Dict[str, Dict[float, P2Quantile]] = {}
        self._tenant_turnaround: Dict[str, Dict[float, P2Quantile]] = {}
        self._writer = (
            JsonlRecordWriter(export_path, chunk_size=chunk_size) if export_path else None
        )

    # -- logging (same validation, no storage) ------------------------------
    def log_event(self, job_id: int, event: str, time: float, detail: Optional[str] = None) -> None:
        if event not in self._event_set:
            raise ValueError(f"unknown event {event!r}; expected one of {self.EVENTS}")
        counts = self.event_counts
        counts[event] = counts.get(event, 0) + 1

    def log_arrival_block(self, job_ids, start: int, stop: int, time: float) -> None:
        counts = self.event_counts
        counts["arrival"] = counts.get("arrival", 0) + (stop - start)

    def add_record(self, record: JobRecord) -> None:
        self.completed += 1
        self._fidelity_sum += record.fidelity
        # Inline ``record.wait_time`` / ``record.turnaround_time`` (same
        # arithmetic as the properties): this runs once per completed job
        # and the property chain costs more than the sketch updates at a
        # million jobs.
        arrival = record.arrival_time
        turnaround = record.finish_time - arrival
        service = record.service_time
        if record.retries == 0 or service is None:
            first = record.first_start_time
            wait = (record.start_time if first is None else first) - arrival
        else:
            wait = turnaround - service
        for add in self._wait_adds:
            add(wait)
        for add in self._turnaround_adds:
            add(turnaround)
        if record.tenant is not None:
            tw = self._tenant_wait.get(record.tenant)
            if tw is None:
                tw = self._tenant_wait[record.tenant] = _sketch_set()
                self._tenant_turnaround[record.tenant] = _sketch_set()
            for sketch in tw.values():
                sketch.add(wait)
            for sketch in self._tenant_turnaround[record.tenant].values():
                sketch.add(turnaround)
        if self._writer is not None:
            self._writer.write(record)

    # -- queries -------------------------------------------------------------
    @property
    def events(self) -> List[JobEvent]:
        """Always empty: events are counted, not stored."""
        return []

    def events_for(self, job_id: int) -> List[JobEvent]:
        return []

    @property
    def completed_records(self) -> List[JobRecord]:
        """Always empty: records are aggregated (and optionally exported)."""
        return []

    def record_for(self, job_id: int) -> Optional[JobRecord]:
        return None

    def __len__(self) -> int:
        return self.completed

    @property
    def mean_fidelity(self) -> Optional[float]:
        """Running mean fidelity over completed jobs."""
        if not self.completed:
            return None
        return self._fidelity_sum / self.completed

    def tenant_completed(self, tenant: str) -> int:
        """Completed-job count of one tenant (from its wait sketch)."""
        sketches = self._tenant_wait.get(tenant)
        if not sketches:
            return 0
        return next(iter(sketches.values())).count

    def latency_percentiles(self, tenant: Optional[str] = None) -> Dict[str, Optional[float]]:
        """P² estimates of wait/turnaround p50/p95/p99 (optionally one tenant)."""
        wait = self._wait if tenant is None else self._tenant_wait.get(tenant, {})
        turnaround = (
            self._turnaround if tenant is None else self._tenant_turnaround.get(tenant, {})
        )
        out: Dict[str, Optional[float]] = {}
        for label, sketches in (("wait", wait), ("turnaround", turnaround)):
            for p in _TRACKED:
                sketch = sketches.get(p)
                out[f"{label}_p{int(p * 100)}"] = sketch.value if sketch is not None else None
        return out

    def aggregates(self) -> Dict[str, Any]:
        """JSON-safe summary of everything the stream accumulated."""
        payload: Dict[str, Any] = {
            "completed": self.completed,
            "mean_fidelity": self.mean_fidelity,
            "event_counts": dict(sorted(self.event_counts.items())),
        }
        payload.update(self.latency_percentiles())
        if self._writer is not None:
            payload["export_path"] = self._writer.path
            payload["rows_written"] = self._writer.rows_written + len(self._writer._buffer)
        return payload

    # -- export ---------------------------------------------------------------
    def close(self) -> None:
        """Flush and close the JSONL exporter (no-op without one)."""
        if self._writer is not None:
            self._writer.close()

    def __enter__(self) -> "StreamingRecordsManager":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def to_csv(self, path: str) -> None:  # pragma: no cover - explicit guard
        raise RuntimeError(
            "StreamingRecordsManager does not retain records; use export_path= "
            "for a chunked JSONL export instead"
        )
