"""Flat-event fast path for bulk workloads (million-job simulations).

The legacy pipeline runs one generator-based DES process per job
(:class:`~repro.cloud.broker.Broker._handle_job`), which is wonderfully
composable but costs ~15 heap events and several generator resumptions per
completed job.  At a million jobs that overhead dominates the run.

This module provides the opt-in replacement used when ``fast_path`` is
enabled on :class:`~repro.cloud.environment.QCloudSimEnv`:

* :class:`JobTable` — the workload as NumPy column arrays (job id, arrival
  time, qubits, depth, shots, gate counts) instead of a list of
  :class:`~repro.cloud.qjob.QJob` objects.  Built either from existing jobs
  (:meth:`JobTable.from_jobs` — byte-identity mode) or generated directly in
  bulk (:meth:`JobTable.synthetic` — streaming mode, which never
  materialises a million ``QJob``/``CircuitSpec`` objects).
* :class:`FlatDispatcher` — a flat pending-table dispatcher that replaces
  both the per-job broker processes and the :class:`~repro.cloud
  .job_generator.JobGenerator`: arrivals are fed straight from the table,
  planning/reservation runs in a single pump loop, and each sub-job costs
  exactly one heap event (plus one communication event for split jobs).
* :func:`flat_path_eligible` — the guard deciding when the flat dispatcher
  may replace the legacy machinery.

Byte identity
-------------
For every eligible configuration the flat dispatcher reproduces the legacy
record and event streams *bit for bit* (tests/cloud/test_fastpath_identity.py
sweeps policies × scenario presets × arrival processes).  The equivalence
rests on three invariants of the legacy engine:

1. Arrival markers are pre-scheduled at ``t=0`` with small sequence numbers,
   so at any timestamp arrivals are processed before every runtime event of
   the same priority.  The dispatcher mirrors this by scheduling its feed
   events with sequence numbers from a reserved negative range.
2. A waiting head-of-queue job re-plans exactly once per timestamp that
   released capacity (the ``capacity_released`` signal is swapped on first
   use), after every same-timestamp completion has released its qubits.
   The dispatcher's pump event runs at priority ``PUMP`` (after every
   NORMAL event of the timestamp) and re-plans the head at most once.
3. Reservation (``Container.get``) and release mutate the qubit level
   synchronously at event creation, so direct level arithmetic — without
   creating the events — leaves identical fleet states behind.

One corner intentionally diverges: a job whose arrival coincides *exactly*
(same float) with another job's completion may observe post-release fleet
state where the legacy engine planned it mid-completion.  Continuous
arrival processes hit this with probability zero; batch arrivals (all at
``t=0``) cannot collide with completions at all.

Ineligible configurations (tenant mixes, scenarios with world dynamics,
custom brokers) silently keep the legacy path, which remains the default.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from itertools import count
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import CircuitSpec
from repro.cloud.qjob import QJob, QJobStatus
from repro.cloud.records import JobRecord
from repro.des.events import NORMAL, URGENT, Event
from repro.metrics.fidelity import final_fidelity

__all__ = ["JobTable", "FlatDispatcher", "flat_path_eligible", "PUMP"]

#: Scheduling priority of the dispatcher's pump event: after every NORMAL
#: event of the timestamp (completions release qubits at NORMAL), mirroring
#: the legacy one-replan-after-all-releases wake-up semantics.
PUMP = 2

#: Feed events draw their heap sequence numbers from this reserved negative
#: range so arrivals sort before every runtime event of the same (time,
#: priority) — exactly like the legacy generator's pre-scheduled markers.
_FEED_SEQ_START = -(1 << 62)

#: Below this many fragments a pump dispatch uses the scalar per-fragment
#: duration/fidelity path; at or above it, per-device NumPy batches.
#: Both paths are bit-identical (see ``IBMQuantumDevice.batch_*``).
_VECTOR_THRESHOLD = 4


class JobTable:
    """A workload as sorted column arrays.

    Rows are sorted by ``(arrival_time, priority, job_id)`` — the exact
    submission order of :class:`~repro.cloud.job_generator.JobGenerator`.

    Parameters
    ----------
    job_id, arrival, qubits, depth, shots, two_qubit_gates:
        Per-job columns (any array-likes of equal length).
    single_qubit_gates:
        Optional column (defaults to ``max(qubits * depth - 2 * t2, 0)``,
        matching :func:`repro.circuits.generators.random_circuit_spec`).
    priority:
        Optional priority column (default all zeros).
    jobs:
        Optional :class:`QJob` references in the *same sorted order* —
        present when the table was built from real jobs
        (:meth:`from_jobs`), absent in streaming mode.
    name_prefix:
        Circuit-name prefix used when streaming mode must materialise a
        :class:`CircuitSpec` (multi-device fragments, failure records).
    """

    __slots__ = (
        "job_id",
        "arrival",
        "qubits",
        "depth",
        "shots",
        "two_qubit_gates",
        "single_qubit_gates",
        "priority",
        "jobs",
        "name_prefix",
    )

    def __init__(
        self,
        job_id: Any,
        arrival: Any,
        qubits: Any,
        depth: Any,
        shots: Any,
        two_qubit_gates: Any,
        single_qubit_gates: Optional[Any] = None,
        priority: Optional[Any] = None,
        jobs: Optional[List[QJob]] = None,
        name_prefix: str = "job",
    ) -> None:
        job_id = np.asarray(job_id, dtype=np.int64)
        arrival = np.asarray(arrival, dtype=np.float64)
        qubits = np.asarray(qubits, dtype=np.int64)
        depth = np.asarray(depth, dtype=np.int64)
        shots = np.asarray(shots, dtype=np.int64)
        two_qubit_gates = np.asarray(two_qubit_gates, dtype=np.int64)
        n = len(job_id)
        for name, column in (
            ("arrival", arrival),
            ("qubits", qubits),
            ("depth", depth),
            ("shots", shots),
            ("two_qubit_gates", two_qubit_gates),
        ):
            if len(column) != n:
                raise ValueError(f"column {name!r} has length {len(column)}, expected {n}")
        if single_qubit_gates is None:
            single_qubit_gates = np.maximum(qubits * depth - 2 * two_qubit_gates, 0)
        else:
            single_qubit_gates = np.asarray(single_qubit_gates, dtype=np.int64)
        if priority is None:
            priority = np.zeros(n, dtype=np.int64)
        else:
            priority = np.asarray(priority, dtype=np.int64)
        if np.any(arrival < 0):
            raise ValueError("arrival times must be non-negative")

        order = np.lexsort((job_id, priority, arrival))
        self.job_id = job_id[order]
        self.arrival = arrival[order]
        self.qubits = qubits[order]
        self.depth = depth[order]
        self.shots = shots[order]
        self.two_qubit_gates = two_qubit_gates[order]
        self.single_qubit_gates = single_qubit_gates[order]
        self.priority = priority[order]
        self.jobs = [jobs[i] for i in order] if jobs is not None else None
        self.name_prefix = name_prefix

    def __len__(self) -> int:
        return len(self.job_id)

    @classmethod
    def from_jobs(cls, jobs: Sequence[QJob]) -> "JobTable":
        """Columnise existing jobs (keeps the ``QJob`` references — this is
        the byte-identity mode used when ``fast_path=True`` on a normal
        workload)."""
        jobs = list(jobs)
        return cls(
            job_id=[j.job_id for j in jobs],
            arrival=[j.arrival_time for j in jobs],
            qubits=[j.num_qubits for j in jobs],
            depth=[j.depth for j in jobs],
            shots=[j.num_shots for j in jobs],
            two_qubit_gates=[j.num_two_qubit_gates for j in jobs],
            single_qubit_gates=[j.circuit.num_single_qubit_gates for j in jobs],
            priority=[j.priority for j in jobs],
            jobs=jobs,
        )

    @classmethod
    def synthetic(
        cls,
        num_jobs: int,
        seed: Optional[int] = None,
        qubit_range: Tuple[int, int] = (130, 250),
        depth_range: Tuple[int, int] = (5, 20),
        shots_range: Tuple[int, int] = (10_000, 100_000),
        two_qubit_density: float = 0.30,
        arrival_times: Optional[Any] = None,
        name_prefix: str = "synthetic",
    ) -> "JobTable":
        """Vectorised bulk workload generation (streaming mode).

        Column values follow the same formulas as
        :func:`~repro.circuits.generators.random_circuit_spec` (inclusive
        uniform ranges, ``t2 = round(q * d * density)``), but are drawn as
        whole arrays — the RNG stream is consumed column-by-column instead
        of job-by-job, so the workload is *statistically* equivalent to the
        legacy generator's, not byte-identical to it.  No per-job Python
        objects are created.
        """
        if num_jobs <= 0:
            raise ValueError("num_jobs must be positive")
        rng = np.random.default_rng(seed)
        qubits = rng.integers(qubit_range[0], qubit_range[1] + 1, num_jobs)
        depth = rng.integers(depth_range[0], depth_range[1] + 1, num_jobs)
        shots = rng.integers(shots_range[0], shots_range[1] + 1, num_jobs)
        t2 = np.rint(qubits * depth * two_qubit_density).astype(np.int64)
        if arrival_times is None:
            arrival = np.zeros(num_jobs, dtype=np.float64)
        else:
            arrival = np.asarray(arrival_times, dtype=np.float64)
            if len(arrival) != num_jobs:
                raise ValueError(
                    f"arrival_times has length {len(arrival)}, expected {num_jobs}"
                )
        return cls(
            job_id=np.arange(num_jobs, dtype=np.int64),
            arrival=arrival,
            qubits=qubits,
            depth=depth,
            shots=shots,
            two_qubit_gates=t2,
            name_prefix=name_prefix,
        )

    # -- helpers used by the dispatcher ------------------------------------
    def arrival_groups(self) -> List[Tuple[float, int, int]]:
        """``(time, start_row, stop_row)`` per distinct arrival time."""
        return list(self.iter_arrival_groups())

    def iter_arrival_groups(self, _chunk: int = 1024) -> Iterator[Tuple[float, int, int]]:
        """Lazy :meth:`arrival_groups`: yields one group at a time.

        A million-job trace with (mostly) distinct arrival times has a
        million groups; materialising them as a tuple list costs ~150 bytes
        each, dwarfing the column arrays.  This generator processes the
        (nondecreasing — the constructor sorts by arrival) arrival column in
        fixed-size chunks, extending each chunk to the next group boundary
        so a run of equal timestamps never spans two chunks, and keeps only
        O(chunk)-sized temporaries alive.
        """
        arrival = self.arrival
        n = len(arrival)
        pos = 0
        while pos < n:
            hi = min(pos + _chunk, n)
            if hi < n:
                # Extend so the chunk ends exactly on a group boundary.
                hi = int(np.searchsorted(arrival, arrival[hi - 1], side="right"))
            seg = arrival[pos:hi]
            prev = 0
            for b in np.flatnonzero(seg[1:] != seg[:-1]).tolist():
                b += 1
                yield (float(seg[prev]), pos + prev, pos + b)
                prev = b
            yield (float(seg[prev]), pos + prev, hi)
            pos = hi

    def circuit_for(self, row: int) -> CircuitSpec:
        """Materialise the circuit of one row (streaming mode only needs
        this for multi-device fragments and failure bookkeeping)."""
        if self.jobs is not None:
            return self.jobs[row].circuit
        return CircuitSpec(
            num_qubits=int(self.qubits[row]),
            depth=int(self.depth[row]),
            num_shots=int(self.shots[row]),
            num_two_qubit_gates=int(self.two_qubit_gates[row]),
            num_single_qubit_gates=int(self.single_qubit_gates[row]),
            name=f"{self.name_prefix}_{int(self.job_id[row])}",
        )

    def job_for(self, row: int) -> QJob:
        """The :class:`QJob` of one row (materialised on demand in
        streaming mode)."""
        if self.jobs is not None:
            return self.jobs[row]
        return QJob(
            job_id=int(self.job_id[row]),
            circuit=self.circuit_for(row),
            arrival_time=float(self.arrival[row]),
            priority=int(self.priority[row]),
        )


class _RowView:
    """Lightweight job stand-in handed to policies in streaming mode.

    Policies read resource demands (``num_qubits`` foremost); this view
    serves them straight from the table columns without building a
    :class:`QJob`.  One instance is reused across plans.
    """

    __slots__ = ("_table", "_row")

    def __init__(self, table: JobTable) -> None:
        self._table = table
        self._row = 0

    @property
    def job_id(self) -> int:
        return int(self._table.job_id[self._row])

    @property
    def num_qubits(self) -> int:
        return int(self._table.qubits[self._row])

    @property
    def depth(self) -> int:
        return int(self._table.depth[self._row])

    @property
    def num_shots(self) -> int:
        return int(self._table.shots[self._row])

    @property
    def num_two_qubit_gates(self) -> int:
        return int(self._table.two_qubit_gates[self._row])

    @property
    def priority(self) -> int:
        return int(self._table.priority[self._row])

    @property
    def arrival_time(self) -> float:
        return float(self._table.arrival[self._row])

    @property
    def tenant(self) -> None:
        return None

    @property
    def circuit(self) -> CircuitSpec:
        return self._table.circuit_for(self._row)


class _FlatJob:
    """In-flight state of one dispatched job (replaces the legacy per-job
    generator frame)."""

    __slots__ = (
        "row",
        "start",
        "job_id",
        "qubits",
        "depth",
        "shots",
        "arrival",
        "device_names",
        "qubit_counts",
        "allocations",
        "durations",
        "breakdowns",
        "remaining",
        "comm_delay",
    )

    def __init__(
        self,
        row: int,
        start: float,
        plan: Any,
        job_id: int,
        qubits: int,
        depth: int,
        shots: int,
        arrival: float,
    ) -> None:
        self.row = row
        self.start = start
        #: Row scalars, cast from the table columns once at dispatch time.
        self.job_id = job_id
        self.qubits = qubits
        self.depth = depth
        self.shots = shots
        self.arrival = arrival
        allocations = plan.allocations
        self.allocations = allocations
        k = len(allocations)
        if k == 1:
            a0 = allocations[0]
            self.device_names = [a0.device.name]
            self.qubit_counts = [a0.num_qubits]
        else:
            self.device_names = plan.device_names
            self.qubit_counts = plan.qubit_counts
        #: Indexed by allocation position (filled by the launch pass).
        self.durations: List[float] = [0.0] * k
        self.breakdowns: List[Any] = [None] * k
        self.remaining = k
        self.comm_delay = 0.0


def flat_path_eligible(broker: Any, tenant_mix: Any, scenario: Any) -> bool:
    """Whether the flat dispatcher may replace the legacy engine.

    Eligible: the plain :class:`~repro.cloud.broker.Broker` (no tenant mix /
    serve layer, no custom subclass) in a world without runtime dynamics —
    no scenario at all, or a scenario that injects neither drift nor
    outages nor maintenance nor replayed events (traffic-only presets such
    as ``rush-hour`` qualify: they only shape arrivals).  Everything else
    keeps the legacy path, whose behaviour is the reference.
    """
    from repro.cloud.broker import Broker

    if type(broker) is not Broker:
        return False
    if tenant_mix is not None:
        return False
    if scenario is None:
        return True
    if scenario.is_replay:
        return False
    return not scenario.has_world_dynamics


class FlatDispatcher:
    """Flat pending-table dispatcher: the fast-path replacement for the
    per-job broker processes plus the :class:`JobGenerator`.

    The dispatcher drives the same policy, devices, records manager and
    communication model as the legacy broker — only the *event plumbing*
    changes:

    * arrivals: one pre-triggered feed event per distinct arrival time
      (negative sequence numbers — see the module docstring), appending row
      indices to a deque,
    * planning: a pump event at priority :data:`PUMP` that plans and
      dispatches pending heads FIFO until the head cannot be placed,
    * execution: one completion event per sub-job, one optional
      communication event per split job; qubit reservation/release is
      direct level arithmetic.

    The broker instance is retained for its configuration
    (``max_plan_attempts``) and its ``failed_jobs`` list, so results read
    the same regardless of which engine ran.
    """

    def __init__(
        self,
        env: Any,
        broker: Any,
        table: JobTable,
        records: Optional[Any] = None,
    ) -> None:
        self.env = env
        self.broker = broker
        self.cloud = broker.cloud
        self.policy = broker.policy
        self.records = records if records is not None else broker.records
        self.table = table
        #: Row indices waiting for placement, FIFO.
        self.pending: deque = deque()
        #: Jobs completed by this dispatcher.
        self.completed_count = 0
        #: Jobs submitted (fed) so far.
        self.submitted_count = 0
        #: Legacy-compat attribute (the flat path runs no dispatch process).
        self.process = None
        self._row_view = _RowView(table)
        #: Lazy arrival-group stream with a one-group prefetch (the next
        #: feed's timestamp must be known to schedule it).
        self._group_iter = table.iter_arrival_groups()
        self._next_arrival = next(self._group_iter, None)
        self._feed_seq = count(_FEED_SEQ_START)
        self._head_attempts = 0
        self._waiting = False
        self._pump_scheduled = False
        self._started = False
        # Hot-path bindings, hoisted once: the columns, the capacity (the
        # fleet is fixed in every fast-path-eligible world), and the two
        # reusable tick events.  At most one feed and one pump can sit in
        # the heap at any moment, so a single pre-triggered event object per
        # kind (with a persistent callback list re-attached before each
        # push) replaces an allocation per arrival group.
        self._job_ids = table.job_id
        self._qubits_col = table.qubits
        self._total_capacity = self.cloud.total_qubits
        self._log_event = self.records.log_event
        self._plan = self.policy.plan
        # Eligible worlds have no outages/maintenance/drift (see
        # :func:`flat_path_eligible`), so the online fleet is the same list
        # for the whole run — compute it once instead of per pump.
        self._online_devices = self.cloud.online_devices
        # Streaming managers discard event detail strings; skip formatting
        # them (device lists, fidelity reprs) when nobody stores them.
        self._keep_detail = getattr(self.records, "KEEPS_EVENT_DETAIL", True)
        self._log_arrival_block = self.records.log_arrival_block
        # When no job exceeds the fleet's capacity (one vectorised check),
        # the per-row can_ever_fit guard in _feed is dead code.
        self._all_fit = len(table) == 0 or int(table.qubits.max()) <= self._total_capacity
        self._feed_tick = Event(env)
        self._feed_tick._value = None
        self._feed_callbacks = [self._feed]
        self._pump_tick = Event(env)
        self._pump_tick._value = None
        self._pump_callbacks = [self._pump]
        # Completion events for unsplit jobs are pooled: each carries its
        # job state in ``_value`` and shares one immutable callback list
        # (the kernel only iterates it, then detaches it from the event),
        # so a dispatched event returns to the pool instead of the garbage
        # collector.  Pool size tracks the number of concurrently running
        # jobs, not the workload size.
        self._done_pool: List[Event] = []
        self._single_done_callbacks = [self._single_done_ev]

    def __len__(self) -> int:
        return len(self.table)

    @property
    def jobs(self) -> List[QJob]:
        """The workload as jobs (materialised on demand in streaming mode)."""
        if self.table.jobs is not None:
            return self.table.jobs
        return [self.table.job_for(row) for row in range(len(self.table))]

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Install the first arrival feed (mirrors ``JobGenerator.start``)."""
        if self._started:
            raise RuntimeError("FlatDispatcher already started")
        self._started = True
        self._schedule_next_feed()

    def _schedule_next_feed(self) -> None:
        group = self._next_arrival
        if group is None:
            return
        time = group[0]
        env = self.env
        tick = self._feed_tick
        tick.callbacks = self._feed_callbacks
        if time <= env._now:
            # Past/immediate arrivals: the legacy generator logs these inside
            # its URGENT dispatch-process initialisation, before any NORMAL
            # event of the timestamp.
            heappush(env._queue, (env._now, URGENT, next(self._feed_seq), tick))
        else:
            heappush(env._queue, (time, NORMAL, next(self._feed_seq), tick))

    # -- arrivals ------------------------------------------------------------
    def _feed(self, event: Event) -> None:
        _, start, stop = self._next_arrival
        self._next_arrival = next(self._group_iter, None)
        now = self.env._now
        self._log_arrival_block(self._job_ids, start, stop, now)
        pending = self.pending
        jobs = self.table.jobs
        if self._all_fit:
            if jobs is not None:
                for row in range(start, stop):
                    jobs[row].status = QJobStatus.QUEUED
            pending.extend(range(start, stop))
        else:
            table = self.table
            qubits = self._qubits_col
            total_capacity = self._total_capacity
            for row in range(start, stop):
                if qubits[row] > total_capacity:
                    # Mirrors Broker._handle_job's can_ever_fit guard.
                    job = table.job_for(row)
                    job.status = QJobStatus.FAILED
                    self.broker.failed_jobs.append(job)
                    self.records.log_failure(job.job_id, now, "exceeds total cloud capacity")
                else:
                    if jobs is not None:
                        jobs[row].status = QJobStatus.QUEUED
                    pending.append(row)
        self.submitted_count += stop - start
        self._schedule_next_feed()
        self._request_pump(signal=False)

    # -- pump ----------------------------------------------------------------
    def _request_pump(self, signal: bool) -> None:
        """Ask for (at most) one pump at the current timestamp.

        ``signal=True`` marks that capacity was released, unblocking a head
        that already planned and failed at an earlier timestamp — the exact
        analogue of the legacy ``capacity_released`` wake-up.
        """
        if signal:
            self._waiting = False
            if not self.pending:
                # Nothing to plan: the pump would be a no-op, and the legacy
                # engine's capacity signal with no admission waiters is one
                # too.  Saves one heap event per completion in uncongested
                # runs.
                return
        if self._pump_scheduled:
            return
        env = self.env
        queue = env._queue
        if not queue or queue[0][0] != env._now:
            # Nothing else is scheduled at this timestamp (O(1) heap peek),
            # so running the pump right now is indistinguishable from
            # running it as a PUMP-priority event — there is no event it
            # could be ordered against.  Saves one heap event per job on
            # workloads with distinct arrival/completion times.
            self._pump(None)
            return
        self._pump_scheduled = True
        tick = self._pump_tick
        tick.callbacks = self._pump_callbacks
        heappush(queue, (env._now, PUMP, next(env._eid), tick))

    def _pump(self, event: Event) -> None:
        self._pump_scheduled = False
        if self._waiting:
            return
        pending = self.pending
        if not pending:
            return
        env = self.env
        policy_plan = self._plan
        broker = self.broker
        table = self.table
        jobs = table.jobs
        view = self._row_view
        online_devices = self._online_devices
        dispatched: List[Tuple[_FlatJob, List[Tuple[Any, int, int, int, int]]]] = []
        fragment_count = 0
        while pending:
            row = pending[0]
            if jobs is not None:
                job_view: Any = jobs[row]
            else:
                view._row = row
                job_view = view
            plan = policy_plan(job_view, online_devices)
            if plan is None:
                self._head_attempts += 1
                if self._head_attempts >= broker.max_plan_attempts:
                    job = table.job_for(row)
                    job.status = QJobStatus.FAILED
                    broker.failed_jobs.append(job)
                    self.records.log_failure(job.job_id, env._now, "no feasible allocation")
                    pending.popleft()
                    self._head_attempts = 0
                    continue
                self._waiting = True
                break
            num_qubits = job_view.num_qubits
            # One fused pass over the allocations replaces the separate
            # ``total_qubits``/``is_feasible_now`` property sweeps.
            total = 0
            feasible = True
            for a in plan.allocations:
                total += a.num_qubits
                if a.device.free_qubits < a.num_qubits:
                    feasible = False
            if total != num_qubits:
                raise RuntimeError(
                    f"policy {self.policy.name!r} allocated {total} qubits "
                    f"for a job needing {num_qubits}"
                )
            if not feasible:
                raise RuntimeError(
                    f"policy {self.policy.name!r} returned an infeasible plan for job "
                    f"{job_view.job_id}"
                )
            pending.popleft()
            self._head_attempts = 0
            state = _FlatJob(
                row,
                env._now,
                plan,
                job_id=job_view.job_id,
                qubits=num_qubits,
                depth=job_view.depth,
                shots=job_view.num_shots,
                arrival=job_view.arrival_time,
            )
            fragments = self._reserve_and_log(state, plan)
            dispatched.append((state, fragments))
            fragment_count += len(fragments)
        if dispatched:
            self._launch(dispatched, fragment_count)

    def _reserve_and_log(
        self, state: _FlatJob, plan: Any
    ) -> List[Tuple[Any, int, int, int, int]]:
        """Reserve the planned qubits and log the start; returns per-fragment
        ``(device, qubits, depth, shots, two_qubit_gates)`` work items."""
        table = self.table
        row = state.row
        if table.jobs is not None:
            table.jobs[row].status = QJobStatus.RUNNING
        detail = ",".join(state.device_names) if self._keep_detail else None
        self.records.log_event(state.job_id, "start", state.start, detail)
        allocations = plan.allocations
        if len(allocations) == 1:
            # Whole job on one device: the fragment *is* the circuit
            # (``subcircuit`` at fraction 1.0 preserves every count).
            alloc = allocations[0]
            alloc.device.reserve_qubits_now(alloc.num_qubits)
            return [
                (
                    alloc.device,
                    alloc.num_qubits,
                    state.depth,
                    state.shots,
                    int(table.two_qubit_gates[row]),
                )
            ]
        circuit = table.circuit_for(row)
        fragments = []
        for alloc in allocations:
            alloc.device.reserve_qubits_now(alloc.num_qubits)
            fragment = circuit.subcircuit(alloc.num_qubits)
            fragments.append(
                (
                    alloc.device,
                    fragment.num_qubits,
                    fragment.depth,
                    fragment.num_shots,
                    fragment.num_two_qubit_gates,
                )
            )
        return fragments

    def _launch(
        self,
        dispatched: List[Tuple[_FlatJob, List[Tuple[Any, int, int, int, int]]]],
        fragment_count: int,
    ) -> None:
        """Compute durations/fidelity breakdowns for every fragment dispatched
        by this pump and schedule their completion events.

        Small pumps take the scalar per-fragment path; large ones (the
        ``t=0`` batch workload) group fragments per device and use the
        bit-identical NumPy batch helpers of
        :class:`~repro.cloud.qdevice.IBMQuantumDevice`.
        """
        table = self.table
        if fragment_count >= _VECTOR_THRESHOLD:
            # Group fragment work items by device, batch-compute, scatter the
            # results back to each job's allocation slot.
            by_device: Dict[str, Tuple[Any, List[Tuple[_FlatJob, int, int, int, int, int, int, int]]]] = {}
            for state, fragments in dispatched:
                total_q = state.qubits
                k = len(fragments)
                for index, (device, q, depth, shots, t2) in enumerate(fragments):
                    group = by_device.get(device.name)
                    if group is None:
                        group = by_device[device.name] = (device, [])
                    group[1].append((state, index, q, depth, shots, t2, total_q, k))
            for device, items in by_device.values():
                durations = device.batch_process_times([it[4] for it in items])
                breakdowns = device.batch_fidelity_breakdowns(
                    qubits=[it[2] for it in items],
                    depths=[it[3] for it in items],
                    two_qubit_gates=[it[5] for it in items],
                    total_qubits=[it[6] for it in items],
                    num_devices=[it[7] for it in items],
                )
                for item, duration, breakdown in zip(items, durations, breakdowns):
                    state, index = item[0], item[1]
                    state.durations[index] = float(duration)
                    state.breakdowns[index] = breakdown
        else:
            for state, fragments in dispatched:
                total_q = state.qubits
                k = len(fragments)
                for index, (device, q, depth, shots, t2) in enumerate(fragments):
                    state.durations[index] = device.scalar_process_time(shots)
                    state.breakdowns[index] = device.scalar_fidelity_breakdown(
                        q, depth, t2, total_q, k
                    )
        # Schedule completion events in dispatch order (sequence numbers
        # mirror the legacy per-chain allocation order).
        env = self.env
        queue = env._queue
        eid = env._eid
        now = env._now
        pool = self._done_pool
        single_callbacks = self._single_done_callbacks
        for state, fragments in dispatched:
            if len(fragments) == 1:
                # Whole job on one device: fuse fragment accounting and job
                # completion into one pooled callback event (no
                # remaining-counter round trip, no zero communication delay
                # to compute, no per-job Event allocation).
                event = pool.pop() if pool else Event(env)
                event._value = state
                event.callbacks = single_callbacks
                heappush(queue, (now + state.durations[0], NORMAL, next(eid), event))
                continue
            for index in range(len(fragments)):
                event = Event(env)
                event._value = None
                event.callbacks.append(_SubJobDone(self, state, index))
                heappush(queue, (now + state.durations[index], NORMAL, next(eid), event))

    # -- completion ----------------------------------------------------------
    def _single_done_ev(self, event: Event) -> None:
        """Pooled-event completion callback: unpack the job state from the
        event payload, recycle the event, and finish the job."""
        state = event._value
        event._value = None
        self._done_pool.append(event)
        self._single_done(state)

    def _single_done(self, state: _FlatJob) -> None:
        """Completion of an unsplit job: fragment accounting plus
        :meth:`_complete` in one step.  A one-entry allocation communicates
        zero qubits, so ``comm_delay`` keeps its 0.0 initial value exactly
        as :meth:`_subjob_done` would compute it."""
        alloc = state.allocations[0]
        device = alloc.device
        elapsed = self.env._now - state.start
        device.completed_subjobs += 1
        device.busy_time += elapsed
        device.qubit_seconds += alloc.num_qubits * elapsed
        self._complete(state)

    def _subjob_done(self, state: _FlatJob, index: int) -> None:
        env = self.env
        now = env._now
        alloc = state.allocations[index]
        device = alloc.device
        elapsed = now - state.start
        device.completed_subjobs += 1
        device.busy_time += elapsed
        device.qubit_seconds += alloc.num_qubits * elapsed
        state.remaining -= 1
        if state.remaining:
            return
        comm_delay = self.cloud.communication.communication_delay(state.qubit_counts)
        state.comm_delay = comm_delay
        if comm_delay > 0:
            if self.table.jobs is not None:
                self.table.jobs[state.row].status = QJobStatus.COMMUNICATING
            event = Event(env)
            event._value = None
            event.callbacks.append(_Complete(self, state))
            heappush(env._queue, (now + comm_delay, NORMAL, next(env._eid), event))
        else:
            self._complete(state)

    def _complete(self, state: _FlatJob) -> None:
        env = self.env
        cloud = self.cloud
        table = self.table
        row = state.row
        breakdowns = state.breakdowns
        if len(breakdowns) == 1:
            # Single device: Eq. 8 collapses to the device fidelity itself
            # (``mean([f]) == 0.0 + f`` and ``phi**0 == 1.0`` are both exact),
            # so skip the general kernel on the hot path.
            b = breakdowns[0]
            fidelity = b.single_qubit * b.two_qubit * b.readout
        else:
            fidelity = final_fidelity(
                [b.device for b in breakdowns],
                phi=cloud.communication.fidelity_penalty,
            )
        for alloc in state.allocations:
            alloc.device.release_qubits_now(alloc.num_qubits)
        finish = env._now
        job = table.jobs[row] if table.jobs is not None else None
        if job is not None:
            job.status = QJobStatus.COMPLETED
        job_id = state.job_id
        records = self.records
        detail = f"{fidelity:.6f}" if self._keep_detail else None
        records.log_event(job_id, "fidelity", finish, detail)
        records.log_event(job_id, "finish", finish)
        record = JobRecord(
            job_id=job_id,
            num_qubits=state.qubits,
            depth=state.depth,
            num_shots=state.shots,
            arrival_time=state.arrival,
            start_time=state.start,
            finish_time=finish,
            fidelity=fidelity,
            communication_time=state.comm_delay,
            num_devices=len(state.allocations),
            devices=state.device_names,
            allocation=state.qubit_counts,
            processing_time=max(state.durations),
            breakdowns=state.breakdowns,
            retries=0,
            tenant=job.tenant if job is not None else None,
            first_start_time=state.start,
            service_time=finish - state.start,
            resumed_shots=0,
        )
        records.add_record(record)
        cloud.jobs_completed += 1
        self.completed_count += 1
        self._request_pump(signal=True)


class _SubJobDone:
    """Bound completion callback for one fragment (cheaper than a closure
    capturing three cells per event)."""

    __slots__ = ("dispatcher", "state", "index")

    def __init__(self, dispatcher: FlatDispatcher, state: _FlatJob, index: int) -> None:
        self.dispatcher = dispatcher
        self.state = state
        self.index = index

    def __call__(self, event: Event) -> None:
        self.dispatcher._subjob_done(self.state, self.index)


class _Complete:
    """Bound completion callback for a split job's communication delay."""

    __slots__ = ("dispatcher", "state")

    def __init__(self, dispatcher: FlatDispatcher, state: _FlatJob) -> None:
        self.dispatcher = dispatcher
        self.state = state

    def __call__(self, event: Event) -> None:
        self.dispatcher._complete(self.state)
