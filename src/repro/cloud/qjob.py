"""Quantum jobs (paper §3, ``QJob``).

A :class:`QJob` encapsulates one quantum task: a unique identifier, the
abstract circuit it carries (qubits, depth, shots, gate counts) and its
arrival time.  In this work each job contains exactly one circuit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.circuits.circuit import CircuitSpec

__all__ = ["QJobStatus", "QJob"]


class QJobStatus(enum.Enum):
    """Life-cycle states of a quantum job."""

    #: Created but not yet submitted to the broker.
    PENDING = "pending"
    #: Submitted and waiting for devices/qubits.
    QUEUED = "queued"
    #: Sub-jobs executing on one or more devices.
    RUNNING = "running"
    #: Devices exchanging classical data after execution.
    COMMUNICATING = "communicating"
    #: Finished successfully.
    COMPLETED = "completed"
    #: Failed (e.g. no feasible allocation).
    FAILED = "failed"
    #: Shed by the admission controller before entering the dispatch queue
    #: (multi-tenant serving only — see :mod:`repro.serve`).
    REJECTED = "rejected"


@dataclass
class QJob:
    """A quantum job: one circuit plus scheduling metadata.

    Attributes
    ----------
    job_id:
        Unique identifier.
    circuit:
        The abstract circuit to execute.
    arrival_time:
        Simulation time at which the job arrives (default 0).
    priority:
        Job importance, **smaller = more important** (any integer; negative
        values outrank the default 0).  Jobs sharing an arrival time are
        submitted in priority order, and the multi-tenant dispatch queue
        breaks fair-share ties by priority.
    tenant:
        Owning tenant name (``None`` outside multi-tenant serving runs; the
        serve broker stamps untagged jobs with its default tenant).
    """

    job_id: int
    circuit: CircuitSpec
    arrival_time: float = 0.0
    priority: int = 0
    tenant: Optional[str] = None
    status: QJobStatus = field(default=QJobStatus.PENDING, compare=False)

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be non-negative")
        if isinstance(self.priority, bool) or not isinstance(self.priority, int):
            raise TypeError(
                f"priority must be an int (smaller = more important), got {self.priority!r}"
            )

    # -- convenience accessors matching the paper's notation ----------------
    @property
    def num_qubits(self) -> int:
        """Total qubits required ``q``."""
        return self.circuit.num_qubits

    @property
    def depth(self) -> int:
        """Circuit depth ``d``."""
        return self.circuit.depth

    @property
    def num_shots(self) -> int:
        """Shots to execute ``s``."""
        return self.circuit.num_shots

    @property
    def num_two_qubit_gates(self) -> int:
        """Number of two-qubit gates ``t2``."""
        return self.circuit.num_two_qubit_gates

    def clone(self) -> "QJob":
        """A fresh copy with reset scheduling state (status back to PENDING).

        Used wherever one workload feeds several simulations (experiment
        cells, trace replays): the immutable circuit is shared, the mutable
        life-cycle fields start over.
        """
        return QJob(
            job_id=self.job_id,
            circuit=self.circuit,
            arrival_time=self.arrival_time,
            priority=self.priority,
            tenant=self.tenant,
        )

    def as_dict(self) -> Dict[str, object]:
        """CSV/JSON-friendly representation."""
        payload = self.circuit.as_dict()
        payload.update(
            {
                "job_id": self.job_id,
                "arrival_time": self.arrival_time,
                "priority": self.priority,
            }
        )
        if self.tenant is not None:
            payload["tenant"] = self.tenant
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "QJob":
        """Rebuild a job from :meth:`as_dict` output (also accepts CSV rows)."""
        circuit = CircuitSpec(
            num_qubits=int(payload["num_qubits"]),
            depth=int(payload["depth"]),
            num_shots=int(payload["num_shots"]),
            num_two_qubit_gates=int(payload.get("num_two_qubit_gates", 0)),
            num_single_qubit_gates=int(payload.get("num_single_qubit_gates", 0)),
            name=str(payload.get("name", f"job_{payload['job_id']}")),
        )
        tenant = payload.get("tenant")
        return cls(
            job_id=int(payload["job_id"]),
            circuit=circuit,
            arrival_time=float(payload.get("arrival_time", 0.0)),
            priority=int(payload.get("priority", 0)),
            tenant=str(tenant) if tenant else None,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QJob(id={self.job_id}, q={self.num_qubits}, d={self.depth}, "
            f"shots={self.num_shots}, arrival={self.arrival_time}, status={self.status.value})"
        )
