"""Job life-cycle tracking (paper §3, ``JobRecordsManager``).

The records manager logs the key events of every job — ``arrival``,
``start``, ``finish`` and ``fidelity`` — and assembles one
:class:`JobRecord` per completed job.  The completed records are the raw
material from which Table 2 and Fig. 6 are computed
(:mod:`repro.metrics.aggregate`).

Multi-tenant serving (:mod:`repro.serve`) adds two event kinds: ``rejected``
(the admission controller shed the job before it entered the dispatch queue)
and ``preempted`` (a running job's sub-jobs were aborted to make room for a
higher-priority class).  Records carry the owning tenant so per-tenant SLO
accounting can slice the results.

Checkpointed execution adds two more: ``checkpoint`` (an aborted job saved
the shots its attempt completed) and ``resume`` (a requeued job restarted
with only its remaining shots).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.metrics.fidelity import FidelityBreakdown

__all__ = ["JobEvent", "JobRecord", "JobRecordsManager", "records_to_csv"]


def records_to_csv(records: Sequence["JobRecord"], path: str) -> None:
    """Write job records to a CSV file (columns from ``JobRecord.as_dict``).

    An empty record set (e.g. a run where admission control shed every job)
    writes a header-only CSV instead of raising, so downstream tooling
    always finds a well-formed file with the full schema.
    """
    records = list(records)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(JobRecord.CSV_FIELDS))
        writer.writeheader()
        for record in records:
            writer.writerow(record.as_dict())


@dataclass(frozen=True, slots=True)
class JobEvent:
    """A single logged event in a job's life cycle."""

    job_id: int
    event: str
    time: float
    detail: Optional[str] = None


@dataclass(slots=True)
class JobRecord:
    """Aggregated outcome of one completed job.

    ``start_time`` is the start of the attempt that completed; jobs requeued
    after outages or preemptions additionally carry ``first_start_time``
    (when their first attempt started) and a cumulative ``service_time`` so
    queueing and execution time stay separable across attempts.
    """

    #: Column order of :meth:`as_dict` (the per-job CSV schema).
    CSV_FIELDS = (
        "job_id",
        "num_qubits",
        "depth",
        "num_shots",
        "arrival_time",
        "start_time",
        "first_start_time",
        "finish_time",
        "wait_time",
        "service_time",
        "turnaround_time",
        "processing_time",
        "fidelity",
        "communication_time",
        "num_devices",
        "devices",
        "allocation",
        "retries",
        "resumed_shots",
        "tenant",
    )

    job_id: int
    num_qubits: int
    depth: int
    num_shots: int
    arrival_time: float
    start_time: float
    finish_time: float
    fidelity: float
    communication_time: float
    num_devices: int
    devices: List[str] = field(default_factory=list)
    allocation: List[int] = field(default_factory=list)
    processing_time: float = 0.0
    breakdowns: List[FidelityBreakdown] = field(default_factory=list)
    #: Times the job was requeued after a device outage killed its sub-jobs
    #: (or a higher-priority class preempted it — see :mod:`repro.serve`).
    retries: int = 0
    #: Owning tenant (``None`` outside multi-tenant serving runs).
    tenant: Optional[str] = None
    #: Start of the job's *first* execution attempt (``None`` means the job
    #: completed on its first attempt, i.e. it equals ``start_time``).
    first_start_time: Optional[float] = None
    #: Cumulative time spent in execution attempts (aborted attempts'
    #: elapsed time plus the completing attempt, communication included).
    #: ``None`` means single-attempt legacy accounting (finish - start).
    service_time: Optional[float] = None
    #: Shots carried over from checkpoints of aborted attempts (0 when the
    #: whole job executed in the completing attempt).
    resumed_shots: int = 0

    @property
    def effective_first_start(self) -> float:
        """Start of the first execution attempt (falls back to ``start_time``)."""
        return self.start_time if self.first_start_time is None else self.first_start_time

    @property
    def effective_service_time(self) -> float:
        """Cumulative execution time (falls back to ``finish - start``)."""
        if self.service_time is None:
            return self.finish_time - self.start_time
        return self.service_time

    @property
    def wait_time(self) -> float:
        """Cumulative time spent *not* executing (queueing, including requeues).

        For a single-attempt job this is exactly ``start - arrival``.  For a
        requeued job it is ``turnaround - service``: the first-attempt
        queueing delay plus every inter-attempt requeue wait — neither the
        aborted attempts' execution time (which the old ``start - arrival``
        silently included) nor zero post-requeue queueing (which it silently
        dropped when an earlier ``start`` won).
        """
        if self.retries == 0 or self.service_time is None:
            return self.effective_first_start - self.arrival_time
        return self.turnaround_time - self.service_time

    @property
    def turnaround_time(self) -> float:
        """Total time in the system (finish - arrival)."""
        return self.finish_time - self.arrival_time

    def as_dict(self) -> Dict[str, object]:
        """Flat representation for CSV export / analysis."""
        return {
            "job_id": self.job_id,
            "num_qubits": self.num_qubits,
            "depth": self.depth,
            "num_shots": self.num_shots,
            "arrival_time": self.arrival_time,
            "start_time": self.start_time,
            "first_start_time": self.effective_first_start,
            "finish_time": self.finish_time,
            "wait_time": self.wait_time,
            "service_time": self.effective_service_time,
            "turnaround_time": self.turnaround_time,
            "processing_time": self.processing_time,
            "fidelity": self.fidelity,
            "communication_time": self.communication_time,
            "num_devices": self.num_devices,
            "devices": "|".join(self.devices),
            "allocation": "|".join(str(a) for a in self.allocation),
            "retries": self.retries,
            "resumed_shots": self.resumed_shots,
            "tenant": self.tenant or "",
        }


class JobRecordsManager:
    """Tracks job events and completed-job records during a simulation."""

    #: Whether :meth:`log_event` stores the ``detail`` string.  Managers
    #: that only count events (the streaming manager) set this to ``False``
    #: so hot paths can skip formatting strings nobody will read.
    KEEPS_EVENT_DETAIL = True

    #: Event names logged by the framework.
    EVENTS = (
        "arrival",
        "start",
        "finish",
        "fidelity",
        "failed",
        "requeue",
        "rejected",
        "preempted",
        "checkpoint",
        "resume",
    )

    def __init__(self) -> None:
        self._events: List[JobEvent] = []
        #: Per-job event index so :meth:`events_for` is O(own events).
        self._events_by_job: Dict[int, List[JobEvent]] = {}
        self._records: Dict[int, JobRecord] = {}
        #: Completed records in completion order (append-only).
        self._completed: List[JobRecord] = []
        #: Job-id-sorted view, rebuilt lazily after new completions.
        self._sorted_records: Optional[List[JobRecord]] = None

    # -- event logging -------------------------------------------------------
    def log_event(self, job_id: int, event: str, time: float, detail: Optional[str] = None) -> None:
        """Append a raw life-cycle event."""
        if event not in self.EVENTS:
            raise ValueError(f"unknown event {event!r}; expected one of {self.EVENTS}")
        entry = JobEvent(job_id=job_id, event=event, time=time, detail=detail)
        self._events.append(entry)
        bucket = self._events_by_job.get(job_id)
        if bucket is None:
            self._events_by_job[job_id] = [entry]
        else:
            bucket.append(entry)

    def log_arrival(self, job_id: int, time: float) -> None:
        """Record a job arriving at the cloud portal."""
        self.log_event(job_id, "arrival", time)

    def log_arrival_block(self, job_ids: Sequence[int], start: int, stop: int, time: float) -> None:
        """Record the arrival of rows ``start..stop`` of *job_ids* at *time*.

        Equivalent to calling :meth:`log_arrival` per row; managers that
        only count events override this with an O(1) bump (the fast-path
        dispatcher feeds arrivals in same-timestamp blocks).
        """
        for row in range(start, stop):
            self.log_event(int(job_ids[row]), "arrival", time)

    def log_start(self, job_id: int, time: float, detail: Optional[str] = None) -> None:
        """Record a job starting execution (qubits reserved)."""
        self.log_event(job_id, "start", time, detail)

    def log_finish(self, job_id: int, time: float) -> None:
        """Record a job finishing (qubits released)."""
        self.log_event(job_id, "finish", time)

    def log_fidelity(self, job_id: int, time: float, fidelity: float) -> None:
        """Record the final fidelity computed for a job."""
        self.log_event(job_id, "fidelity", time, detail=f"{fidelity:.6f}")

    def log_failure(self, job_id: int, time: float, reason: str) -> None:
        """Record a job failing."""
        self.log_event(job_id, "failed", time, detail=reason)

    def log_requeue(self, job_id: int, time: float, detail: Optional[str] = None) -> None:
        """Record a job being requeued after an outage killed its sub-jobs."""
        self.log_event(job_id, "requeue", time, detail)

    def log_rejection(self, job_id: int, time: float, reason: str) -> None:
        """Record a job shed by the admission controller (multi-tenant serving)."""
        self.log_event(job_id, "rejected", time, detail=reason)

    def log_preemption(self, job_id: int, time: float, detail: Optional[str] = None) -> None:
        """Record a running job preempted in favour of a higher priority class."""
        self.log_event(job_id, "preempted", time, detail)

    def log_checkpoint(self, job_id: int, time: float, detail: Optional[str] = None) -> None:
        """Record an aborted job checkpointing the shots it completed."""
        self.log_event(job_id, "checkpoint", time, detail)

    def log_resume(self, job_id: int, time: float, detail: Optional[str] = None) -> None:
        """Record a checkpointed job resuming with only its remaining shots."""
        self.log_event(job_id, "resume", time, detail)

    def add_record(self, record: JobRecord) -> None:
        """Store the aggregated record of a completed job."""
        if record.job_id in self._records:
            raise ValueError(f"duplicate record for job {record.job_id}")
        self._records[record.job_id] = record
        self._completed.append(record)
        self._sorted_records = None

    # -- queries ---------------------------------------------------------------
    @property
    def events(self) -> List[JobEvent]:
        """All logged events in insertion order."""
        return list(self._events)

    def events_for(self, job_id: int) -> List[JobEvent]:
        """All events of one job (O(own events) via the per-job index)."""
        return list(self._events_by_job.get(job_id, ()))

    @property
    def completed_records(self) -> List[JobRecord]:
        """Records of all completed jobs, ordered by job id.

        The sorted view is cached between completions, so repeated reads
        (summaries, CSV export, SLO accounting) cost one list copy instead
        of a fresh O(n log n) sort each.
        """
        if self._sorted_records is None:
            self._sorted_records = sorted(self._completed, key=lambda r: r.job_id)
        return list(self._sorted_records)

    def record_for(self, job_id: int) -> Optional[JobRecord]:
        """Record of one job (or ``None`` if not completed)."""
        return self._records.get(job_id)

    def __len__(self) -> int:
        return len(self._records)

    # -- export -----------------------------------------------------------------
    def to_csv(self, path: str) -> None:
        """Write all completed-job records to a CSV file."""
        records_to_csv(self.completed_records, path)

    def events_to_csv(self, path: str) -> None:
        """Write the raw event log to a CSV file."""
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["job_id", "event", "time", "detail"])
            for event in self._events:
                writer.writerow([event.job_id, event.event, event.time, event.detail or ""])
