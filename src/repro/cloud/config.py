"""Simulation configuration (paper §3, "Configurations Layer").

Users specify scheduling policies, simulation parameters and hardware
configurations up front; :class:`SimulationConfig` gathers all of them in one
typed, validated object that the experiment runners consume.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hardware.backends import DEFAULT_DEVICE_NAMES

__all__ = ["SimulationConfig"]


@dataclass
class SimulationConfig:
    """All knobs of one simulation run.

    The defaults reproduce the paper's case study (§7): five 127-qubit IBM
    devices, 1,000 synthetic jobs with 130-250 qubits, depth 5-20 and
    10k-100k shots, λ = 0.02 s/qubit and φ = 0.95.
    """

    #: Allocation policy name (see :mod:`repro.scheduling.registry`).
    policy: str = "speed"
    #: Devices to instantiate (catalogue names).
    device_names: List[str] = field(default_factory=lambda: list(DEFAULT_DEVICE_NAMES))
    #: Number of qubits per device.
    device_qubits: int = 127
    #: Quantum volume per device.
    quantum_volume: float = 127.0

    #: Number of synthetic jobs.
    num_jobs: int = 1000
    #: Qubit demand range of the synthetic jobs (inclusive).
    qubit_range: Tuple[int, int] = (130, 250)
    #: Circuit depth range (inclusive).
    depth_range: Tuple[int, int] = (5, 20)
    #: Shot count range (inclusive).
    shots_range: Tuple[int, int] = (10_000, 100_000)
    #: Fraction of qubit-layer slots occupied by two-qubit gates.
    two_qubit_density: float = 0.30
    #: Arrival process: "batch" (all at t=0) or "poisson".
    arrival: str = "batch"
    #: Poisson arrival rate (jobs/second) when ``arrival == "poisson"``.
    arrival_rate: float = 0.01

    #: Per-qubit classical communication latency λ (seconds).
    comm_latency_per_qubit: float = 0.02
    #: Per-link fidelity penalty φ.
    comm_fidelity_penalty: float = 0.95
    #: Communication qubit accounting ("per_link" or "non_primary").
    comm_accounting: str = "per_link"

    #: Workload / calibration seed.
    seed: int = 2025

    #: Named scenario injecting non-stationary world dynamics (calibration
    #: drift, outages, traffic shaping — see :mod:`repro.dynamics`), or a
    #: ``.jsonl`` trace path to replay.  ``None`` keeps the static world.
    scenario: Optional[str] = None

    #: Named multi-tenant mix (see :mod:`repro.serve`): tenants with priority
    #: classes, SLOs and admission limits sharing the fleet through the
    #: preemptive fair-share serve broker.  ``None`` keeps the plain
    #: single-queue broker (byte-identical to pre-serve runs).
    tenants: Optional[str] = None

    #: Starvation guard: a job terminally fails after this many requeues
    #: (outage kills + preemptions combined).
    max_requeues: int = 100

    #: Checkpointed preemption: aborted attempts (outage kills, maintenance
    #: windows, serve-layer preemptions) save their completed shots and the
    #: requeued job resumes with only the remainder, shot-weight-merging the
    #: partial fidelities.  Off by default — requeued jobs then re-execute
    #: from scratch, byte-identical to historical behaviour.
    checkpointing: bool = False

    #: Flat-event fast path (:mod:`repro.cloud.fastpath`): replace the
    #: per-job broker processes with the flat pending-table dispatcher when
    #: the configuration is eligible (plain broker, no tenant mix, no world
    #: dynamics).  Results are byte-identical to the legacy engine; the
    #: request silently falls back to the legacy path when ineligible.  Off
    #: by default.
    fast_path: bool = False

    #: Named multi-region topology (see :mod:`repro.region`): the run becomes
    #: a sharded cloud — one broker shard per region behind a routing tier,
    #: with inter-region transfer latency and fidelity penalties.  ``None``
    #: keeps the plain single-broker cloud; a one-region topology is
    #: byte-identical to it.
    regions: Optional[str] = None

    #: Routing policy of the multi-region front tier (only meaningful when
    #: ``regions`` is set): "locality", "least-loaded", "calibration-aware"
    #: or "round-robin".
    routing: str = "locality"

    #: Named adaptive QoS policy (see :mod:`repro.adaptive`): a closed-loop
    #: control plane sensing queue depth / tail latency / forecast arrivals
    #: and feeding them back into admission rates, allocation planning,
    #: device pooling and checkpointing.  ``None`` (and the ``static``
    #: preset) keeps the open-loop engine, byte-identical to pre-adaptive
    #: runs.  In a multi-region run every shard gets its own control loop.
    adaptive: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_jobs <= 0:
            raise ValueError("num_jobs must be positive")
        if self.device_qubits <= 0:
            raise ValueError("device_qubits must be positive")
        if not self.device_names:
            raise ValueError("at least one device is required")
        if self.qubit_range[0] > self.qubit_range[1]:
            raise ValueError("invalid qubit_range")
        if self.arrival not in ("batch", "poisson"):
            raise ValueError("arrival must be 'batch' or 'poisson'")
        if not 0.0 <= self.comm_fidelity_penalty <= 1.0:
            raise ValueError("comm_fidelity_penalty must be in [0, 1]")
        if self.comm_latency_per_qubit < 0:
            raise ValueError("comm_latency_per_qubit must be non-negative")
        if self.scenario is not None and not self.scenario:
            raise ValueError("scenario must be None or a non-empty name")
        if self.tenants is not None and not self.tenants:
            raise ValueError("tenants must be None or a non-empty mix name")
        if self.max_requeues < 0:
            raise ValueError("max_requeues must be non-negative")
        if self.regions is not None:
            if not self.regions:
                raise ValueError("regions must be None or a non-empty topology name")
            from repro.region.router import ROUTING_POLICIES

            if self.routing not in ROUTING_POLICIES:
                raise ValueError(
                    f"routing must be one of {ROUTING_POLICIES}, got {self.routing!r}"
                )
        if self.adaptive is not None and not self.adaptive:
            raise ValueError("adaptive must be None or a non-empty policy name")

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view (for logging next to results)."""
        return asdict(self)

    def with_policy(self, policy: str) -> "SimulationConfig":
        """Copy of the configuration with a different allocation policy."""
        payload = asdict(self)
        payload["policy"] = policy
        return SimulationConfig(**payload)

    def scaled(self, num_jobs: int) -> "SimulationConfig":
        """Copy of the configuration with a different job count (for quick runs)."""
        payload = asdict(self)
        payload["num_jobs"] = num_jobs
        return SimulationConfig(**payload)

    def with_scenario(self, scenario: Optional[str]) -> "SimulationConfig":
        """Copy of the configuration with a different scenario."""
        payload = asdict(self)
        payload["scenario"] = scenario
        return SimulationConfig(**payload)

    def with_tenants(self, tenants: Optional[str]) -> "SimulationConfig":
        """Copy of the configuration with a different tenant mix."""
        payload = asdict(self)
        payload["tenants"] = tenants
        return SimulationConfig(**payload)

    def with_checkpointing(self, checkpointing: bool = True) -> "SimulationConfig":
        """Copy of the configuration with checkpointed preemption toggled."""
        payload = asdict(self)
        payload["checkpointing"] = checkpointing
        return SimulationConfig(**payload)

    def with_fast_path(self, fast_path: bool = True) -> "SimulationConfig":
        """Copy of the configuration with the flat-event fast path toggled."""
        payload = asdict(self)
        payload["fast_path"] = fast_path
        return SimulationConfig(**payload)

    def with_regions(
        self, regions: Optional[str], routing: Optional[str] = None
    ) -> "SimulationConfig":
        """Copy of the configuration with a different region topology."""
        payload = asdict(self)
        payload["regions"] = regions
        if routing is not None:
            payload["routing"] = routing
        return SimulationConfig(**payload)

    def with_adaptive(self, adaptive: Optional[str]) -> "SimulationConfig":
        """Copy of the configuration with a different adaptive QoS policy."""
        payload = asdict(self)
        payload["adaptive"] = adaptive
        return SimulationConfig(**payload)
