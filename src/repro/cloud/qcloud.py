"""The quantum cloud (paper §3, ``QCloud``).

``QCloud`` owns the device fleet, provides the admission control used by the
unified allocation workflow (one job is admitted/planned at a time, FIFO),
exposes a *capacity-released* signal so waiting jobs re-plan when qubits free
up, and carries the inter-device communication model.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.cloud.communication import ClassicalCommunicationModel
from repro.cloud.qdevice import BaseQDevice, IBMQuantumDevice
from repro.des.environment import Environment
from repro.des.events import Event
from repro.des.resources.resource import Resource
from repro.hardware.backends import DeviceProfile

__all__ = ["QCloud"]


class QCloud:
    """A fleet of quantum devices plus cloud-level coordination state.

    Parameters
    ----------
    env:
        Simulation environment.
    devices:
        Device instances, or :class:`~repro.hardware.backends.DeviceProfile`
        objects (which are wrapped into :class:`IBMQuantumDevice`).
    communication:
        Classical communication model; defaults to the paper's parameters
        (λ = 0.02 s/qubit, φ = 0.95).
    """

    def __init__(
        self,
        env: Environment,
        devices: Sequence[object],
        communication: Optional[ClassicalCommunicationModel] = None,
    ) -> None:
        self.env = env
        self.devices: List[BaseQDevice] = []
        for device in devices:
            if isinstance(device, BaseQDevice):
                self.devices.append(device)
            elif isinstance(device, DeviceProfile):
                self.devices.append(IBMQuantumDevice(env, device))
            else:
                raise TypeError(f"unsupported device specification {device!r}")
        if not self.devices:
            raise ValueError("a QCloud needs at least one device")
        names = [d.name for d in self.devices]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate device names: {names}")

        self.communication = communication or ClassicalCommunicationModel()
        #: Serialises the plan-and-reserve critical section (FIFO admission).
        self.admission = Resource(env, capacity=1)
        self._capacity_released: Event = env.event()
        #: Total number of jobs completed by the cloud.
        self.jobs_completed = 0

    # -- fleet queries -----------------------------------------------------------
    @property
    def online_devices(self) -> List[BaseQDevice]:
        """Devices currently accepting work (scenario outages/maintenance may
        take devices offline mid-run); the broker plans over this view."""
        return [d for d in self.devices if d.online]

    @property
    def total_qubits(self) -> int:
        """Combined qubit capacity of the fleet."""
        return sum(d.num_qubits for d in self.devices)

    @property
    def free_qubits(self) -> int:
        """Combined free qubits across the fleet."""
        return sum(d.free_qubits for d in self.devices)

    @property
    def max_device_qubits(self) -> int:
        """Capacity of the largest single device."""
        return max(d.num_qubits for d in self.devices)

    def device(self, name: str) -> BaseQDevice:
        """Look up a device by name."""
        for d in self.devices:
            if d.name == name:
                return d
        raise KeyError(f"no device named {name!r}")

    def device_names(self) -> List[str]:
        """Names of all devices in fleet order."""
        return [d.name for d in self.devices]

    def utilization(self) -> Dict[str, float]:
        """Current per-device qubit utilisation."""
        return {d.name: d.utilization for d in self.devices}

    def fits_single_device(self, num_qubits: int) -> bool:
        """Whether a circuit of *num_qubits* fits on one device (no splitting)."""
        return num_qubits <= self.max_device_qubits

    def requires_partitioning(self, num_qubits: int) -> bool:
        """Whether a circuit must be split across devices (Eq. 1 lower bound)."""
        return num_qubits > self.max_device_qubits

    def can_ever_fit(self, num_qubits: int) -> bool:
        """Whether the cloud's total capacity can hold the circuit (Eq. 1 upper bound)."""
        return num_qubits <= self.total_qubits

    # -- capacity-released signalling ---------------------------------------------
    @property
    def capacity_released(self) -> Event:
        """Event that fires the next time any job releases its qubits.

        Waiting brokers yield this event and re-plan when it fires; a fresh
        event is installed after each release.
        """
        return self._capacity_released

    def signal_capacity_change(self) -> None:
        """Fire the capacity-released signal without counting a completion.

        Used when capacity appears for reasons other than a job finishing —
        a device coming back online after an outage, or a requeued job
        releasing its reservations — so waiting brokers re-plan.
        """
        event, self._capacity_released = self._capacity_released, self.env.event()
        if not event.triggered:
            event.succeed()

    def notify_capacity_released(self) -> None:
        """Fire the capacity-released signal (called by the broker on job completion)."""
        self.signal_capacity_change()
        self.jobs_completed += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<QCloud devices={len(self.devices)} free={self.free_qubits}/{self.total_qubits}>"
