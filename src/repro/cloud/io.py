"""Deterministic job flow through external data formats (CSV / JSON).

The framework supports loading job workloads from CSV and JSON files for
benchmarking, debugging and controlled comparative studies (§3).  The CSV
schema matches :meth:`repro.cloud.qjob.QJob.as_dict`:

``job_id,num_qubits,depth,num_shots,num_two_qubit_gates,num_single_qubit_gates,arrival_time,priority,name,tenant``
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, List, Sequence

from repro.cloud.qjob import QJob

__all__ = ["jobs_to_csv", "jobs_from_csv", "jobs_to_json", "jobs_from_json"]

_CSV_FIELDS = [
    "job_id",
    "num_qubits",
    "depth",
    "num_shots",
    "num_two_qubit_gates",
    "num_single_qubit_gates",
    "arrival_time",
    "priority",
    "name",
    "tenant",
]


def jobs_to_csv(jobs: Sequence[QJob], path: str) -> None:
    """Write jobs to a CSV file (one row per job)."""
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_CSV_FIELDS, extrasaction="ignore")
        writer.writeheader()
        for job in jobs:
            writer.writerow(job.as_dict())


def jobs_from_csv(path: str) -> List[QJob]:
    """Load jobs from a CSV file written by :func:`jobs_to_csv` (or hand-made).

    Only ``job_id``, ``num_qubits``, ``depth`` and ``num_shots`` are required;
    missing optional columns fall back to sensible defaults (arrival time 0,
    no two-qubit gate count).
    """
    jobs: List[QJob] = []
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        for row in reader:
            cleaned = {k: v for k, v in row.items() if v not in (None, "")}
            jobs.append(QJob.from_dict(cleaned))
    if not jobs:
        raise ValueError(f"no jobs found in {path}")
    return jobs


def jobs_to_json(jobs: Sequence[QJob], path: str) -> None:
    """Write jobs to a JSON file (a list of job dictionaries)."""
    payload = [job.as_dict() for job in jobs]
    Path(path).write_text(json.dumps(payload, indent=2))


def jobs_from_json(path: str) -> List[QJob]:
    """Load jobs from a JSON file written by :func:`jobs_to_json`."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, list) or not payload:
        raise ValueError(f"{path} does not contain a non-empty list of jobs")
    return [QJob.from_dict(entry) for entry in payload]
