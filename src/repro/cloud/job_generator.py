"""Job sources (paper §3, ``JobGenerator``).

The generator produces :class:`~repro.cloud.qjob.QJob` objects and submits
them to the broker at their arrival times.  Three dispatching mechanisms are
supported, mirroring Fig. 4:

* **synthetic** — randomized jobs drawn from configurable ranges (the §7 case
  study uses 1,000 jobs with 130-250 qubits, depth 5-20 and 10k-100k shots),
  arriving either all at once ("batch") or as a Poisson process,
* **deterministic** — an explicit list of pre-built jobs,
* **file-based** — jobs loaded from CSV or JSON via :mod:`repro.cloud.io`.
"""

from __future__ import annotations

from typing import Generator, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.generators import random_circuit_spec
from repro.cloud.broker import Broker
from repro.cloud.qjob import QJob
from repro.cloud.records import JobRecordsManager
from repro.des.environment import Environment
from repro.des.events import NORMAL, Event, Process

__all__ = ["JobGenerator", "generate_synthetic_jobs"]


def generate_synthetic_jobs(
    num_jobs: int,
    seed: Optional[int] = None,
    qubit_range: Tuple[int, int] = (130, 250),
    depth_range: Tuple[int, int] = (5, 20),
    shots_range: Tuple[int, int] = (10_000, 100_000),
    two_qubit_density: float = 0.30,
    arrival: str = "batch",
    arrival_rate: float = 0.01,
    start_time: float = 0.0,
) -> List[QJob]:
    """Generate the synthetic workload of the paper's case study (§7).

    Parameters
    ----------
    num_jobs:
        Number of jobs (1,000 in the paper).
    qubit_range, depth_range, shots_range:
        Inclusive uniform ranges (§7 defaults).
    two_qubit_density:
        Fraction of qubit-layer slots holding a two-qubit gate.
    arrival:
        ``"batch"`` — all jobs arrive at *start_time*; ``"poisson"`` —
        exponential inter-arrival times with rate *arrival_rate* (jobs/s).
    seed:
        Seed for reproducibility.
    """
    if num_jobs <= 0:
        raise ValueError("num_jobs must be positive")
    if arrival not in ("batch", "poisson"):
        raise ValueError(f"arrival must be 'batch' or 'poisson', got {arrival!r}")
    if arrival == "poisson" and arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive for poisson arrivals")

    rng = np.random.default_rng(seed)
    jobs: List[QJob] = []
    time = float(start_time)
    for job_id in range(num_jobs):
        circuit = random_circuit_spec(
            rng,
            qubit_range=qubit_range,
            depth_range=depth_range,
            shots_range=shots_range,
            two_qubit_density=two_qubit_density,
            name=f"synthetic_{job_id}",
        )
        if arrival == "poisson" and job_id > 0:
            time += float(rng.exponential(1.0 / arrival_rate))
        jobs.append(QJob(job_id=job_id, circuit=circuit, arrival_time=time))
    return jobs


class JobGenerator:
    """Feeds jobs into the broker at their arrival times.

    Parameters
    ----------
    env:
        Simulation environment.
    broker:
        The broker jobs are submitted to.
    jobs:
        Pre-built jobs (deterministic mode).  Jobs are submitted in
        arrival-time order; jobs sharing an arrival time are submitted in
        priority order (smaller = more important, ties by job id), so the
        broker's FIFO admission honours job priority within a batch.  Jobs
        without an arrival time arrive immediately.
    records:
        Optional records manager for arrival logging (defaults to the
        broker's).
    """

    def __init__(
        self,
        env: Environment,
        broker: Broker,
        jobs: Sequence[QJob],
        records: Optional[JobRecordsManager] = None,
    ) -> None:
        self.env = env
        self.broker = broker
        self.jobs: List[QJob] = sorted(
            jobs, key=lambda j: (j.arrival_time, j.priority, j.job_id)
        )
        self.records = records if records is not None else broker.records
        #: The dispatch process (started by :meth:`start`).
        self.process: Optional[Process] = None
        #: Processes of all submitted jobs.
        self.submitted: List[Process] = []

    @classmethod
    def synthetic(
        cls,
        env: Environment,
        broker: Broker,
        num_jobs: int,
        seed: Optional[int] = None,
        **kwargs: object,
    ) -> "JobGenerator":
        """Create a generator with a synthetic workload (see :func:`generate_synthetic_jobs`)."""
        jobs = generate_synthetic_jobs(num_jobs, seed=seed, **kwargs)  # type: ignore[arg-type]
        return cls(env, broker, jobs)

    def start(self) -> Process:
        """Start dispatching jobs; returns the dispatch process."""
        if self.process is not None:
            raise RuntimeError("JobGenerator already started")
        self.process = self.env.process(self._dispatch())
        return self.process

    def _arrival_batches(self) -> List[Tuple[float, List[QJob]]]:
        """Jobs grouped by distinct arrival time (jobs are already sorted)."""
        batches: List[Tuple[float, List[QJob]]] = []
        for job in self.jobs:
            if batches and batches[-1][0] == job.arrival_time:
                batches[-1][1].append(job)
            else:
                batches.append((job.arrival_time, [job]))
        return batches

    def _dispatch(self) -> Generator[object, object, int]:
        """DES process releasing each job at its arrival time.

        Jobs sharing an arrival time are released as one batch, and all
        future arrival markers are bulk-scheduled up front through
        :meth:`~repro.des.environment.Environment.schedule_batch` — one heap
        build instead of one ``timeout`` round-trip per job.
        """
        env = self.env
        batches = self._arrival_batches()

        markers: List[Optional[Event]] = []
        pending: List[Tuple[float, int, Event]] = []
        for time, _ in batches:
            if time > env.now:
                marker = Event(env)
                marker._ok = True
                marker._value = None
                pending.append((time, NORMAL, marker))
                markers.append(marker)
            else:
                markers.append(None)
        if pending:
            env.schedule_batch(pending)

        log_arrival = self.records.log_arrival
        submit = self.broker.submit
        submitted = self.submitted
        for (time, batch), marker in zip(batches, markers):
            if marker is not None:
                yield marker
            now = env.now
            for job in batch:
                log_arrival(job.job_id, now)
                submitted.append(submit(job))
        return len(self.jobs)

    def all_jobs_done(self):
        """Return an event that triggers when every submitted job has finished.

        Must be called after the dispatch process has completed (e.g. by
        running the simulation to exhaustion, or by yielding
        :attr:`process` first).
        """
        return self.env.all_of(self.submitted)

    def __len__(self) -> int:
        return len(self.jobs)
