"""The top-level quantum-cloud simulation environment (paper §3, ``QCloudSimEnv``).

``QCloudSimEnv`` extends the DES :class:`~repro.des.environment.Environment`
and wires together the fleet (:class:`~repro.cloud.qcloud.QCloud`), the
broker, the job generator and the records manager, so that a complete
simulation is three lines::

    env = QCloudSimEnv(config)           # or pass devices/jobs/policy explicitly
    env.run_until_complete()
    summary = env.summary()

Non-stationary runs add one knob: a scenario (named preset, a
:class:`~repro.dynamics.Scenario` instance, or a recorded ``.jsonl`` trace)
injects calibration drift, outages and traffic shaping through the
:class:`~repro.dynamics.ScenarioEngine`; see :mod:`repro.dynamics`.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Sequence

from repro.cloud.broker import Broker
from repro.cloud.communication import ClassicalCommunicationModel
from repro.cloud.config import SimulationConfig
from repro.cloud.job_generator import JobGenerator, generate_synthetic_jobs
from repro.cloud.qcloud import QCloud
from repro.cloud.qjob import QJob
from repro.cloud.records import JobRecord, JobRecordsManager
from repro.des.environment import Environment
from repro.hardware.backends import build_default_fleet, get_device_profile
from repro.metrics.aggregate import StrategySummary, summarize_records

__all__ = ["QCloudSimEnv"]


class QCloudSimEnv(Environment):
    """A ready-to-run quantum-cloud simulation.

    There are two ways to construct one:

    * from a :class:`~repro.cloud.config.SimulationConfig` (synthetic
      workload, catalogue devices, policy by name), or
    * by passing ``devices``, ``jobs`` and a ``policy`` instance explicitly
      (full control, used by the tests and by custom experiments).

    Parameters
    ----------
    config:
        Simulation configuration; used for any component not given explicitly.
    devices:
        Device profiles or device instances (overrides ``config.device_names``).
    jobs:
        Explicit job list (overrides the synthetic workload).
    policy:
        Policy instance (overrides ``config.policy``).  Required when the
        configured policy is ``"rlbase"`` (a trained model must be supplied).
    scenario:
        World-dynamics scenario: a registered preset name, a ``.jsonl`` trace
        path, or a :class:`~repro.dynamics.Scenario` instance (overrides
        ``config.scenario``).  ``None`` with no configured scenario keeps the
        static world — and is byte-identical to the ``"static"`` preset.
    tenants:
        Multi-tenant mix: a registered preset name or a
        :class:`~repro.serve.TenantMix` instance (overrides
        ``config.tenants``).  Selecting a mix swaps the plain broker for the
        :class:`~repro.serve.ServeBroker` (admission control, fair-share
        dispatch, preemption) and shapes the workload from the tenants'
        traffic specs; the ``single`` preset stays byte-identical to a plain
        run.
    records:
        Records manager (overrides the default in-memory
        :class:`~repro.cloud.records.JobRecordsManager`).  Pass a
        :class:`~repro.cloud.records_stream.StreamingRecordsManager` for
        O(1)-memory million-job runs.
    fast_path:
        Use the flat-event dispatcher (:mod:`repro.cloud.fastpath`) instead
        of per-job broker processes when the configuration is eligible
        (overrides ``config.fast_path``).  Byte-identical results; silently
        falls back to the legacy engine when ineligible.  Whether it engaged
        is reported by :attr:`fast_path_active`.
    job_table:
        A :class:`~repro.cloud.fastpath.JobTable` as the workload — the
        streaming bulk form that never materialises per-job objects.
        Requires an eligible configuration (raises ``ValueError`` otherwise)
        and implies ``fast_path``.  Mutually exclusive with ``jobs``.
    adaptive:
        Adaptive QoS policy: a registered preset name (``"static"``,
        ``"reactive"``, ``"predictive"``) or an
        :class:`~repro.adaptive.AdaptivePolicySpec` instance (overrides
        ``config.adaptive``).  A non-static policy attaches the
        closed-loop control plane (:class:`~repro.adaptive.AdaptiveEngine`)
        to the broker; ``None`` and the ``static`` preset are byte-identical
        to the open-loop engine.
    """

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        devices: Optional[Sequence[object]] = None,
        jobs: Optional[Sequence[QJob]] = None,
        policy: Optional[Any] = None,
        scenario: Optional[Any] = None,
        tenants: Optional[Any] = None,
        records: Optional[JobRecordsManager] = None,
        fast_path: Optional[bool] = None,
        job_table: Optional[Any] = None,
        adaptive: Optional[Any] = None,
    ) -> None:
        super().__init__()
        self.config = config if config is not None else SimulationConfig()

        # -- scenario ----------------------------------------------------------
        if scenario is None and self.config.scenario is not None:
            scenario = self.config.scenario
        if isinstance(scenario, str):
            from repro.dynamics import resolve_scenario

            scenario = resolve_scenario(scenario)
        #: The resolved scenario (or ``None`` for a plain static run).
        self.scenario = scenario

        # -- tenants ------------------------------------------------------------
        if tenants is None and self.config.tenants is not None:
            tenants = self.config.tenants
        if isinstance(tenants, str):
            from repro.serve import resolve_tenant_mix

            tenants = resolve_tenant_mix(tenants)
        #: The resolved tenant mix (or ``None`` for a plain single-queue run).
        self.tenant_mix = tenants

        # -- adaptive QoS --------------------------------------------------------
        if adaptive is None and self.config.adaptive is not None:
            adaptive = self.config.adaptive
        if adaptive is not None:
            from repro.adaptive import resolve_adaptive_policy

            adaptive = resolve_adaptive_policy(adaptive)
        #: The resolved adaptive policy spec (or ``None`` for open-loop runs).
        self.adaptive_policy = adaptive

        # -- devices -----------------------------------------------------------
        if devices is None:
            devices = [
                get_device_profile(
                    name,
                    num_qubits=self.config.device_qubits,
                    quantum_volume=self.config.quantum_volume,
                )
                for name in self.config.device_names
            ]
        communication = ClassicalCommunicationModel(
            latency_per_qubit=self.config.comm_latency_per_qubit,
            fidelity_penalty=self.config.comm_fidelity_penalty,
            accounting=self.config.comm_accounting,
        )
        self.cloud = QCloud(self, devices, communication=communication)

        # -- policy --------------------------------------------------------------
        if policy is None:
            from repro.scheduling.registry import create_policy

            policy = create_policy(self.config.policy)
        self.policy = policy

        # -- records, broker, job source ----------------------------------------
        self.records = records if records is not None else JobRecordsManager()
        if self.tenant_mix is not None:
            from repro.serve import ServeBroker

            self.broker: Broker = ServeBroker(
                self,
                self.cloud,
                self.policy,
                self.records,
                tenants=self.tenant_mix,
                max_requeues=self.config.max_requeues,
                checkpointing=self.config.checkpointing,
            )
        else:
            self.broker = Broker(
                self,
                self.cloud,
                self.policy,
                self.records,
                max_requeues=self.config.max_requeues,
                checkpointing=self.config.checkpointing,
            )

        if job_table is not None and jobs is not None:
            raise ValueError("pass either jobs or job_table, not both")

        explicit_jobs = jobs is not None
        if jobs is None and job_table is None:
            if self.scenario is not None:
                from repro.dynamics import scenario_jobs

                jobs = scenario_jobs(self.scenario, self.config)
                if jobs is not None and self.tenant_mix is not None:
                    # Scenario traffic shaped the arrivals; the mix decides
                    # whose jobs they are.
                    from repro.serve import route_jobs_to_tenants

                    jobs = route_jobs_to_tenants(jobs, self.tenant_mix, self.config.seed)
            if jobs is None and self.tenant_mix is not None:
                from repro.serve import tenant_jobs

                jobs = tenant_jobs(self.tenant_mix, self.config)
            if jobs is None:
                jobs = generate_synthetic_jobs(
                    num_jobs=self.config.num_jobs,
                    seed=self.config.seed,
                    qubit_range=self.config.qubit_range,
                    depth_range=self.config.depth_range,
                    shots_range=self.config.shots_range,
                    two_qubit_density=self.config.two_qubit_density,
                    arrival=self.config.arrival,
                    arrival_rate=self.config.arrival_rate,
                )
        if (
            explicit_jobs
            and self.tenant_mix is not None
            and len(self.tenant_mix.tenants) > 1
            and all(job.tenant is None for job in jobs)
        ):
            # An explicitly supplied, fully untagged workload (e.g. a CSV
            # file) in a multi-tenant run: route it by tenant share like
            # scenario traffic, instead of silently attributing everything
            # to the default tenant.  Workloads carrying any tenant tag are
            # taken at face value.  Routing stamps *clones* so the caller's
            # job objects stay reusable with other mixes.
            from repro.serve import route_jobs_to_tenants

            jobs = route_jobs_to_tenants(
                [job.clone() for job in jobs], self.tenant_mix, self.config.seed
            )

        # -- dispatch engine -----------------------------------------------------
        want_fast = fast_path if fast_path is not None else self.config.fast_path
        if job_table is not None:
            want_fast = True
        #: Whether the flat-event dispatcher is driving this run.
        self.fast_path_active = False
        if want_fast:
            from repro.cloud.fastpath import FlatDispatcher, JobTable, flat_path_eligible

            eligible = flat_path_eligible(self.broker, self.tenant_mix, self.scenario)
            if eligible and self.adaptive_policy is not None and not self.adaptive_policy.is_static:
                # The flat dispatcher bypasses broker.submit, which is where
                # the control plane senses arrivals — an active adaptive
                # policy falls back to the legacy engine.
                eligible = False
            if job_table is not None and not eligible:
                raise ValueError(
                    "job_table requires a fast-path-eligible configuration "
                    "(plain broker, no tenant mix, no world dynamics, no "
                    "active adaptive policy)"
                )
            if eligible:
                table = job_table if job_table is not None else JobTable.from_jobs(jobs)
                self.job_generator = FlatDispatcher(
                    self, self.broker, table, records=self.records
                )
                self.fast_path_active = True
        if not self.fast_path_active:
            self.job_generator = JobGenerator(self, self.broker, jobs, records=self.records)

        #: The world-dynamics runtime (``None`` for plain static runs).
        self.scenario_engine = None
        if self.scenario is not None:
            from repro.dynamics import ScenarioEngine

            self.scenario_engine = ScenarioEngine(self, self.scenario)
            self.scenario_engine.install()

        #: The adaptive-QoS runtime (``None`` when no adaptive policy is set;
        #: a static policy builds the engine but installs nothing).
        self.adaptive_engine = None
        if self.adaptive_policy is not None:
            from repro.adaptive import AdaptiveEngine

            self.adaptive_engine = AdaptiveEngine(self, self.adaptive_policy)
            self.adaptive_engine.install()

        self.job_generator.start()

    # -- running -----------------------------------------------------------------
    def _jobs_complete_watcher(self) -> Generator[object, object, None]:
        """DES process that finishes once every submitted job has finished."""
        yield self.job_generator.process
        yield self.job_generator.all_jobs_done()

    def run_until_complete(self) -> List[JobRecord]:
        """Run the simulation until every job has been processed.

        Returns the completed job records (failed jobs are excluded; they are
        listed in ``broker.failed_jobs``).

        Scenarios with perpetual event sources (drift, stochastic outages)
        keep the event queue populated forever, so those runs stop on an
        all-jobs-finished event instead of queue exhaustion; plain runs keep
        the historical drain-the-queue behaviour (byte-identical results).
        """
        perpetual = (
            self.scenario_engine is not None and self.scenario_engine.perpetual
        ) or (self.adaptive_engine is not None and self.adaptive_engine.perpetual)
        if perpetual:
            self.run(until=self.process(self._jobs_complete_watcher()))
        else:
            self.run()
        return self.records.completed_records

    # -- tracing -------------------------------------------------------------------
    def save_trace(self, path: str) -> str:
        """Dump the run's workload and applied world events to a JSONL trace.

        The trace replays deterministically via
        :func:`repro.dynamics.load_trace`; see :mod:`repro.dynamics.trace`.
        """
        from repro.dynamics import save_trace

        return save_trace(self, path)

    # -- results -------------------------------------------------------------------
    @property
    def completed_records(self) -> List[JobRecord]:
        """Records of all completed jobs so far."""
        return self.records.completed_records

    def summary(self, strategy: Optional[str] = None) -> StrategySummary:
        """Aggregate the completed jobs into one row of Table 2."""
        name = strategy if strategy is not None else getattr(self.policy, "name", "custom")
        return summarize_records(self.completed_records, strategy=name)

    def tenant_reports(self) -> list:
        """Per-tenant SLO reports (multi-tenant serving runs only).

        Raises ``RuntimeError`` when no tenant mix is configured — per-tenant
        accounting needs the serve broker's tenant attribution.
        """
        if self.tenant_mix is None:
            raise RuntimeError(
                "tenant_reports() needs a multi-tenant run; set SimulationConfig.tenants "
                "(e.g. 'single' or 'free-tier-vs-premium') or pass tenants=..."
            )
        return self.broker.tenant_reports()

    def adaptive_report(self) -> dict:
        """Control-plane snapshot (adaptive runs only).

        Raises ``RuntimeError`` when no adaptive policy is configured.
        """
        if self.adaptive_engine is None:
            raise RuntimeError(
                "adaptive_report() needs an adaptive run; set "
                "SimulationConfig.adaptive (e.g. 'reactive' or 'predictive') "
                "or pass adaptive=..."
            )
        return self.adaptive_engine.report()

    def device_utilization_report(self) -> dict:
        """Per-device execution statistics (sub-jobs completed, qubit-seconds)."""
        return {
            device.name: {
                "completed_subjobs": device.completed_subjobs,
                "busy_time": device.busy_time,
                "qubit_seconds": device.qubit_seconds,
                "free_qubits": device.free_qubits,
                "aborted_subjobs": device.aborted_subjobs,
                "outages": device.outage_count,
            }
            for device in self.cloud.devices
        }
