"""The broker: the unified allocation workflow (paper §5.1, Algorithm 1).

For every incoming job the broker

1. asks the configured allocation policy for a device-selection / partition
   plan based on the *current* fleet state (Algorithm 1, lines 3-5),
2. reserves the planned qubits on each selected device (lines 6-7),
3. launches the sub-jobs in parallel and waits for all of them (line 8),
4. performs the blocking classical communication between dependent sub-jobs
   (lines 10-12),
5. computes the final fidelity with the communication penalty (line 13),
6. releases the qubits and logs completion (line 14).

Planning and reservation happen inside a FIFO admission critical section so
that concurrent jobs never race for the same free qubits (which would make
plans infeasible or deadlock the reservation step).  If no feasible plan
exists at admission time the broker waits for the cloud's capacity-released
signal and re-plans.

Non-stationary scenarios (:mod:`repro.dynamics`) extend the workflow: the
broker only plans over *online* devices, and when a device outage kills a
job's in-flight sub-jobs (they come back ``aborted``) the broker releases
every reservation, signals the freed capacity and requeues the job from the
planning step, up to ``max_requeues`` attempts.

Checkpointed preemption (``checkpointing=True``) makes those requeues cheap:
an aborted attempt records how many shots every sub-job completed (the
job-level checkpoint is the *minimum* across fragments — shots are only
usable once every fragment has executed them in lock-step), and the requeued
job re-plans and executes **only the remaining shots**.  The final fidelity
becomes the shot-weighted merge of the per-segment Eq.-8 values, each
segment evaluated on its own device allocation (a resumed attempt may land
on entirely different devices).  With checkpointing off — the default —
every path is byte-identical to full re-execution.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Tuple

from repro.cloud.qcloud import QCloud
from repro.cloud.qdevice import IBMQuantumDevice, SubJobResult
from repro.cloud.qjob import QJob, QJobStatus
from repro.cloud.records import JobRecord, JobRecordsManager
from repro.des.environment import Environment
from repro.des.events import Process
from repro.metrics.fidelity import FidelityBreakdown, final_fidelity, merge_segment_fidelities

__all__ = ["Broker", "CustomBroker"]


class _JobRun:
    """Cross-attempt state of one job's plan/reserve/execute cycles.

    Tracks what today's stateless attempts lose on abort: when the job first
    started executing, how much time its attempts have consumed, and — under
    checkpointing — the shots (with their fidelity breakdowns) completed by
    aborted attempts.
    """

    __slots__ = ("first_start", "service_time", "completed_shots", "segments")

    def __init__(self) -> None:
        #: Simulation time the first execution attempt started (None = never).
        self.first_start: Optional[float] = None
        #: Cumulative time spent in execution attempts (aborted attempts'
        #: elapsed wall-clock plus the completing attempt, comm included).
        self.service_time = 0.0
        #: Shots completed and checkpointed by aborted attempts.
        self.completed_shots = 0
        #: One ``(shots, breakdowns)`` pair per checkpointed attempt.
        self.segments: List[Tuple[int, List[FidelityBreakdown]]] = []


class Broker:
    """Mediates between job requests and quantum devices.

    Parameters
    ----------
    env:
        Simulation environment.
    cloud:
        The device fleet.
    policy:
        An allocation policy (anything exposing ``plan(job, devices)`` and a
        ``name`` attribute — see :class:`repro.scheduling.base.AllocationPolicy`).
    records:
        Job records manager used for life-cycle logging.
    max_plan_attempts:
        Safety valve: a job fails after this many unsuccessful re-planning
        rounds (prevents infinite waits for jobs that can never fit).
    max_requeues:
        Safety valve: a job fails after this many outage-triggered requeues.
    checkpointing:
        Save each aborted attempt's completed shots and resume requeued jobs
        with only the remainder (shot-weighted fidelity merge across
        attempts).  Off by default: requeued jobs re-execute from scratch,
        byte-identical to the historical behaviour.
    """

    def __init__(
        self,
        env: Environment,
        cloud: QCloud,
        policy: Any,
        records: JobRecordsManager,
        max_plan_attempts: int = 100_000,
        max_requeues: int = 100,
        checkpointing: bool = False,
    ) -> None:
        if not hasattr(policy, "plan"):
            raise TypeError("policy must expose a plan(job, devices) method")
        self.env = env
        self.cloud = cloud
        self.policy = policy
        self.records = records
        self.max_plan_attempts = int(max_plan_attempts)
        self.max_requeues = int(max_requeues)
        self.checkpointing = bool(checkpointing)
        #: Processes of all submitted jobs (used to wait for completion).
        self.job_processes: List[Process] = []
        #: Jobs that could never be allocated.
        self.failed_jobs: List[QJob] = []

    # -- public API ---------------------------------------------------------------
    def submit(self, job: QJob) -> Process:
        """Submit a job: starts its handling process and returns it."""
        job.status = QJobStatus.QUEUED
        process = self.env.process(self._handle_job(job))
        self.job_processes.append(process)
        return process

    # -- Algorithm 1 -----------------------------------------------------------------
    def _handle_job(self, job: QJob) -> Generator[object, object, Optional[JobRecord]]:
        """DES process implementing the unified allocation workflow for one job.

        The plan/reserve/execute cycle repeats when a device outage aborts
        the job's sub-jobs mid-flight: reservations are released and the job
        re-enters planning (counted in the completed record's ``retries``).
        """
        if not self.cloud.can_ever_fit(job.num_qubits):
            job.status = QJobStatus.FAILED
            self.failed_jobs.append(job)
            self.records.log_failure(job.job_id, self.env.now, "exceeds total cloud capacity")
            self._note_failed(job)
            return None

        retries = 0
        run = _JobRun()
        while True:
            plan = yield from self._plan_and_reserve(job)
            if plan is None:
                return None  # permanently failed (logged inside)
            record = yield from self._execute_plan(job, plan, retries, run)
            if record is not None:
                return record
            # An outage (or a preemption) killed at least one sub-job:
            # requeue and re-plan, up to the starvation guard.
            retries += 1
            if retries > self.max_requeues:
                job.status = QJobStatus.FAILED
                self.failed_jobs.append(job)
                self.records.log_failure(
                    job.job_id,
                    self.env.now,
                    f"exceeded requeue limit ({self.max_requeues}) after outages/preemptions",
                )
                self._note_failed(job)
                return None
            job.status = QJobStatus.QUEUED
            self._note_requeued(job, retries)

    def _plan_and_reserve(self, job: QJob) -> Generator[object, object, Optional[Any]]:
        """Plan the job over the online fleet and reserve the planned qubits
        (FIFO admission critical section); ``None`` means the job failed."""
        with self.cloud.admission.request() as admission:
            yield admission
            attempts = 0
            while True:
                plan = self.policy.plan(job, self.cloud.online_devices)
                if plan is not None:
                    if plan.total_qubits != job.num_qubits:
                        raise RuntimeError(
                            f"policy {self.policy.name!r} allocated {plan.total_qubits} qubits "
                            f"for a job needing {job.num_qubits}"
                        )
                    if not plan.is_feasible_now():
                        raise RuntimeError(
                            f"policy {self.policy.name!r} returned an infeasible plan for job "
                            f"{job.job_id}"
                        )
                    break
                attempts += 1
                if attempts >= self.max_plan_attempts:
                    job.status = QJobStatus.FAILED
                    self.failed_jobs.append(job)
                    self.records.log_failure(job.job_id, self.env.now, "no feasible allocation")
                    self._note_failed(job)
                    return None
                # Wait until some other job releases qubits (or a device
                # comes back online), then re-plan.
                yield self.cloud.capacity_released

            # Reserve the planned qubits.  The plan is feasible right now and
            # we still hold the admission token, so these all succeed
            # immediately and atomically at the current simulation time.
            reservations = [
                alloc.device.request_qubits(alloc.num_qubits) for alloc in plan.allocations
            ]
            yield self.env.all_of(reservations)
        return plan

    def _execute_plan(
        self, job: QJob, plan: Any, retries: int, run: _JobRun
    ) -> Generator[object, object, Optional[JobRecord]]:
        """Execute a reserved plan; ``None`` means an outage or preemption
        aborted it (the reservations have been released and the job should be
        requeued).  *run* carries the job's cross-attempt state: timing
        attribution always, checkpointed shots when checkpointing is on."""
        start_time = self.env.now
        if run.first_start is None:
            run.first_start = start_time
        job.status = QJobStatus.RUNNING
        self.records.log_start(
            job.job_id, start_time, detail=",".join(plan.device_names)
        )

        # Under checkpointing a resumed attempt executes only the shots its
        # aborted predecessors did not complete.
        remaining_shots = job.num_shots - run.completed_shots
        circuit = job.circuit
        if run.completed_shots > 0:
            self.records.log_resume(
                job.job_id,
                start_time,
                detail=f"{remaining_shots}/{job.num_shots} shots remaining",
            )
            circuit = circuit.with_shots(remaining_shots)

        fragments = [
            circuit.subcircuit(alloc.num_qubits, name=f"{job.circuit.name}@{alloc.device.name}")
            for alloc in plan.allocations
        ]
        # Resolved once per attempt so the decision stays consistent between
        # launch and a mid-attempt abort even if the policy flips meanwhile.
        checkpointing = self._checkpoint_for(job)
        sub_processes = [
            self.env.process(
                alloc.device.execute(
                    fragment, plan.num_devices, job.num_qubits,
                    checkpoint=checkpointing,
                )
            )
            for alloc, fragment in zip(plan.allocations, fragments)
        ]
        self._register_running(job, plan, sub_processes)
        results_map = yield self.env.all_of(sub_processes)
        results: List[SubJobResult] = [results_map[p] for p in sub_processes]

        if any(result.aborted for result in results):
            self._unregister_running(job)
            run.service_time += self.env.now - start_time
            if checkpointing:
                # Shots are usable only once *every* fragment has executed
                # them (lock-step semantics), so checkpoint the minimum.
                completed = min(result.completed_shots for result in results)
                if completed > 0:
                    run.completed_shots += completed
                    run.segments.append(
                        (completed, [r.fidelity_breakdown for r in results])
                    )
                    self.records.log_checkpoint(
                        job.job_id,
                        self.env.now,
                        detail=f"{run.completed_shots}/{job.num_shots} shots",
                    )
            for alloc in plan.allocations:
                alloc.device.release_qubits(alloc.num_qubits)
            self.cloud.signal_capacity_change()
            return None

        # -- inter-device classical communication ------------------------------------
        comm_delay = self.cloud.communication.communication_delay(plan.qubit_counts)
        if comm_delay > 0:
            job.status = QJobStatus.COMMUNICATING
            yield self.env.timeout(comm_delay)

        # -- final fidelity (Eq. 8; shot-weighted across checkpoint segments) -----------
        phi = self.cloud.communication.fidelity_penalty
        final_breakdowns = [r.fidelity_breakdown for r in results]
        if run.segments:
            segments = run.segments + [(remaining_shots, final_breakdowns)]
            fidelity = merge_segment_fidelities(
                [(shots, [b.device for b in bds]) for shots, bds in segments], phi=phi
            )
            breakdowns = [b for _, bds in segments for b in bds]
        else:
            device_fidelities = [r.fidelity_breakdown.device for r in results]
            fidelity = final_fidelity(device_fidelities, phi=phi)
            breakdowns = final_breakdowns

        # -- release qubits & log completion --------------------------------------------
        self._unregister_running(job)
        for alloc in plan.allocations:
            alloc.device.release_qubits(alloc.num_qubits)
        finish_time = self.env.now
        run.service_time += finish_time - start_time
        job.status = QJobStatus.COMPLETED
        self.records.log_fidelity(job.job_id, finish_time, fidelity)
        self.records.log_finish(job.job_id, finish_time)

        record = JobRecord(
            job_id=job.job_id,
            num_qubits=job.num_qubits,
            depth=job.depth,
            num_shots=job.num_shots,
            arrival_time=job.arrival_time,
            start_time=start_time,
            finish_time=finish_time,
            fidelity=fidelity,
            communication_time=comm_delay,
            num_devices=plan.num_devices,
            devices=plan.device_names,
            allocation=plan.qubit_counts,
            processing_time=max(r.processing_time for r in results),
            breakdowns=breakdowns,
            retries=retries,
            tenant=job.tenant,
            first_start_time=run.first_start,
            service_time=run.service_time,
            resumed_shots=run.completed_shots,
        )
        self.records.add_record(record)
        self._note_completed(job, record)
        self.cloud.notify_capacity_released()
        return record

    def _checkpoint_for(self, job: QJob) -> bool:
        """Whether *job*'s next execution attempt should checkpoint.

        Defaults to the configured flag; the adaptive control plane's
        :class:`~repro.adaptive.controllers.ProactiveCheckpointer` overrides
        this per-broker-instance to arm checkpointing ahead of predicted
        outage/rush windows.
        """
        return self.checkpointing

    # -- life-cycle hooks (no-ops here; the serve broker keeps its tenant and
    # preemption bookkeeping in sync through these without perturbing the
    # default workflow) ----------------------------------------------------------
    def _register_running(self, job: QJob, plan: Any, sub_processes: List[Process]) -> None:
        """Called when a job's sub-jobs have been launched."""

    def _unregister_running(self, job: QJob) -> None:
        """Called when a job's sub-jobs have finished or aborted."""

    def _note_requeued(self, job: QJob, retries: int) -> None:
        """Called when an aborted job re-enters the planning queue."""
        self.records.log_requeue(job.job_id, self.env.now, detail=f"attempt {retries}")

    def _note_failed(self, job: QJob) -> None:
        """Called when a job terminally fails (after the failure is logged)."""

    def _note_completed(self, job: QJob, record: JobRecord) -> None:
        """Called when a job completes (after its record is stored)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} policy={getattr(self.policy, 'name', '?')!r}>"


class CustomBroker(Broker):
    """Extension point for user-defined brokers.

    Subclasses can override :meth:`_handle_job` (or smaller hooks added by the
    user) to implement custom orchestration — e.g. batching, preemption or
    deadline-aware admission — while reusing the device/communication
    machinery.  The class exists mainly to mirror the framework description in
    §3 ("Users may create a CustomBroker by extending the abstract Broker
    class").
    """
