"""Quantum-cloud simulation framework (paper §3).

This subpackage models the components of Fig. 3/Fig. 4 of the paper:

* :class:`~repro.cloud.qjob.QJob` — a quantum job (circuit + metadata),
* :class:`~repro.cloud.qdevice.BaseQDevice` /
  :class:`~repro.cloud.qdevice.QuantumDevice` /
  :class:`~repro.cloud.qdevice.IBMQuantumDevice` — simulated QPUs with qubit
  containers, coupling maps, CLOPS and calibration-derived error scores,
* :class:`~repro.cloud.qcloud.QCloud` — the device fleet, large-circuit
  allocation and inter-device communication,
* :class:`~repro.cloud.broker.Broker` — mediates between job requests and
  devices, executing the unified allocation workflow (Algorithm 1),
* :class:`~repro.cloud.job_generator.JobGenerator` — synthetic / CSV / JSON
  job sources,
* :class:`~repro.cloud.records.JobRecordsManager` — job life-cycle tracking,
* :class:`~repro.cloud.environment.QCloudSimEnv` — the top-level simulation
  environment tying everything together.
"""

from repro.cloud.broker import Broker, CustomBroker
from repro.cloud.communication import ClassicalCommunicationModel
from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv
from repro.cloud.job_generator import JobGenerator
from repro.cloud.qcloud import QCloud
from repro.cloud.qdevice import BaseQDevice, IBMQuantumDevice, QuantumDevice
from repro.cloud.qjob import QJob, QJobStatus
from repro.cloud.records import JobEvent, JobRecord, JobRecordsManager

__all__ = [
    "BaseQDevice",
    "Broker",
    "ClassicalCommunicationModel",
    "CustomBroker",
    "IBMQuantumDevice",
    "JobEvent",
    "JobGenerator",
    "JobRecord",
    "JobRecordsManager",
    "QCloud",
    "QCloudSimEnv",
    "QJob",
    "QJobStatus",
    "QuantumDevice",
    "SimulationConfig",
]
