"""Event types for the discrete-event simulation kernel.

The design follows SimPy's event model:

* An :class:`Event` may be *pending*, *triggered* (it has a value and is
  scheduled in the environment's queue) or *processed* (its callbacks have
  been executed).
* :class:`Timeout` events trigger themselves a fixed delay after creation.
* :class:`Process` wraps a Python generator.  Each value the generator yields
  must be an event; the process is resumed when that event is processed.  The
  process itself is an event that triggers when the generator terminates.
* :class:`Condition` (and its helpers :class:`AllOf` / :class:`AnyOf`) compose
  several events into one.
"""

from __future__ import annotations

from types import GeneratorType
from typing import Any, Callable, Iterable, List, Optional

from repro.des.exceptions import Interrupt

__all__ = [
    "PENDING",
    "URGENT",
    "NORMAL",
    "Event",
    "Timeout",
    "Initialize",
    "Interruption",
    "Process",
    "ConditionValue",
    "Condition",
    "AllOf",
    "AnyOf",
]


#: Sentinel for the value of an event that has not been triggered yet.
PENDING = object()

#: Scheduling priority for urgent (internal) events.
URGENT = 0
#: Scheduling priority for normal events.
NORMAL = 1


class Event:
    """A single event that may happen at some point in simulated time.

    Events are the communication mechanism between processes and the
    environment.  An event

    * may be *triggered* with :meth:`succeed`/:meth:`fail` (or by a subclass),
      which schedules it in the environment,
    * collects *callbacks* which are invoked when the environment processes
      the event,
    * carries a *value* (the value passed to :meth:`succeed`, or the exception
      passed to :meth:`fail`).

    Processes obtain the value of an event by yielding it::

        value = yield some_event

    Events are created in very large numbers on the simulation hot path, so
    the core event classes declare ``__slots__``; subclasses that need extra
    attributes (e.g. the resource request events) may simply omit
    ``__slots__`` and fall back to a normal instance ``__dict__``.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Any") -> None:
        self.env = env
        #: Callables invoked when the event is processed.  ``None`` once the
        #: event has been processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    def __repr__(self) -> str:
        detail = self._desc()
        state = "pending"
        if self.triggered:
            state = "triggered"
        if self.processed:
            state = "processed"
        return f"<{detail} object ({state}) at {id(self):#x}>"

    def _desc(self) -> str:
        return self.__class__.__name__

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """``True`` if the event has a value and is (or was) scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """``True`` once all callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded, ``False`` if it failed.

        Raises :class:`AttributeError` if the event is not yet triggered.
        """
        if self._value is PENDING:
            raise AttributeError(f"Value of {self!r} is not yet available")
        return self._ok

    @property
    def defused(self) -> bool:
        """``True`` if a failed event's exception has been handled.

        A failed event whose exception is never handled (i.e. no process
        yields it and nobody sets ``defused``) crashes the simulation when it
        is processed.
        """
        return self._defused

    @defused.setter
    def defused(self, value: bool) -> None:
        self._defused = bool(value)

    @property
    def value(self) -> Any:
        """Value of the event (or the exception for a failed event)."""
        if self._value is PENDING:
            raise AttributeError(f"Value of {self!r} is not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state and value of *event*.

        Used to forward the outcome of one event to another (e.g. when a
        condition event forwards its result).
        """
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with the given *value*."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with *exception* as its value."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    # -- composition ------------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])


class Timeout(Event):
    """An event that triggers automatically after *delay* time units."""

    __slots__ = ("_delay",)

    def __init__(self, env: "Any", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"Negative delay {delay}")
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, priority=NORMAL, delay=delay)

    def _desc(self) -> str:
        return f"{self.__class__.__name__}({self._delay})"

    @property
    def delay(self) -> float:
        """The delay this timeout was created with."""
        return self._delay


class Initialize(Event):
    """Initializes a process; scheduled immediately on process creation."""

    __slots__ = ()

    def __init__(self, env: "Any", process: "Process") -> None:
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class Interruption(Event):
    """Immediately schedules an :class:`Interrupt` to be thrown into a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        self.callbacks = [self._interrupt]
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True

        if process._value is not PENDING:
            raise RuntimeError(f"{process!r} has terminated and cannot be interrupted")
        if process is self.env.active_process:
            raise RuntimeError("A process is not allowed to interrupt itself")

        self.process = process
        self.env.schedule(self, priority=URGENT)

    def _interrupt(self, event: "Event") -> None:
        process = self.process
        if process._value is not PENDING:
            # Process terminated before the interrupt could be delivered.
            return
        # Detach the process from whatever event it was waiting for, then
        # resume it with the interrupt as a failed event.
        if process._target is not None and process._target.callbacks is not None:
            process._target.callbacks.remove(process._resume)
        process._resume(self)


class Process(Event):
    """A process wraps a generator and is resumed by the events it yields.

    The process itself is an event: it triggers with the generator's return
    value once the generator terminates (or with the exception if the
    generator raised).  Other processes can therefore wait for a process to
    finish by yielding it.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Any", generator: GeneratorType) -> None:
        if not hasattr(generator, "throw"):
            raise ValueError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event the process is currently waiting for.
        self._target: Optional[Event] = Initialize(env, self)

    def _desc(self) -> str:
        return f"{self.__class__.__name__}({self.name})"

    @property
    def name(self) -> str:
        """Name of the wrapped generator function."""
        return self._generator.__name__  # type: ignore[attr-defined]

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting for (or ``None``)."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """``True`` until the wrapped generator terminates."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Interrupt the process by throwing :class:`Interrupt` into it."""
        Interruption(self, cause)

    # -- internal ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Resume the generator with the outcome of *event*."""
        self.env._active_proc = self
        while True:
            try:
                if event._ok:
                    event = self._generator.send(event._value)
                else:
                    # The process has "handled" the failure by observing it.
                    event._defused = True
                    exc = type(event._value)(*event._value.args)
                    exc.__cause__ = event._value
                    event = self._generator.throw(exc)
            except StopIteration as exc:
                # Generator finished: the process event succeeds.
                event = None  # type: ignore[assignment]
                self._ok = True
                self._value = exc.args[0] if exc.args else None
                self.env.schedule(self)
                break
            except BaseException as exc:
                # Generator raised: the process event fails.
                event = None  # type: ignore[assignment]
                self._ok = False
                self._value = exc
                self.env.schedule(self)
                break

            # The generator yielded a new event to wait for.
            try:
                if event.callbacks is not None:
                    # The event is not yet processed: register and go to sleep.
                    event.callbacks.append(self._resume)
                    break
                # The event was already processed: loop and resume immediately
                # with its value.
            except AttributeError:
                if not hasattr(event, "callbacks"):
                    raise RuntimeError(f"Invalid yield value {event!r}") from None
                raise

        self._target = event
        self.env._active_proc = None


class ConditionValue:
    """Result of a :class:`Condition`: an ordered mapping of event -> value."""

    __slots__ = ("events",)

    def __init__(self, *events: Event) -> None:
        self.events: List[Event] = list(events)

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(str(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"

    def __iter__(self):
        return iter(self.keys())

    def keys(self) -> Iterable[Event]:
        return iter(self.events)

    def values(self) -> Iterable[Any]:
        return (event._value for event in self.events)

    def items(self) -> Iterable[tuple]:
        return ((event, event._value) for event in self.events)

    def todict(self) -> dict:
        """Return a plain ``dict`` mapping events to their values."""
        return {event: event._value for event in self.events}


class Condition(Event):
    """An event that triggers once *evaluate* is satisfied over *events*.

    The value of a condition is a :class:`ConditionValue` holding the values
    of all events that had triggered by the time the condition fired.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Any",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        if not self._events:
            # Immediately succeed with an empty value.
            self.succeed(ConditionValue())
            return

        for event in self._events:
            if event.env is not env:
                raise ValueError("Conditions may only span events of the same environment")

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

        # Register a callback to collect values once the condition triggers.
        assert self.callbacks is not None
        self.callbacks.append(self._build_value)

    def _desc(self) -> str:
        return f"{self.__class__.__name__}({self._evaluate.__name__}, {self._events})"

    def _populate_value(self, value: ConditionValue) -> None:
        """Recursively collect the values of all nested triggered events."""
        for event in self._events:
            if isinstance(event, Condition):
                event._populate_value(value)
            elif event.callbacks is None:
                value.events.append(event)

    def _build_value(self, event: Event) -> None:
        self._remove_check_callbacks()
        if event._ok:
            self._value = ConditionValue()
            self._populate_value(self._value)

    def _remove_check_callbacks(self) -> None:
        for event in self._events:
            if event.callbacks is not None and self._check in event.callbacks:
                event.callbacks.remove(self._check)
            if isinstance(event, Condition):
                event._remove_check_callbacks()

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            # Abort on the first failing event.
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(ConditionValue())

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        """``True`` once *all* events have triggered."""
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        """``True`` once at least one event has triggered."""
        return count > 0 or len(events) == 0


class AllOf(Condition):
    """Condition that triggers once all of *events* have triggered."""

    __slots__ = ()

    def __init__(self, env: "Any", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that triggers once any of *events* has triggered."""

    __slots__ = ()

    def __init__(self, env: "Any", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)
