"""Discrete-event simulation kernel.

This subpackage is a from-scratch, dependency-free replacement for the subset
of SimPy that the paper's simulation framework relies on:

* :class:`~repro.des.environment.Environment` — the event loop and simulation
  clock,
* generator-based :class:`~repro.des.events.Process` objects,
* :class:`~repro.des.events.Timeout`, :class:`~repro.des.events.Event`,
  :class:`~repro.des.events.AllOf` / :class:`~repro.des.events.AnyOf`
  composite conditions,
* shared resources: :class:`~repro.des.resources.resource.Resource`,
  :class:`~repro.des.resources.resource.PriorityResource`,
  :class:`~repro.des.resources.container.Container` (used to model QPU qubit
  pools) and :class:`~repro.des.resources.store.Store` /
  :class:`~repro.des.resources.store.FilterStore` /
  :class:`~repro.des.resources.store.PriorityStore`.

The public API mirrors SimPy's so that code written against SimPy (such as the
quantum-cloud layer in :mod:`repro.cloud`) ports over with only the import
changed.

Example
-------
>>> from repro import des
>>> env = des.Environment()
>>> def clock(env, results):
...     while True:
...         results.append(env.now)
...         yield env.timeout(1)
>>> ticks = []
>>> _ = env.process(clock(env, ticks))
>>> env.run(until=3)
>>> ticks
[0, 1, 2]
"""

from repro.des.environment import Environment
from repro.des.events import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    Initialize,
    Interruption,
    Process,
    Timeout,
)
from repro.des.exceptions import Interrupt, SimulationError, StopSimulation
from repro.des.monitoring import PeriodicSampler, trace_events
from repro.des.resources.container import Container
from repro.des.resources.resource import PreemptiveResource, PriorityResource, Resource
from repro.des.resources.store import FilterStore, PriorityItem, PriorityStore, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "Container",
    "Environment",
    "Event",
    "FilterStore",
    "Initialize",
    "Interrupt",
    "Interruption",
    "PeriodicSampler",
    "PreemptiveResource",
    "PriorityItem",
    "PriorityResource",
    "Process",
    "Resource",
    "SimulationError",
    "StopSimulation",
    "Store",
    "Timeout",
    "trace_events",
]
