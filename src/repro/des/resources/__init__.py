"""Shared-resource primitives for the DES kernel (SimPy-compatible)."""

from repro.des.resources.base import BaseResource, Get, Put
from repro.des.resources.container import Container, ContainerGet, ContainerPut
from repro.des.resources.resource import (
    PreemptiveResource,
    Preempted,
    PriorityRequest,
    PriorityResource,
    Release,
    Request,
    Resource,
)
from repro.des.resources.store import (
    FilterStore,
    FilterStoreGet,
    PriorityItem,
    PriorityStore,
    Store,
    StoreGet,
    StorePut,
)

__all__ = [
    "BaseResource",
    "Container",
    "ContainerGet",
    "ContainerPut",
    "FilterStore",
    "FilterStoreGet",
    "Get",
    "Preempted",
    "PreemptiveResource",
    "PriorityItem",
    "PriorityRequest",
    "PriorityResource",
    "Put",
    "Release",
    "Request",
    "Resource",
    "Store",
    "StoreGet",
    "StorePut",
]
