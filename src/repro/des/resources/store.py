"""Object stores (SimPy ``Store`` family).

Stores hold arbitrary Python objects.  They are used by the quantum-cloud
layer to model per-device job queues and classical message channels between
QPUs.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, TYPE_CHECKING

from repro.des.resources.base import BaseResource, Get, Put

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.environment import Environment

__all__ = [
    "StorePut",
    "StoreGet",
    "FilterStoreGet",
    "Store",
    "FilterStore",
    "PriorityItem",
    "PriorityStore",
]


class StorePut(Put):
    """Request to put *item* into a :class:`Store`."""

    def __init__(self, store: "Store", item: Any) -> None:
        self.item = item
        super().__init__(store)


class StoreGet(Get):
    """Request to take any item out of a :class:`Store`."""


class FilterStoreGet(StoreGet):
    """Request to take an item matching *filter* out of a :class:`FilterStore`."""

    def __init__(self, store: "FilterStore", filter: Callable[[Any], bool] = lambda item: True) -> None:
        self.filter = filter
        super().__init__(store)


class Store(BaseResource):
    """A store of arbitrary objects with optional bounded capacity."""

    put = StorePut
    get = StoreGet

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        super().__init__(env, capacity)
        #: Items currently held by the store.
        self.items: List[Any] = []

    def _do_put(self, event: StorePut) -> Optional[bool]:
        if len(self.items) < self._capacity:
            self.items.append(event.item)
            event.succeed()
        return None

    def _do_get(self, event: StoreGet) -> Optional[bool]:
        if self.items:
            event.succeed(self.items.pop(0))
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.__class__.__name__} items={len(self.items)}>"


class FilterStore(Store):
    """A store from which items are retrieved by a filter predicate.

    ``get(lambda item: ...)`` returns the first item (FIFO order) matching the
    predicate.  Unlike :class:`Store`, a pending get does not block gets
    queued behind it whose filters match other items.
    """

    get = FilterStoreGet

    def _do_get(self, event: FilterStoreGet) -> Optional[bool]:
        for item in self.items:
            if event.filter(item):
                self.items.remove(item)
                event.succeed(item)
                break
        return True


class PriorityItem:
    """Wrap an arbitrary *item* with an orderable *priority*.

    Smaller priorities are retrieved first from a :class:`PriorityStore`.
    """

    __slots__ = ("priority", "item")

    def __init__(self, priority: Any, item: Any) -> None:
        self.priority = priority
        self.item = item

    def __lt__(self, other: "PriorityItem") -> bool:
        return self.priority < other.priority

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PriorityItem):
            return NotImplemented
        return self.priority == other.priority and self.item == other.item

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PriorityItem(priority={self.priority!r}, item={self.item!r})"


class PriorityStore(Store):
    """A store that hands out items in priority order (smallest first)."""

    def _do_put(self, event: StorePut) -> Optional[bool]:
        if len(self.items) < self._capacity:
            # Insert keeping the list sorted (stable for equal priorities).
            item = event.item
            lo, hi = 0, len(self.items)
            while lo < hi:
                mid = (lo + hi) // 2
                if item < self.items[mid]:
                    hi = mid
                else:
                    lo = mid + 1
            self.items.insert(lo, item)
            event.succeed()
        return None

    def _do_get(self, event: StoreGet) -> Optional[bool]:
        if self.items:
            event.succeed(self.items.pop(0))
        return None
