"""Base classes for shared resources.

A resource mediates access between processes via two event types:

* :class:`Put` — a request to add something to the resource (capacity, an
  item, an amount),
* :class:`Get` — a request to take something out.

Both queue up on the resource and are triggered by the resource's
``_do_put`` / ``_do_get`` hooks as capacity becomes available.  The scheme is
identical to SimPy's ``simpy.resources.base``.
"""

from __future__ import annotations

from typing import Any, List, Optional, TYPE_CHECKING

from repro.des.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.environment import Environment

__all__ = ["Put", "Get", "BaseResource"]


class Put(Event):
    """Generic request to put something into a *resource*.

    The event can be used as a context manager::

        with resource.put(item) as request:
            yield request

    which cancels the request automatically if the process is interrupted
    while waiting.
    """

    def __init__(self, resource: "BaseResource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.proc = resource.env.active_process
        resource.put_queue.append(self)
        assert self.callbacks is not None
        self.callbacks.append(resource._trigger_get)
        resource._trigger_put(None)

    def __enter__(self) -> "Put":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Withdraw the request if it has not been triggered yet."""
        if not self.triggered:
            self.resource.put_queue.remove(self)


class Get(Event):
    """Generic request to get something out of a *resource*."""

    def __init__(self, resource: "BaseResource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.proc = resource.env.active_process
        resource.get_queue.append(self)
        assert self.callbacks is not None
        self.callbacks.append(resource._trigger_put)
        resource._trigger_get(None)

    def __enter__(self) -> "Get":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Withdraw the request if it has not been triggered yet."""
        if not self.triggered:
            self.resource.get_queue.remove(self)


class BaseResource:
    """Abstract base of all resources.

    Subclasses implement :meth:`_do_put` and :meth:`_do_get`, which try to
    satisfy a single queued request and trigger it on success.
    """

    #: Event class used for put requests.
    PutQueue = list
    #: Event class used for get requests.
    GetQueue = list

    put = Put
    get = Get

    def __init__(self, env: "Environment", capacity: float) -> None:
        self._env = env
        self._capacity = capacity
        self.put_queue: List[Put] = self.PutQueue()
        self.get_queue: List[Get] = self.GetQueue()
        # Bind the put/get event constructors to this instance.
        self.put = lambda *args, **kwargs: type(self).put(self, *args, **kwargs)  # type: ignore[assignment]
        self.get = lambda *args, **kwargs: type(self).get(self, *args, **kwargs)  # type: ignore[assignment]

    @property
    def env(self) -> "Environment":
        """The environment this resource lives in."""
        return self._env

    @property
    def capacity(self) -> float:
        """Maximum capacity of the resource."""
        return self._capacity

    # -- hooks to implement in subclasses -----------------------------------
    def _do_put(self, event: Put) -> Optional[bool]:
        raise NotImplementedError(self)

    def _do_get(self, event: Get) -> Optional[bool]:
        raise NotImplementedError(self)

    # -- queue pumping -------------------------------------------------------
    def _trigger_put(self, get_event: Optional[Get]) -> None:
        """Try to satisfy queued put requests (called after every get)."""
        idx = 0
        while idx < len(self.put_queue):
            put_event = self.put_queue[idx]
            proceed = self._do_put(put_event)
            if not put_event.triggered:
                idx += 1
            elif self.put_queue.pop(idx) != put_event:  # pragma: no cover - invariant
                raise RuntimeError("Put queue invariant violated")
            if proceed is False:
                break

    def _trigger_get(self, put_event: Optional[Put]) -> None:
        """Try to satisfy queued get requests (called after every put)."""
        idx = 0
        while idx < len(self.get_queue):
            get_event = self.get_queue[idx]
            proceed = self._do_get(get_event)
            if not get_event.triggered:
                idx += 1
            elif self.get_queue.pop(idx) != get_event:  # pragma: no cover - invariant
                raise RuntimeError("Get queue invariant violated")
            if proceed is False:
                break

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.__class__.__name__} capacity={self._capacity}>"

    # Keep unbound class-level references available for subclass overriding.
    _do_put.__doc__ = "Satisfy *event* if possible; return False to stop pumping the queue."
    _do_get.__doc__ = "Satisfy *event* if possible; return False to stop pumping the queue."
