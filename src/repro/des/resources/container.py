"""Continuous/discrete level containers (SimPy ``Container``).

The quantum-cloud layer uses one container per QPU to model its pool of free
qubits: allocating ``a_i`` qubits to a sub-job is a ``get(a_i)``, and
releasing them at job completion is a ``put(a_i)``.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING, Union

from repro.des.resources.base import BaseResource, Get, Put

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.environment import Environment

__all__ = ["ContainerPut", "ContainerGet", "Container"]

Number = Union[int, float]


class ContainerPut(Put):
    """Request to put *amount* of matter into a :class:`Container`."""

    def __init__(self, container: "Container", amount: Number) -> None:
        if amount <= 0:
            raise ValueError(f"amount (={amount}) must be > 0")
        self.amount = amount
        super().__init__(container)


class ContainerGet(Get):
    """Request to take *amount* of matter out of a :class:`Container`."""

    def __init__(self, container: "Container", amount: Number) -> None:
        if amount <= 0:
            raise ValueError(f"amount (={amount}) must be > 0")
        self.amount = amount
        super().__init__(container)


class Container(BaseResource):
    """A resource holding a continuous or discrete amount of matter.

    Parameters
    ----------
    env:
        The owning environment.
    capacity:
        Maximum level (default: unbounded).
    init:
        Initial level (default ``0``).
    """

    put = ContainerPut
    get = ContainerGet

    def __init__(
        self,
        env: "Environment",
        capacity: Number = float("inf"),
        init: Number = 0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        if init < 0:
            raise ValueError("init must be >= 0")
        if init > capacity:
            raise ValueError("init must be <= capacity")
        super().__init__(env, capacity)
        self._level: Number = init

    @property
    def level(self) -> Number:
        """Current amount of matter in the container."""
        return self._level

    def _do_put(self, event: ContainerPut) -> Optional[bool]:
        if self._capacity - self._level >= event.amount:
            self._level += event.amount
            event.succeed()
            return True
        return None

    def _do_get(self, event: ContainerGet) -> Optional[bool]:
        if self._level >= event.amount:
            self._level -= event.amount
            event.succeed()
            return True
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Container level={self._level}/{self._capacity}>"
