"""Resources with a fixed number of usage slots (SimPy ``Resource`` family)."""

from __future__ import annotations

from typing import Any, List, Optional, TYPE_CHECKING

from repro.des.resources.base import BaseResource, Get, Put
from repro.des.exceptions import Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.environment import Environment

__all__ = [
    "Request",
    "Release",
    "PriorityRequest",
    "Preempted",
    "Resource",
    "PriorityResource",
    "PreemptiveResource",
    "SortedQueue",
]


class Preempted:
    """Cause of an :class:`~repro.des.exceptions.Interrupt` due to preemption."""

    def __init__(self, by: Any, usage_since: float, resource: "Resource") -> None:
        #: The preempting request's process.
        self.by = by
        #: Simulation time at which the preempted process acquired the resource.
        self.usage_since = usage_since
        #: The resource on which preemption happened.
        self.resource = resource

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Preempted(by={self.by!r}, usage_since={self.usage_since}, resource={self.resource!r})"


class Request(Put):
    """Request one usage slot of a :class:`Resource`.

    Usable as a context manager so the slot is released automatically::

        with resource.request() as req:
            yield req
            ...  # use the resource
    """

    #: Time at which the request succeeded (set by the resource).
    usage_since: Optional[float] = None

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        super().__exit__(exc_type, exc_value, traceback)
        if self.triggered:
            self.resource.release(self)

    def cancel(self) -> None:
        if not self.triggered:
            self.resource.put_queue.remove(self)


class Release(Get):
    """Release a usage slot previously acquired with :class:`Request`."""

    def __init__(self, resource: "Resource", request: Request) -> None:
        self.request = request
        super().__init__(resource)


class PriorityRequest(Request):
    """Request a slot with a *priority* (smaller = more important).

    Ties are broken by request time, then by preemption flag.
    """

    def __init__(self, resource: "Resource", priority: int = 0, preempt: bool = True) -> None:
        self.priority = priority
        self.preempt = preempt
        self.time = resource.env.now
        #: Sort key used by :class:`SortedQueue`.
        self.key = (self.priority, self.time, not self.preempt)
        super().__init__(resource)


class SortedQueue(list):
    """A list kept sorted by the items' ``key`` attribute."""

    def __init__(self, maxlen: Optional[int] = None) -> None:
        super().__init__()
        self.maxlen = maxlen

    def append(self, item: Any) -> None:
        if self.maxlen is not None and len(self) >= self.maxlen:
            raise RuntimeError("Cannot append event. Queue is full.")
        super().append(item)
        super().sort(key=lambda e: e.key)


class Resource(BaseResource):
    """A resource with ``capacity`` usage slots.

    Processes :meth:`request` a slot, use it, and :meth:`release` it.  Pending
    requests are granted in FIFO order.
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        super().__init__(env, capacity)
        #: Requests currently holding a slot.
        self.users: List[Request] = []
        #: Alias for the put queue (pending requests).
        self.queue = self.put_queue
        self.request = lambda *a, **kw: type(self)._request_cls(self, *a, **kw)  # type: ignore[assignment]
        self.release = lambda *a, **kw: type(self)._release_cls(self, *a, **kw)  # type: ignore[assignment]

    _request_cls = Request
    _release_cls = Release

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    def _do_put(self, event: Request) -> Optional[bool]:
        if len(self.users) < self.capacity:
            self.users.append(event)
            event.usage_since = self.env.now
            event.succeed()
            return None
        # Every slot is taken: no later request can be granted either (all
        # requests claim one identical slot), so stop pumping the queue.
        # Keeps each release O(1) instead of O(queue depth) when arrival
        # storms park thousands of requests — grant order is unchanged.
        return False

    def _do_get(self, event: Release) -> None:
        try:
            self.users.remove(event.request)
        except ValueError:
            pass
        event.succeed()


class PriorityResource(Resource):
    """A :class:`Resource` that grants pending requests by priority."""

    PutQueue = SortedQueue
    GetQueue = list

    _request_cls = PriorityRequest

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        super().__init__(env, capacity)


class PreemptiveResource(PriorityResource):
    """A :class:`PriorityResource` where higher-priority requests may preempt.

    If a request with ``preempt=True`` arrives while all slots are taken and
    the lowest-priority user has strictly lower priority, that user's process
    is interrupted with a :class:`Preempted` cause and evicted.
    """

    users: List[PriorityRequest]

    def _do_put(self, event: PriorityRequest) -> None:
        if len(self.users) >= self.capacity and event.preempt:
            # Find the user with the *worst* key (largest), if any is worse
            # than the incoming request.
            preempt = sorted(self.users, key=lambda e: e.key)[-1]
            if preempt.key > event.key:
                self.users.remove(preempt)
                if preempt.proc is not None:
                    preempt.proc.interrupt(
                        Preempted(
                            by=event.proc,
                            usage_since=preempt.usage_since,
                            resource=self,
                        )
                    )
        return super()._do_put(event)
