"""Monitoring utilities for the DES kernel.

SimPy-style monitoring: trace every event the environment processes, or
sample a quantity (queue length, container level, device utilisation) at a
fixed period.  The quantum-cloud layer uses these to record fleet-utilisation
time series for post-simulation analysis without touching the simulation
logic itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.des.environment import Environment
from repro.des.events import Event

__all__ = ["trace_events", "EventLoopStats", "PeriodicSampler"]


def trace_events(
    env: Environment, callback: Callable[[float, int, Event], None]
) -> Callable[[], None]:
    """Invoke *callback(time, priority, event)* for every event processed.

    The callback is installed as the environment's trace hook (which also
    disables the inlined fast-path event loop while active); the returned
    function removes it again.  Nested calls chain: every installed callback
    fires, and each ``undo`` restores the hook that was active before its
    ``trace_events`` call.

    Example
    -------
    >>> env = Environment()
    >>> log = []
    >>> undo = trace_events(env, lambda t, prio, ev: log.append((t, type(ev).__name__)))
    >>> _ = env.timeout(3)
    >>> env.run()
    >>> log
    [(3, 'Timeout')]
    """
    previous = env._trace

    if previous is None:
        hook = callback
    else:

        def hook(time: float, priority: int, event: Event) -> None:
            previous(time, priority, event)
            callback(time, priority, event)

    env._trace = hook

    def undo() -> None:
        env._trace = previous

    return undo


@dataclass(frozen=True)
class EventLoopStats:
    """Snapshot of the environment's event-loop counters.

    The counters accumulate from environment construction (or the last
    :meth:`~repro.des.environment.Environment.rewind`) and cost one integer
    update per drained batch, so they are always on.  ``events_per_second``
    is only available when the caller also measured wall-clock time —
    simulated time says nothing about loop throughput.
    """

    #: Events dispatched by the loop.
    events_processed: int
    #: Same-``(time, priority)`` batches drained.
    batches_processed: int
    #: Largest number of events dispatched in one batch.
    max_batch_size: int
    #: Largest event-queue depth observed before a batch pop.
    peak_queue_size: int
    #: Wall-clock event throughput (``None`` unless a duration was supplied).
    events_per_second: Optional[float] = None

    @classmethod
    def from_env(
        cls, env: Environment, wall_seconds: Optional[float] = None
    ) -> "EventLoopStats":
        """Read the counters off *env*, optionally deriving events/s."""
        events = env.events_processed
        rate = None
        if wall_seconds is not None and wall_seconds > 0:
            rate = events / wall_seconds
        return cls(
            events_processed=events,
            batches_processed=env.batches_processed,
            max_batch_size=env.max_batch_size,
            peak_queue_size=env.peak_queue_size,
            events_per_second=rate,
        )

    @property
    def mean_batch_size(self) -> float:
        """Average events per drained batch (0.0 before any event)."""
        if not self.batches_processed:
            return 0.0
        return self.events_processed / self.batches_processed

    def as_dict(self) -> Dict[str, Any]:
        """Flat JSON-safe view (used by ``--stats`` and the scale bench)."""
        payload: Dict[str, Any] = {
            "events_processed": self.events_processed,
            "batches_processed": self.batches_processed,
            "mean_batch_size": self.mean_batch_size,
            "max_batch_size": self.max_batch_size,
            "peak_queue_size": self.peak_queue_size,
        }
        if self.events_per_second is not None:
            payload["events_per_second"] = self.events_per_second
        return payload


class PeriodicSampler:
    """Samples a callable at a fixed simulated period.

    Parameters
    ----------
    env:
        The environment to run in.
    probe:
        Zero-argument callable returning the value to record (e.g.
        ``lambda: cloud.free_qubits``).
    period:
        Sampling period in simulated time units.
    start_immediately:
        Take the first sample at the current time (default) rather than after
        one period.

    The collected ``(time, value)`` pairs are available as :attr:`samples`.
    The sampler stops automatically when the simulation runs out of events
    only if other processes are still scheduled; call :meth:`stop` to end it
    explicitly (otherwise ``env.run()`` without an ``until`` would never
    terminate).
    """

    def __init__(
        self,
        env: Environment,
        probe: Callable[[], Any],
        period: float,
        start_immediately: bool = True,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.env = env
        self.probe = probe
        self.period = float(period)
        self.samples: List[Tuple[float, Any]] = []
        self._running = True
        self._start_immediately = bool(start_immediately)
        self.process = env.process(self._run())

    def _run(self):
        if self._start_immediately:
            self.samples.append((self.env.now, self.probe()))
        while self._running:
            yield self.env.timeout(self.period)
            if not self._running:
                break
            self.samples.append((self.env.now, self.probe()))

    def stop(self) -> None:
        """Stop sampling after the current period elapses."""
        self._running = False

    @property
    def times(self) -> List[float]:
        """Sample timestamps."""
        return [t for t, _ in self.samples]

    @property
    def values(self) -> List[Any]:
        """Sampled values."""
        return [v for _, v in self.samples]
