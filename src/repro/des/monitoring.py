"""Monitoring utilities for the DES kernel.

SimPy-style monitoring: trace every event the environment processes, or
sample a quantity (queue length, container level, device utilisation) at a
fixed period.  The quantum-cloud layer uses these to record fleet-utilisation
time series for post-simulation analysis without touching the simulation
logic itself.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.des.environment import Environment
from repro.des.events import Event

__all__ = ["trace_events", "PeriodicSampler"]


def trace_events(
    env: Environment, callback: Callable[[float, int, Event], None]
) -> Callable[[], None]:
    """Invoke *callback(time, priority, event)* for every event processed.

    The callback is installed as the environment's trace hook (which also
    disables the inlined fast-path event loop while active); the returned
    function removes it again.  Nested calls chain: every installed callback
    fires, and each ``undo`` restores the hook that was active before its
    ``trace_events`` call.

    Example
    -------
    >>> env = Environment()
    >>> log = []
    >>> undo = trace_events(env, lambda t, prio, ev: log.append((t, type(ev).__name__)))
    >>> _ = env.timeout(3)
    >>> env.run()
    >>> log
    [(3, 'Timeout')]
    """
    previous = env._trace

    if previous is None:
        hook = callback
    else:

        def hook(time: float, priority: int, event: Event) -> None:
            previous(time, priority, event)
            callback(time, priority, event)

    env._trace = hook

    def undo() -> None:
        env._trace = previous

    return undo


class PeriodicSampler:
    """Samples a callable at a fixed simulated period.

    Parameters
    ----------
    env:
        The environment to run in.
    probe:
        Zero-argument callable returning the value to record (e.g.
        ``lambda: cloud.free_qubits``).
    period:
        Sampling period in simulated time units.
    start_immediately:
        Take the first sample at the current time (default) rather than after
        one period.

    The collected ``(time, value)`` pairs are available as :attr:`samples`.
    The sampler stops automatically when the simulation runs out of events
    only if other processes are still scheduled; call :meth:`stop` to end it
    explicitly (otherwise ``env.run()`` without an ``until`` would never
    terminate).
    """

    def __init__(
        self,
        env: Environment,
        probe: Callable[[], Any],
        period: float,
        start_immediately: bool = True,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.env = env
        self.probe = probe
        self.period = float(period)
        self.samples: List[Tuple[float, Any]] = []
        self._running = True
        self._start_immediately = bool(start_immediately)
        self.process = env.process(self._run())

    def _run(self):
        if self._start_immediately:
            self.samples.append((self.env.now, self.probe()))
        while self._running:
            yield self.env.timeout(self.period)
            if not self._running:
                break
            self.samples.append((self.env.now, self.probe()))

    def stop(self) -> None:
        """Stop sampling after the current period elapses."""
        self._running = False

    @property
    def times(self) -> List[float]:
        """Sample timestamps."""
        return [t for t, _ in self.samples]

    @property
    def values(self) -> List[Any]:
        """Sampled values."""
        return [v for _, v in self.samples]
