"""Exceptions raised by the discrete-event simulation kernel."""

from __future__ import annotations

from typing import Any


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel itself."""


class StopSimulation(Exception):
    """Raised inside :meth:`repro.des.environment.Environment.run` to stop.

    The environment registers this exception as a callback on the ``until``
    event; when that event is processed the exception propagates out of the
    event loop and ``run()`` returns the event's value.
    """

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value

    @classmethod
    def callback(cls, event: "Any") -> None:
        """Event callback that stops the simulation with the event's value."""
        if event.ok:
            raise cls(event.value)
        # Propagate failures out of ``run()`` as-is.
        event.defused = True
        raise event.value


class Interrupt(Exception):
    """Raised into a process when :meth:`Process.interrupt` is called.

    Parameters
    ----------
    cause:
        Arbitrary object describing why the process was interrupted.  It is
        available as :attr:`cause` inside the interrupted process.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interrupt({self.cause!r})"
