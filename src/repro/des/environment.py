"""The simulation environment: clock, event queue and event loop."""

from __future__ import annotations

import heapq
from itertools import count
from types import GeneratorType
from typing import Any, Iterable, List, Optional, Tuple, Union

from repro.des.events import NORMAL, PENDING, AllOf, AnyOf, Event, Process, Timeout
from repro.des.exceptions import SimulationError, StopSimulation

__all__ = ["Environment", "EmptySchedule"]

#: Sentinel returned by :meth:`Environment.peek` when the queue is empty.
Infinity = float("inf")


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no more events are scheduled."""


class Environment:
    """Execution environment for an event-driven simulation.

    The environment keeps the current simulation time (:attr:`now`), a
    priority queue of scheduled events, and offers factory methods for the
    common event types (:meth:`timeout`, :meth:`process`, :meth:`event`,
    :meth:`all_of`, :meth:`any_of`).

    Event ordering is deterministic: events scheduled for the same time are
    processed in ``(priority, insertion order)`` order.

    Parameters
    ----------
    initial_time:
        Simulation time to start the clock at (default ``0``).
    """

    def __init__(self, initial_time: float = 0) -> None:
        self._now: float = initial_time
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_proc: Optional[Process] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Environment now={self._now} queued={len(self._queue)}>"

    # -- state -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (or ``None``)."""
        return self._active_proc

    @property
    def queue_size(self) -> int:
        """Number of events currently scheduled."""
        return len(self._queue)

    # -- event factories -----------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered :class:`~repro.des.events.Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`~repro.des.events.Timeout` firing after *delay*."""
        return Timeout(self, delay, value)

    def process(self, generator: GeneratorType) -> Process:
        """Start a new :class:`~repro.des.events.Process` from *generator*."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Create a condition triggering when all *events* have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Create a condition triggering when any of *events* has triggered."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0) -> None:
        """Schedule *event* to be processed after *delay* time units."""
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._eid), event))

    def peek(self) -> float:
        """Return the time of the next scheduled event (``inf`` if none)."""
        return self._queue[0][0] if self._queue else Infinity

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`EmptySchedule` if no event is scheduled.  If the event
        failed and its exception was never *defused* (nobody waited for it),
        the exception is re-raised here and crashes the simulation — mirroring
        SimPy's behaviour so programming errors inside processes surface.
        """
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("No scheduled events left") from None

        callbacks, event.callbacks = event.callbacks, None
        # ``callbacks`` may be None if the event was already processed (this
        # should never happen because events are only scheduled once).
        for callback in callbacks or ():
            callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise SimulationError(f"Event {event!r} failed with non-exception {exc!r}")

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` — run until the event queue is exhausted,
            * a number — run until the clock reaches that time,
            * an :class:`~repro.des.events.Event` — run until that event has
              been processed and return its value.

        Returns
        -------
        The value of the ``until`` event, if one was given.
        """
        if until is not None and not isinstance(until, Event):
            # Interpret as a point in time.
            at = float(until)
            if at <= self._now:
                raise ValueError(f"until (={at}) must be greater than the current time")
            until = Event(self)
            until._ok = True
            until._value = None
            # Schedule with URGENT priority so that the simulation stops
            # before normal events scheduled for exactly ``at``.
            self.schedule(until, priority=0, delay=at - self._now)
        elif until is not None:
            if until.callbacks is None:
                # Already processed: return its value immediately.
                return until.value

        if until is not None:
            assert until.callbacks is not None
            until.callbacks.append(StopSimulation.callback)

        try:
            while True:
                self.step()
        except StopSimulation as exc:
            return exc.value
        except EmptySchedule:
            if until is not None and until._value is PENDING:
                raise RuntimeError(
                    f"No scheduled events left but your simulation has not finished: {until!r}"
                ) from None
        return None

    def rewind(self, to_time: float = 0) -> None:
        """Reset the clock and drop all scheduled events.

        Convenience used by tests and by repeated benchmark runs; SimPy does
        not offer this but it is harmless because environments are cheap.
        """
        self._now = to_time
        self._queue.clear()
        self._active_proc = None
