"""The simulation environment: clock, event queue and event loop."""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from itertools import count
from types import GeneratorType
from typing import Any, Callable, Iterable, List, Optional, Tuple, Union

from repro.des.events import NORMAL, PENDING, AllOf, AnyOf, Event, Process, Timeout
from repro.des.exceptions import SimulationError, StopSimulation

__all__ = ["Environment", "EmptySchedule"]

#: Sentinel returned by :meth:`Environment.peek` when the queue is empty.
Infinity = float("inf")

#: Signature of an event-trace hook: ``(time, priority, event)``.
TraceCallback = Callable[[float, int, Event], None]


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no more events are scheduled."""


class Environment:
    """Execution environment for an event-driven simulation.

    The environment keeps the current simulation time (:attr:`now`), a
    priority queue of scheduled events, and offers factory methods for the
    common event types (:meth:`timeout`, :meth:`process`, :meth:`event`,
    :meth:`all_of`, :meth:`any_of`).

    Event ordering is deterministic: events scheduled for the same time are
    processed in ``(priority, insertion order)`` order.

    The event loop is the hottest code in the simulator, so the class uses
    ``__slots__`` and :meth:`run` drives an inlined step loop with the heap
    primitives pre-bound to locals.  Subclasses (e.g. the quantum-cloud
    environment) may freely add attributes — they fall back to a normal
    instance ``__dict__``.

    Parameters
    ----------
    initial_time:
        Simulation time to start the clock at (default ``0``).
    """

    __slots__ = (
        "_now",
        "_queue",
        "_eid",
        "_active_proc",
        "_trace",
        "_ev_count",
        "_batch_count",
        "_max_batch",
        "_peak_queue",
    )

    def __init__(self, initial_time: float = 0) -> None:
        self._now: float = initial_time
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_proc: Optional[Process] = None
        self._trace: Optional[TraceCallback] = None
        self._ev_count: int = 0
        self._batch_count: int = 0
        self._max_batch: int = 0
        self._peak_queue: int = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Environment now={self._now} queued={len(self._queue)}>"

    # -- state -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (or ``None``)."""
        return self._active_proc

    @property
    def queue_size(self) -> int:
        """Number of events currently scheduled."""
        return len(self._queue)

    # -- event-loop counters ---------------------------------------------------
    @property
    def events_processed(self) -> int:
        """Events dispatched by the loop since construction (or :meth:`rewind`)."""
        return self._ev_count

    @property
    def batches_processed(self) -> int:
        """Same-``(time, priority)`` batches drained by the loop."""
        return self._batch_count

    @property
    def max_batch_size(self) -> int:
        """Largest number of events dispatched in one batch."""
        return self._max_batch

    @property
    def peak_queue_size(self) -> int:
        """Largest event-queue depth observed before a batch pop."""
        return self._peak_queue

    # -- event factories -----------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered :class:`~repro.des.events.Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`~repro.des.events.Timeout` firing after *delay*."""
        return Timeout(self, delay, value)

    def timeout_at(self, time: float, value: Any = None) -> Timeout:
        """Create a :class:`~repro.des.events.Timeout` firing at absolute *time*."""
        if time < self._now:
            raise ValueError(f"time (={time}) lies in the past (now={self._now})")
        return Timeout(self, time - self._now, value)

    def process(self, generator: GeneratorType) -> Process:
        """Start a new :class:`~repro.des.events.Process` from *generator*."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Create a condition triggering when all *events* have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Create a condition triggering when any of *events* has triggered."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0) -> None:
        """Schedule *event* to be processed after *delay* time units."""
        heappush(self._queue, (self._now + delay, priority, next(self._eid), event))

    def schedule_at(self, event: Event, time: float, priority: int = NORMAL) -> None:
        """Schedule *event* at absolute simulation *time* (must not be in the past)."""
        if time < self._now:
            raise ValueError(f"time (={time}) lies in the past (now={self._now})")
        heappush(self._queue, (time, priority, next(self._eid), event))

    def schedule_batch(
        self, items: Iterable[Tuple[float, int, Event]]
    ) -> int:
        """Bulk-schedule many ``(time, priority, event)`` entries at once.

        Insertion order within the batch is preserved for same-time entries.
        When the batch is large relative to the queue the heap is rebuilt in
        one O(n + k) ``heapify`` instead of k O(log n) pushes — this is the
        fast path the job generator uses for arrival batches.

        Returns the number of scheduled events.
        """
        now = self._now
        eid = self._eid
        entries = [(float(time), priority, next(eid), event) for time, priority, event in items]
        for entry in entries:
            if entry[0] < now:
                raise ValueError(f"time (={entry[0]}) lies in the past (now={now})")
        queue = self._queue
        if len(entries) > 8 and 4 * len(entries) > len(queue):
            queue.extend(entries)
            heapify(queue)
        else:
            for entry in entries:
                heappush(queue, entry)
        return len(entries)

    def peek(self) -> float:
        """Return the time of the next scheduled event (``inf`` if none)."""
        return self._queue[0][0] if self._queue else Infinity

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`EmptySchedule` if no event is scheduled.  If the event
        failed and its exception was never *defused* (nobody waited for it),
        the exception is re-raised here and crashes the simulation — mirroring
        SimPy's behaviour so programming errors inside processes surface.
        """
        qlen = len(self._queue)
        if qlen > self._peak_queue:
            self._peak_queue = qlen
        try:
            self._now, priority, _, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule("No scheduled events left") from None
        self._ev_count += 1
        self._batch_count += 1
        if self._max_batch < 1:
            self._max_batch = 1

        if self._trace is not None:
            self._trace(self._now, priority, event)

        callbacks, event.callbacks = event.callbacks, None
        # ``callbacks`` may be None if the event was already processed (this
        # should never happen because events are only scheduled once).
        for callback in callbacks or ():
            callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise SimulationError(f"Event {event!r} failed with non-exception {exc!r}")

    def _run_fast(self) -> None:
        """Drain the queue with the heap primitives pre-bound to locals.

        Events sharing the head's ``(time, priority)`` are popped as one
        batch and their callbacks dispatched together: callbacks frequently
        schedule more work at the current timestamp, and draining the group
        in one sweep lets dispatchers coalesce their reaction into a single
        wake-up instead of one per event.  Dispatch order within a batch is
        the heap order (insertion order for same-time events), so results
        are identical to repeated :meth:`step` calls.

        The trace hook is re-checked every iteration (a slot load and an
        ``is`` test — negligible next to callback dispatch), so installing
        or removing :func:`~repro.des.monitoring.trace_events` mid-run takes
        effect immediately — any undispatched remainder of the current batch
        is pushed back (with its original sequence numbers) and re-processed
        through the traced :meth:`step` path.  The same push-back runs when a
        callback raises (e.g. ``StopSimulation`` from an ``until`` event), so
        a stopped simulation can be resumed without losing events.  Raises
        :class:`EmptySchedule` (queue drained) or :class:`StopSimulation`
        (an ``until`` event fired), exactly like repeated :meth:`step` calls.
        """
        queue = self._queue
        pop = heappop
        push = heappush
        step = self.step
        while True:
            if self._trace is not None:
                step()
                continue
            if not queue:
                raise EmptySchedule("No scheduled events left")
            qlen = len(queue)
            if qlen > self._peak_queue:
                self._peak_queue = qlen
            head = pop(queue)
            time = head[0]
            priority = head[1]
            self._now = time
            if not queue or queue[0][0] != time or queue[0][1] != priority:
                # Batch of one — the common case for workloads whose arrival
                # and completion times are all distinct.  Counters first
                # (the batch path counts an event before dispatching it),
                # then dispatch without the batch list or remainder
                # bookkeeping.
                self._ev_count += 1
                self._batch_count += 1
                if self._max_batch < 1:
                    self._max_batch = 1
                event = head[3]
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks or ():
                    callback(event)
                if not event._ok and not event._defused:
                    exc = event._value
                    if isinstance(exc, BaseException):
                        raise exc
                    raise SimulationError(
                        f"Event {event!r} failed with non-exception {exc!r}"
                    )
                continue
            batch = [head]
            while queue and queue[0][0] == time and queue[0][1] == priority:
                batch.append(pop(queue))
            size = len(batch)
            index = 0
            try:
                while index < size:
                    if self._trace is not None:
                        break
                    event = batch[index][3]
                    index += 1
                    callbacks, event.callbacks = event.callbacks, None
                    for callback in callbacks or ():
                        callback(event)
                    if not event._ok and not event._defused:
                        exc = event._value
                        if isinstance(exc, BaseException):
                            raise exc
                        raise SimulationError(
                            f"Event {event!r} failed with non-exception {exc!r}"
                        )
            finally:
                self._ev_count += index
                if index:
                    self._batch_count += 1
                    if index > self._max_batch:
                        self._max_batch = index
                for entry in batch[index:]:
                    push(queue, entry)

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` — run until the event queue is exhausted,
            * a number — run until the clock reaches that time (a value equal
              to the current time returns immediately),
            * an :class:`~repro.des.events.Event` — run until that event has
              been processed and return its value.

        Returns
        -------
        The value of the ``until`` event, if one was given.
        """
        if until is not None and not isinstance(until, Event):
            # Interpret as a point in time.
            at = float(until)
            if at < self._now:
                raise ValueError(f"until (={at}) must not be smaller than the current time")
            if at == self._now:
                # Nothing to do — the clock is already there (SimPy semantics;
                # repeated benchmark runs rely on this being a no-op).
                return None
            until = Event(self)
            until._ok = True
            until._value = None
            # Schedule with URGENT priority so that the simulation stops
            # before normal events scheduled for exactly ``at``.
            self.schedule(until, priority=0, delay=at - self._now)
        elif until is not None:
            if until.callbacks is None:
                # Already processed: return its value immediately.
                return until.value

        if until is not None:
            assert until.callbacks is not None
            until.callbacks.append(StopSimulation.callback)

        try:
            self._run_fast()
        except StopSimulation as exc:
            return exc.value
        except EmptySchedule:
            if until is not None and until._value is PENDING:
                raise RuntimeError(
                    f"No scheduled events left but your simulation has not finished: {until!r}"
                ) from None
        return None

    def rewind(self, to_time: float = 0) -> None:
        """Reset the clock and drop all scheduled events.

        Convenience used by tests and by repeated benchmark runs; SimPy does
        not offer this but it is harmless because environments are cheap.
        """
        self._now = to_time
        self._queue.clear()
        self._active_proc = None
        self._ev_count = 0
        self._batch_count = 0
        self._max_batch = 0
        self._peak_queue = 0
