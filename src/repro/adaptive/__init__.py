"""repro.adaptive — the closed-loop adaptive QoS control plane.

Senses queue depth, tail latency, utilisation and arrivals
(:mod:`~repro.adaptive.signals`), forecasts load online
(:mod:`~repro.adaptive.forecast`), and feeds both back into admission,
planning, pooling and checkpointing through ticked controllers
(:mod:`~repro.adaptive.controllers`) driven by one DES control loop
(:mod:`~repro.adaptive.engine`).  Select a policy with
``SimulationConfig(adaptive="reactive")`` or ``repro serve --adaptive
predictive``; ``adaptive=None`` (and the ``static`` preset) is
byte-identical to a run without the subsystem.
"""

from repro.adaptive.controllers import (
    AdaptiveAdmission,
    Controller,
    ElasticPooler,
    ProactiveCheckpointer,
    SLOAwarePlanner,
)
from repro.adaptive.engine import AdaptiveEngine
from repro.adaptive.forecast import OnlineArrivalForecaster
from repro.adaptive.signals import SignalBus, TenantSignals
from repro.adaptive.spec import (
    AdaptivePolicySpec,
    available_adaptive_policies,
    get_adaptive_policy,
    register_adaptive_policy,
    resolve_adaptive_policy,
)

__all__ = [
    "AdaptivePolicySpec",
    "AdaptiveEngine",
    "AdaptiveAdmission",
    "Controller",
    "ElasticPooler",
    "OnlineArrivalForecaster",
    "ProactiveCheckpointer",
    "SLOAwarePlanner",
    "SignalBus",
    "TenantSignals",
    "available_adaptive_policies",
    "get_adaptive_policy",
    "register_adaptive_policy",
    "resolve_adaptive_policy",
]
