"""The adaptive engine: the DES control loop driving the controllers.

:class:`AdaptiveEngine` is the runtime of one
:class:`~repro.adaptive.spec.AdaptivePolicySpec` inside one simulation.  At
install time it

1. attaches a :class:`~repro.adaptive.signals.SignalBus` to the broker
   (instance-level hook wrapping — an adaptive-less run is byte-identical
   because nothing is ever wrapped),
2. builds an :class:`~repro.adaptive.forecast.OnlineArrivalForecaster`
   (with a diurnal period hint when the scenario/tenant traffic declares
   one),
3. instantiates and installs the enabled controllers, and
4. starts one DES process that ticks every controller each
   ``tick_interval`` simulated seconds.

A ``static`` spec (no controllers) installs nothing at all — mirroring how
a static :class:`~repro.dynamics.engine.ScenarioEngine` installs no event
sources.  The control loop never consumes RNG, so seeded runs replay
bit-for-bit; in a multi-region simulation each shard builds its own engine
from the shared spec (one control loop per shard).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from repro.adaptive.controllers import (
    AdaptiveAdmission,
    Controller,
    ElasticPooler,
    ProactiveCheckpointer,
    SLOAwarePlanner,
)
from repro.adaptive.forecast import OnlineArrivalForecaster
from repro.adaptive.signals import SignalBus
from repro.adaptive.spec import AdaptivePolicySpec

__all__ = ["AdaptiveEngine"]


def _period_hint(env: Any) -> Optional[float]:
    """Diurnal period declared by the scenario (or any tenant's) traffic."""
    scenario = getattr(env, "scenario", None)
    traffic = getattr(scenario, "traffic", None) if scenario is not None else None
    if traffic is not None and getattr(traffic, "model", None) == "diurnal":
        return traffic.period
    mix = getattr(env.broker, "mix", None)
    if mix is not None:
        for tenant in mix.tenants:
            t = tenant.traffic
            if t is not None and getattr(t, "model", None) == "diurnal":
                return t.period
    return None


class AdaptiveEngine:
    """Runtime of one adaptive policy inside one simulation.

    Parameters
    ----------
    env:
        The :class:`~repro.cloud.environment.QCloudSimEnv` (duck-typed: any
        DES environment exposing ``broker``, ``cloud``, ``timeout`` and
        ``process``).
    spec:
        The resolved adaptive policy.
    """

    def __init__(self, env: Any, spec: AdaptivePolicySpec) -> None:
        self.env = env
        self.spec = spec
        self.ticks = 0
        self._installed = False
        self.forecaster = OnlineArrivalForecaster(
            window=spec.forecast_window,
            period=_period_hint(env),
        )
        self.signals = SignalBus(env, forecaster=self.forecaster)
        self.pooler: Optional[ElasticPooler] = None
        self.controllers: List[Controller] = []
        if not spec.is_static:
            if spec.adaptive_admission:
                self.controllers.append(AdaptiveAdmission(self))
            if spec.slo_planner:
                self.controllers.append(SLOAwarePlanner(self))
            if spec.elastic_pooling:
                self.pooler = ElasticPooler(self)
                self.controllers.append(self.pooler)
            if spec.proactive_checkpointing:
                self.controllers.append(ProactiveCheckpointer(self))

    # -- installation ---------------------------------------------------------
    @property
    def perpetual(self) -> bool:
        """Whether the control loop keeps the event queue non-empty forever."""
        return bool(self.controllers)

    def install(self) -> None:
        """Attach signals, install controllers and start the control loop.

        A static spec installs nothing — the run is byte-identical to one
        with no adaptive policy at all.  Idempotent.
        """
        if self._installed or not self.controllers:
            return
        self._installed = True
        self.signals.install()
        for controller in self.controllers:
            controller.install()
        self.env.process(self._control_loop())

    def _control_loop(self) -> Generator:
        interval = self.spec.tick_interval
        while True:
            yield self.env.timeout(interval)
            now = self.env.now
            for controller in self.controllers:
                controller.tick(now)
            self.ticks += 1

    # -- reporting ------------------------------------------------------------
    def report(self) -> Dict[str, object]:
        """Snapshot of the control plane: signals, forecast and decisions."""
        return {
            "policy": self.spec.name,
            "controllers": [c.kind for c in self.controllers],
            "ticks": self.ticks,
            "signals": self.signals.snapshot(),
            "forecast": self.forecaster.fitted(),
            "decisions": {c.kind: c.report() for c in self.controllers},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<AdaptiveEngine policy={self.spec.name!r} "
            f"controllers={[c.kind for c in self.controllers]} ticks={self.ticks}>"
        )
