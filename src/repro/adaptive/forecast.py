"""Online arrival-rate estimation and short-horizon forecasting.

The workload generators in :mod:`repro.workloads.arrivals` *produce*
non-stationary traffic (MMPP bursts, diurnal waves); this module fits them
back *online*, one observed arrival at a time, so controllers can act on
``predicted_rate(t, horizon)`` instead of the stale configured rate.

Two estimators compose :class:`OnlineArrivalForecaster`:

* **windowed MLE** — the Poisson rate over the trailing observation window
  (guarded by :func:`repro.workloads.arrivals.fit_window`), which tracks
  MMPP phase switches within a dwell time or two;
* **diurnal-phase profile** — when a period hint is available (e.g. from a
  diurnal :class:`~repro.dynamics.scenario.TrafficSpec`), arrivals are
  binned by phase ``t mod period`` and the per-bin empirical rates replay
  the daily wave; the forecaster prefers this profile once it has seen a
  full period.

Everything is O(1) memory (bounded deque + fixed bins) and deterministic —
no RNG is consumed, so attaching a forecaster never perturbs a seeded run.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.workloads.arrivals import fit_window

__all__ = ["OnlineArrivalForecaster"]

_EPS = 1e-9


class OnlineArrivalForecaster:
    """Fits arrival rates online; exposes ``rate`` / ``predicted_rate``.

    Parameters
    ----------
    window:
        Trailing observation window (simulated seconds) for the MLE rate.
    period:
        Optional diurnal period hint.  When set, a phase-binned profile is
        fitted alongside the windowed rate and used for prediction once a
        full period has been observed.
    bins:
        Number of phase bins for the diurnal profile.
    max_samples:
        Bound on retained arrival timestamps (oldest dropped first); only
        the trailing *window* matters, so this caps memory, not accuracy.
    """

    def __init__(
        self,
        window: float = 900.0,
        period: Optional[float] = None,
        bins: int = 24,
        max_samples: int = 4096,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if period is not None and period <= 0:
            raise ValueError("period must be positive when given")
        if bins < 2:
            raise ValueError("bins must be >= 2")
        self.window = float(window)
        self.period = float(period) if period is not None else None
        self.bins = int(bins)
        self._times: Deque[float] = deque(maxlen=max_samples)
        self._bin_counts = [0] * self.bins
        self.observations = 0
        self.first_time: Optional[float] = None
        self.last_time: Optional[float] = None

    def observe(self, t: float) -> None:
        """Record one arrival at simulated time *t* (monotone non-decreasing)."""
        t = float(t)
        self._times.append(t)
        self.observations += 1
        if self.first_time is None:
            self.first_time = t
        self.last_time = t
        if self.period is not None:
            self._bin_counts[int((t % self.period) / self.period * self.bins) % self.bins] += 1

    # -- estimation ---------------------------------------------------------

    def rate(self, now: float) -> float:
        """Windowed MLE arrival rate over ``[now - window, now]`` (jobs/s)."""
        return self._window_rate(now - self.window, now)

    def baseline_rate(self) -> float:
        """Long-run observed rate over the whole run so far (jobs/s)."""
        if self.first_time is None or self.last_time is None:
            return 0.0
        span = self.last_time - self.first_time
        if span <= _EPS:
            return 0.0
        return (self.observations - 1) / span

    def _window_rate(self, lo: float, hi: float) -> float:
        recent = [t for t in self._times if lo <= t <= hi]
        fitted = fit_window(recent, window_start=lo, window_end=hi)
        if fitted is not None:
            return fitted
        # Idle or near-idle window: fall back to the count-based estimate
        # (0 or 1 arrivals over the window width) instead of None.
        width = hi - lo
        if width <= _EPS:
            return 0.0
        return len(recent) / width

    # -- forecasting --------------------------------------------------------

    def predicted_rate(self, t: float, horizon: float) -> float:
        """Mean predicted arrival rate over ``[t, t + horizon]`` (jobs/s).

        Uses the diurnal phase profile when a period hint is set and at
        least one full period has been observed; otherwise extrapolates the
        trend between the two most recent observation windows, clamped at
        zero.
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.first_time is None or self.last_time is None:
            return 0.0
        span = self.last_time - self.first_time
        if (
            self.period is not None
            and span >= self.period
            and self.observations >= self.bins
        ):
            return self._profile_rate(t, horizon)
        now = self.last_time
        recent = self._window_rate(now - self.window, now)
        previous = self._window_rate(now - 2.0 * self.window, now - self.window)
        slope = (recent - previous) / self.window
        midpoint = t + horizon / 2.0
        return max(0.0, recent + slope * (midpoint - now))

    def _profile_rate(self, t: float, horizon: float) -> float:
        period = self.period
        assert period is not None and self.first_time is not None
        span = self.last_time - self.first_time  # type: ignore[operator]
        # Observed time per phase bin: full cycles plus the partial one.
        per_bin_time = span / self.bins
        if per_bin_time <= _EPS:
            return 0.0
        bin_width = period / self.bins
        # Average the per-bin rates across every bin the horizon touches.
        start_bin = int((t % period) / bin_width)
        touched = max(1, min(self.bins, int(horizon / bin_width) + 1))
        total = 0.0
        for offset in range(touched):
            total += self._bin_counts[(start_bin + offset) % self.bins]
        return total / (touched * per_bin_time)

    def is_rush(self, t: float, horizon: float, factor: float) -> bool:
        """True when the forecast over ``[t, t+horizon]`` exceeds *factor* ×
        the long-run baseline rate (a predicted rush window)."""
        base = self.baseline_rate()
        if base <= _EPS:
            return False
        return self.predicted_rate(t, horizon) >= factor * base

    def fitted(self) -> Dict[str, object]:
        """Snapshot of the fitted parameters (for reports / CLI)."""
        now = self.last_time if self.last_time is not None else 0.0
        return {
            "observations": self.observations,
            "window": self.window,
            "period": self.period,
            "baseline_rate": self.baseline_rate(),
            "recent_rate": self.rate(now),
        }
