"""The SignalBus: O(1) rolling metrics feeding the adaptive controllers.

Controllers never walk job lists or record managers — every signal they
read is maintained incrementally from three broker hooks (``submit``,
``_note_completed``, ``_note_failed``), wrapped per-instance at install
time so an adaptive-less run pays nothing.  Per-tenant queue-latency tails
come from the PR 6 P² sketches (:class:`repro.metrics.quantiles.P2Quantile`),
so a signal read is O(1) regardless of how many jobs have flowed through.

Signals exposed:

* per-tenant counters — submitted / admitted / shed / completed / failed,
  plus derived admission and shed *rates*;
* per-tenant (and global) rolling p95 queue latency;
* per-tenant queue depth (admission-controller queue when serving, else an
  in-flight counter);
* per-device utilisation and fleet-wide outage counts;
* a running mean service time (for outage-risk estimates).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.cloud.qjob import QJobStatus
from repro.metrics.quantiles import P2Quantile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.adaptive.forecast import OnlineArrivalForecaster

__all__ = ["TenantSignals", "SignalBus"]

#: Tenant key used for jobs without a tenant stamp (plain-broker runs).
UNTENANTED = "__untenanted__"


class TenantSignals:
    """Rolling per-tenant counters plus a streaming p95 wait sketch."""

    __slots__ = ("submitted", "admitted", "shed", "completed", "failed", "wait_p95")

    def __init__(self) -> None:
        self.submitted = 0
        self.admitted = 0
        self.shed = 0
        self.completed = 0
        self.failed = 0
        self.wait_p95 = P2Quantile(0.95)

    @property
    def shed_rate(self) -> float:
        """Fraction of submissions rejected at admission."""
        return self.shed / self.submitted if self.submitted else 0.0

    @property
    def admit_rate(self) -> float:
        """Fraction of submissions admitted."""
        return self.admitted / self.submitted if self.submitted else 0.0

    def as_dict(self) -> Dict[str, object]:
        p95 = self.wait_p95.value if self.wait_p95.count else None
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "failed": self.failed,
            "shed_rate": self.shed_rate,
            "wait_p95": p95,
        }


class SignalBus:
    """Collects broker/record signals for the control loop.

    ``install()`` wraps the broker's ``submit`` / ``_note_completed`` /
    ``_note_failed`` methods on the *instance* (the classes stay untouched),
    which is why a run without an adaptive policy is byte-identical: no
    wrapper exists to execute.
    """

    def __init__(self, env, forecaster: Optional["OnlineArrivalForecaster"] = None) -> None:
        self.env = env
        self.broker = env.broker
        self.forecaster = forecaster
        self.tenants: Dict[str, TenantSignals] = {}
        self.global_wait_p95 = P2Quantile(0.95)
        self._service_sum = 0.0
        self._service_count = 0
        self._installed = False

    # -- installation -------------------------------------------------------

    def install(self) -> None:
        """Wrap the broker hooks; idempotent."""
        if self._installed:
            return
        self._installed = True
        broker = self.broker

        orig_submit = broker.submit
        orig_completed = broker._note_completed
        orig_failed = broker._note_failed

        def submit(job):
            result = orig_submit(job)
            self._on_submit(job)
            return result

        def note_completed(job, record):
            orig_completed(job, record)
            self._on_completed(job, record)

        def note_failed(job):
            orig_failed(job)
            self._on_failed(job)

        broker.submit = submit
        broker._note_completed = note_completed
        broker._note_failed = note_failed

    # -- hook bodies --------------------------------------------------------

    def _tenant(self, name: Optional[str]) -> TenantSignals:
        key = name if name is not None else UNTENANTED
        sig = self.tenants.get(key)
        if sig is None:
            sig = self.tenants[key] = TenantSignals()
        return sig

    def _on_submit(self, job) -> None:
        sig = self._tenant(getattr(job, "tenant", None))
        sig.submitted += 1
        if job.status is QJobStatus.REJECTED:
            sig.shed += 1
        else:
            sig.admitted += 1
        if self.forecaster is not None:
            self.forecaster.observe(self.env.now)

    def _on_completed(self, job, record) -> None:
        sig = self._tenant(getattr(job, "tenant", None))
        sig.completed += 1
        wait = record.wait_time
        sig.wait_p95.add(wait)
        self.global_wait_p95.add(wait)
        self._service_sum += record.effective_service_time
        self._service_count += 1

    def _on_failed(self, job) -> None:
        self._tenant(getattr(job, "tenant", None)).failed += 1

    # -- queries ------------------------------------------------------------

    def queue_depth(self, tenant: Optional[str] = None) -> int:
        """Jobs admitted but not yet started for *tenant* (all when None)."""
        controller = getattr(self.broker, "admission_controller", None)
        if controller is not None:
            if tenant is not None:
                return controller.queued(tenant)
            return sum(
                controller.queued(name) for name in controller._queued
            )
        # Plain broker: in-flight counter (queued + running) as the proxy.
        if tenant is not None:
            sig = self.tenants.get(tenant)
            if sig is None:
                return 0
            return max(0, sig.admitted - sig.completed - sig.failed)
        return sum(
            max(0, s.admitted - s.completed - s.failed) for s in self.tenants.values()
        )

    def recent_p95(self, tenant: Optional[str] = None) -> Optional[float]:
        """Rolling p95 queue latency for *tenant* (global when None)."""
        if tenant is None:
            sketch = self.global_wait_p95
        else:
            sig = self.tenants.get(tenant)
            sketch = sig.wait_p95 if sig is not None else None
        if sketch is None or not sketch.count:
            return None
        return sketch.value

    def mean_service_time(self) -> Optional[float]:
        """Running mean job service time, or ``None`` before any completion."""
        if not self._service_count:
            return None
        return self._service_sum / self._service_count

    def device_utilization(self) -> Dict[str, float]:
        """Busy time per device relative to elapsed simulated time.

        Can exceed 1.0: devices multi-program jobs across their qubit
        capacity, so busy time accumulates per concurrent job.
        """
        now = self.env.now
        if now <= 0.0:
            return {d.name: 0.0 for d in self.env.cloud.devices}
        return {d.name: d.busy_time / now for d in self.env.cloud.devices}

    def outage_count(self) -> int:
        """Total outages observed across the fleet so far."""
        return sum(d.outage_count for d in self.env.cloud.devices)

    def snapshot(self) -> Dict[str, object]:
        """Full signal snapshot (for reports / CLI)."""
        return {
            "tenants": {name: sig.as_dict() for name, sig in sorted(self.tenants.items())},
            "queue_depth": self.queue_depth(),
            "global_wait_p95": self.recent_p95(),
            "mean_service_time": self.mean_service_time(),
            "device_utilization": self.device_utilization(),
            "outages": self.outage_count(),
        }
