"""The four closed-loop controllers ticked by the adaptive engine.

Each controller reads the :class:`~repro.adaptive.signals.SignalBus` (never
raw job lists), adjusts exactly one actuator, and records a trajectory of
its decisions so runs are auditable and replay-testable:

* :class:`AdaptiveAdmission` — AIMD adjustment of per-tenant token-bucket
  refill rates: multiplicative decrease on an SLO/backlog breach, additive
  increase while healthy, clamped to ``[floor, ceiling] × base rate``.
* :class:`SLOAwarePlanner` — a ``plan()`` wrapper around the configured
  allocation policy: deadline-pressured jobs are steered to the fastest
  subset of the fleet, fidelity-floored tenants to the lowest-error subset,
  falling back to the full fleet whenever the biased subset cannot host the
  job (liveness is never sacrificed for bias).
* :class:`ElasticPooler` — re-partitions the fleet into per-priority-class
  fidelity tiers sized by live demand, with hysteresis against flapping.
* :class:`ProactiveCheckpointer` — flips checkpointing on for jobs
  predicted to overlap an outage-risky or forecast rush window.

All controllers are deterministic: no RNG is consumed anywhere, so an
adaptive run under a fixed seed replays bit-for-bit.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Controller",
    "AdaptiveAdmission",
    "SLOAwarePlanner",
    "ElasticPooler",
    "ProactiveCheckpointer",
]

_EPS = 1e-12


class Controller(ABC):
    """One sense→decide→actuate loop, ticked by the adaptive engine."""

    #: Stable identifier used in reports and ``AdaptivePolicySpec.controller_names``.
    kind: str = "controller"

    def __init__(self, engine) -> None:
        self.engine = engine
        self.env = engine.env
        self.broker = engine.env.broker
        self.spec = engine.spec
        self.signals = engine.signals
        self.forecaster = engine.forecaster

    def install(self) -> None:
        """One-time wiring into the broker/environment (default: none)."""

    @abstractmethod
    def tick(self, now: float) -> None:
        """Run one control iteration at simulated time *now*."""

    def report(self) -> Dict[str, object]:
        """Decision counters/trajectories for analysis (default: empty)."""
        return {}


class AdaptiveAdmission(Controller):
    """AIMD token-rate control driven by queue depth and rolling p95."""

    kind = "adaptive-admission"

    def __init__(self, engine) -> None:
        super().__init__(engine)
        #: Per-tenant base (configured) rates — AIMD bounds are relative to these.
        self._base: Dict[str, float] = {}
        #: ``(time, tenant, new_rate)`` for every actuation, in tick order.
        self.trajectory: List[Tuple[float, str, float]] = []
        self.breaches = 0

    def install(self) -> None:
        controller = getattr(self.broker, "admission_controller", None)
        mix = getattr(self.broker, "mix", None)
        if controller is None or mix is None:
            return  # plain broker: nothing to actuate
        for tenant in mix.tenants:
            rate = controller.rate(tenant.name)
            if rate is not None:
                self._base[tenant.name] = rate

    def tick(self, now: float) -> None:
        if not self._base:
            return
        controller = self.broker.admission_controller
        mix = self.broker.mix
        spec = self.spec
        for name, base in self._base.items():
            current = controller.rate(name)
            if current is None:  # pragma: no cover - bucket removed externally
                continue
            slo = mix.tenant(name).slo
            p95 = self.signals.recent_p95(name)
            breach = (
                slo.queue_deadline is not None
                and p95 is not None
                and p95 > slo.queue_deadline
            ) or self.signals.queue_depth(name) > spec.queue_depth_high
            if breach:
                self.breaches += 1
                new = max(spec.aimd_floor * base, current * spec.aimd_decrease)
            else:
                new = min(spec.aimd_ceiling * base, current + spec.aimd_increase * base)
            if abs(new - current) > _EPS:
                controller.set_rate(name, new, now)
                self.trajectory.append((now, name, new))

    def report(self) -> Dict[str, object]:
        controller = getattr(self.broker, "admission_controller", None)
        rates = (
            {name: controller.rate(name) for name in sorted(self._base)}
            if controller is not None
            else {}
        )
        return {
            "breaches": self.breaches,
            "adjustments": len(self.trajectory),
            "rates": rates,
            "trajectory": list(self.trajectory),
        }


class SLOAwarePlanner(Controller):
    """A ``plan()`` wrapper biasing allocation by tenant SLO pressure.

    Installed by replacing ``broker.policy`` with this object; the wrapped
    policy does all actual planning, only the candidate device list is
    biased.  The elastic pooler's class pools (when enabled) are applied
    first, then SLO bias within the remaining candidates.
    """

    kind = "slo-planner"

    def __init__(self, engine) -> None:
        super().__init__(engine)
        self.inner = self.broker.policy
        self.latency_biased = 0
        self.fidelity_biased = 0
        self.pool_hits = 0
        self.pool_misses = 0
        #: Device-name → rank under each bias order, refreshed on ticks when
        #: the fleet's calibration actually moved.  ``plan()`` runs on the
        #: hot dispatch path and the control loop ticks far more often than
        #: calibration drifts, so the error scores are evaluated only when
        #: the cheap fingerprint below changes.
        self._rank_latency: Dict[str, int] = {}
        self._rank_fidelity: Dict[str, int] = {}
        self._rank_fingerprint: Optional[Tuple] = None

    @property
    def name(self) -> str:
        return f"adaptive({self.inner.name})"

    def install(self) -> None:
        self.broker.policy = self
        self._refresh_ranks()

    def tick(self, now: float) -> None:
        self._refresh_ranks()

    def _refresh_ranks(self) -> None:
        devices = self.env.cloud.devices
        fingerprint = tuple(
            (d.name, d.avg_readout_error, d.avg_single_qubit_error, d.avg_two_qubit_error)
            for d in devices
        )
        if fingerprint == self._rank_fingerprint:
            return
        self._rank_fingerprint = fingerprint
        by_speed = sorted(devices, key=lambda d: (-d.clops, d.name))
        self._rank_latency = {d.name: i for i, d in enumerate(by_speed)}
        by_error = sorted(devices, key=lambda d: (d.error_score(), d.name))
        self._rank_fidelity = {d.name: i for i, d in enumerate(by_error)}

    def plan(self, job, devices):
        devices = list(devices)
        pooler = self.engine.pooler
        if pooler is not None:
            pool = pooler.pool_for(job)
            if pool is not None:
                subset = [d for d in devices if d.name in pool]
                if subset:
                    plan = self.inner.plan(job, subset)
                    if plan is not None:
                        self.pool_hits += 1
                        return plan
                # Pool cannot host the job (offline/too small): fall through
                # to the full fleet rather than starve it.
                self.pool_misses += 1
        tenant = self._tenant_spec(job)
        if tenant is not None:
            slo = tenant.slo
            waited = self.env.now - job.arrival_time
            if (
                slo.queue_deadline is not None
                and waited >= self.spec.deadline_pressure * slo.queue_deadline
            ):
                plan = self._biased(job, devices, self._rank_latency)
                if plan is not None:
                    self.latency_biased += 1
                    return plan
            elif slo.fidelity_floor is not None:
                plan = self._biased(job, devices, self._rank_fidelity)
                if plan is not None:
                    self.fidelity_biased += 1
                    return plan
        return self.inner.plan(job, devices)

    def _biased(self, job, devices, ranks):
        k = max(1, math.ceil(self.spec.latency_pool_fraction * len(devices)))
        if k >= len(devices):
            return None  # no bias possible; let the unbiased fallback plan once
        # Devices unseen at the last rank refresh (e.g. freshly recovered)
        # sort to the back, deterministically by name, until the next tick.
        unseen = len(ranks)
        subset = sorted(devices, key=lambda d: (ranks.get(d.name, unseen), d.name))[:k]
        return self.inner.plan(job, subset)

    def _tenant_spec(self, job):
        mix = getattr(self.broker, "mix", None)
        tenant = getattr(job, "tenant", None)
        if mix is None or tenant is None:
            return None
        try:
            return mix.tenant(tenant)
        except KeyError:
            return None

    def report(self) -> Dict[str, object]:
        return {
            "inner_policy": self.inner.name,
            "latency_biased": self.latency_biased,
            "fidelity_biased": self.fidelity_biased,
            "pool_hits": self.pool_hits,
            "pool_misses": self.pool_misses,
        }


class ElasticPooler(Controller):
    """Demand-proportional fidelity-tier device pools with hysteresis.

    The fleet is sorted by error score (best first) and partitioned into
    one contiguous tier per priority class — the most important class gets
    the highest-fidelity tier.  Tier sizes follow live per-class demand
    (queued jobs, Laplace-smoothed) via largest-remainder apportionment,
    and only change when some tier would move by at least
    ``pool_hysteresis × fleet size`` devices (min 1).
    """

    kind = "elastic-pooler"

    def __init__(self, engine) -> None:
        super().__init__(engine)
        self.class_pools: Dict[int, Tuple[str, ...]] = {}
        #: ``(time, {class: size})`` for every re-partition.
        self.trajectory: List[Tuple[float, Dict[int, int]]] = []
        self.repartitions = 0
        self._classes: Tuple[int, ...] = ()
        self._tenants_by_class: Dict[int, Tuple[str, ...]] = {}

    def install(self) -> None:
        mix = getattr(self.broker, "mix", None)
        if mix is None or not mix.is_multiclass:
            return  # single class: one pool == the whole fleet, nothing to do
        self._classes = mix.priority_classes
        self._tenants_by_class = {
            cls: tuple(t.name for t in mix.tenants if t.priority_class == cls)
            for cls in self._classes
        }

    def tick(self, now: float) -> None:
        if not self._classes:
            return
        devices = sorted(self.env.cloud.devices, key=lambda d: (d.error_score(), d.name))
        n = len(devices)
        if n < len(self._classes):
            return
        demands = {
            cls: 1 + sum(self.signals.queue_depth(t) for t in self._tenants_by_class[cls])
            for cls in self._classes
        }
        sizes = self._apportion(demands, n)
        if self.class_pools:
            threshold = max(1, int(round(self.spec.pool_hysteresis * n)))
            drift = max(
                abs(sizes[cls] - len(self.class_pools.get(cls, ()))) for cls in self._classes
            )
            if drift < threshold:
                return
        pools: Dict[int, Tuple[str, ...]] = {}
        cursor = 0
        for cls in self._classes:  # most important class first → best tier
            pools[cls] = tuple(d.name for d in devices[cursor : cursor + sizes[cls]])
            cursor += sizes[cls]
        self.class_pools = pools
        self.repartitions += 1
        self.trajectory.append((now, dict(sizes)))

    def _apportion(self, demands: Dict[int, int], n: int) -> Dict[int, int]:
        """Largest-remainder apportionment of *n* devices, each class >= 1."""
        total = sum(demands.values())
        quotas = {cls: demands[cls] * n / total for cls in self._classes}
        sizes = {cls: max(1, int(quotas[cls])) for cls in self._classes}
        assigned = sum(sizes.values())
        while assigned > n:  # the max(1, ...) floors over-shot: shrink largest
            cls = max(self._classes, key=lambda c: (sizes[c], c))
            sizes[cls] -= 1
            assigned -= 1
        if assigned < n:
            remainders = sorted(
                self._classes,
                key=lambda c: (-(quotas[c] - int(quotas[c])), c),
            )
            for i in range(n - assigned):
                sizes[remainders[i % len(remainders)]] += 1
        return sizes

    def pool_for(self, job) -> Optional[Tuple[str, ...]]:
        """Device-name pool for *job*'s priority class (None = unpartitioned)."""
        if not self.class_pools:
            return None
        mix = getattr(self.broker, "mix", None)
        tenant = getattr(job, "tenant", None)
        if mix is None or tenant is None:
            return None
        try:
            return self.class_pools.get(mix.tenant(tenant).priority_class)
        except KeyError:
            return None

    def report(self) -> Dict[str, object]:
        return {
            "repartitions": self.repartitions,
            "pools": {str(cls): list(pool) for cls, pool in sorted(self.class_pools.items())},
            "trajectory": [(t, dict(s)) for t, s in self.trajectory],
        }


class ProactiveCheckpointer(Controller):
    """Flips checkpointing on ahead of predicted outage/rush windows.

    The broker consults :meth:`~repro.cloud.broker.Broker._checkpoint_for`
    once per execution attempt; this controller overrides it.  Risk is
    re-evaluated every tick: expected outages per job — ``max(observed,
    scenario-declared) outage rate × mean observed service time`` — above
    the spec threshold, or a forecast rush window (deep queues make aborted
    work expensive to redo), arms checkpointing for subsequent attempts.
    """

    kind = "proactive-checkpointer"

    def __init__(self, engine) -> None:
        super().__init__(engine)
        self._active = False
        self.flips = 0
        self.decisions = 0
        self.checkpointed = 0
        #: ``(time, active)`` for every flip.
        self.trajectory: List[Tuple[float, bool]] = []

    def install(self) -> None:
        self.broker._checkpoint_for = self._decide

    def tick(self, now: float) -> None:
        active = self._outage_risky(now) or (
            self.forecaster is not None
            and self.forecaster.is_rush(now, self.spec.forecast_horizon, self.spec.rush_factor)
        )
        if active != self._active:
            self._active = active
            self.flips += 1
            self.trajectory.append((now, active))

    def _outage_risky(self, now: float) -> bool:
        mean_service = self.signals.mean_service_time()
        if not mean_service or now <= 0.0:
            return False
        observed = self.signals.outage_count() / now
        rate = max(observed, self._declared_outage_rate())
        return rate * mean_service >= self.spec.outage_risk_threshold

    def _declared_outage_rate(self) -> float:
        scenario = getattr(self.env, "scenario", None)
        outages = getattr(scenario, "outages", None) if scenario is not None else None
        if outages is None:
            return 0.0
        n_failable = (
            len(outages.devices)
            if outages.devices is not None
            else len(self.env.cloud.devices)
        )
        return n_failable / outages.mtbf

    def _decide(self, job) -> bool:
        self.decisions += 1
        if self.broker.checkpointing:
            return True
        if self._active:
            self.checkpointed += 1
            return True
        return False

    def report(self) -> Dict[str, object]:
        return {
            "active": self._active,
            "flips": self.flips,
            "decisions": self.decisions,
            "checkpointed_attempts": self.checkpointed,
            "trajectory": list(self.trajectory),
        }
