"""Adaptive-QoS policy specs and the adaptive-policy registry.

An :class:`AdaptivePolicySpec` declares *which* controllers the closed-loop
control plane runs and with what gains.  Specs are frozen dataclasses so
their ``repr`` doubles as a content fingerprint for the experiment-engine
result cache (see :func:`repro.engine.spec._adaptive_fingerprint`).

Three presets ship built-in:

==============  ==============================================================
``static``      no controllers at all — byte-identical to an adaptive-less run
``reactive``    AIMD admission + SLO-aware planning + elastic pooling, all
                driven by *observed* signals (queue depth, rolling p95)
``predictive``  everything in ``reactive`` plus online arrival forecasting
                driving proactive checkpointing before rush/outage windows
==============  ==============================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "AdaptivePolicySpec",
    "register_adaptive_policy",
    "get_adaptive_policy",
    "available_adaptive_policies",
    "resolve_adaptive_policy",
]


@dataclass(frozen=True)
class AdaptivePolicySpec:
    """Configuration of the closed-loop control plane.

    Every gain is expressed relative to the *static* tenant spec it
    modulates (e.g. AIMD bounds are multiples of the configured token
    rate), so one preset works across tenant mixes.
    """

    name: str
    description: str = ""
    #: Simulated seconds between control-loop ticks.  The default is about
    #: one mean job service time: ticking much faster buys no information
    #: (signals move on job-completion timescales) and multiplies the
    #: control-plane's wall-clock cost across a run's long drain tail.
    tick_interval: float = 300.0

    # -- AdaptiveAdmission (AIMD token-rate control) -------------------------
    adaptive_admission: bool = False
    #: Additive increase per healthy tick, as a fraction of the base rate.
    aimd_increase: float = 0.25
    #: Multiplicative decrease factor applied on an SLO/backlog breach.
    aimd_decrease: float = 0.5
    #: Lower bound on the adapted rate, as a multiple of the base rate.
    aimd_floor: float = 0.1
    #: Upper bound on the adapted rate, as a multiple of the base rate.
    aimd_ceiling: float = 3.0
    #: Per-tenant queued-job count treated as a backlog breach.
    queue_depth_high: int = 12

    # -- SLOAwarePlanner (deadline/fidelity-biased plan()) -------------------
    slo_planner: bool = False
    #: Fraction of the queue deadline after which a waiting job counts as
    #: deadline-pressured and is steered to the fastest devices.
    deadline_pressure: float = 0.5
    #: Fraction of the fleet (by CLOPS / error score) forming a bias subset.
    latency_pool_fraction: float = 0.5

    # -- ElasticPooler (fidelity-tier pool re-partitioning) ------------------
    elastic_pooling: bool = False
    #: Minimum pool-size change, as a fraction of the fleet, required to
    #: actually re-partition (hysteresis against flapping).
    pool_hysteresis: float = 0.25

    # -- Forecasting + ProactiveCheckpointer ---------------------------------
    proactive_checkpointing: bool = False
    #: Observation window (simulated seconds) for online rate estimation.
    forecast_window: float = 900.0
    #: Look-ahead horizon for ``predicted_rate`` / rush detection.
    forecast_horizon: float = 600.0
    #: Predicted/baseline rate ratio above which a rush window is declared.
    rush_factor: float = 1.5
    #: Expected outages-per-job threshold above which checkpointing flips on.
    outage_risk_threshold: float = 0.05

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("adaptive policy name must be non-empty")
        if self.tick_interval <= 0:
            raise ValueError("tick_interval must be positive")
        if not 0.0 < self.aimd_decrease <= 1.0:
            raise ValueError("aimd_decrease must be in (0, 1]")
        if self.aimd_increase < 0:
            raise ValueError("aimd_increase must be non-negative")
        if not 0.0 < self.aimd_floor <= self.aimd_ceiling:
            raise ValueError("need 0 < aimd_floor <= aimd_ceiling")
        if self.queue_depth_high < 1:
            raise ValueError("queue_depth_high must be >= 1")
        if not 0.0 <= self.deadline_pressure <= 1.0:
            raise ValueError("deadline_pressure must be in [0, 1]")
        if not 0.0 < self.latency_pool_fraction <= 1.0:
            raise ValueError("latency_pool_fraction must be in (0, 1]")
        if self.pool_hysteresis < 0:
            raise ValueError("pool_hysteresis must be non-negative")
        if self.forecast_window <= 0 or self.forecast_horizon <= 0:
            raise ValueError("forecast window/horizon must be positive")
        if self.rush_factor <= 0:
            raise ValueError("rush_factor must be positive")
        if self.outage_risk_threshold < 0:
            raise ValueError("outage_risk_threshold must be non-negative")

    @property
    def is_static(self) -> bool:
        """True when no controller is enabled — the engine installs nothing."""
        return not (
            self.adaptive_admission
            or self.slo_planner
            or self.elastic_pooling
            or self.proactive_checkpointing
        )

    @property
    def controller_names(self) -> Tuple[str, ...]:
        """Names of the controllers this spec enables, in tick order."""
        names: List[str] = []
        if self.adaptive_admission:
            names.append("adaptive-admission")
        if self.slo_planner:
            names.append("slo-planner")
        if self.elastic_pooling:
            names.append("elastic-pooler")
        if self.proactive_checkpointing:
            names.append("proactive-checkpointer")
        return tuple(names)


_REGISTRY: Dict[str, AdaptivePolicySpec] = {}


def register_adaptive_policy(spec: AdaptivePolicySpec) -> None:
    """Register *spec* under its name (overwrites existing entries)."""
    _REGISTRY[spec.name] = spec


def get_adaptive_policy(name: str) -> AdaptivePolicySpec:
    """Look up a registered adaptive policy by name."""
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown adaptive policy {name!r}; "
            f"available: {available_adaptive_policies()}"
        )
    return _REGISTRY[name]


def available_adaptive_policies() -> List[str]:
    """Names of all registered adaptive policies (presets first)."""
    return list(_REGISTRY)


def resolve_adaptive_policy(
    policy: Union[str, AdaptivePolicySpec, None],
) -> Optional[AdaptivePolicySpec]:
    """Resolve a policy reference: ``None``, a registered name, or a spec."""
    if policy is None:
        return None
    if isinstance(policy, AdaptivePolicySpec):
        return policy
    return get_adaptive_policy(policy)


def _register_presets() -> None:
    register_adaptive_policy(
        AdaptivePolicySpec(
            name="static",
            description="No-op control plane: every controller disabled "
            "(byte-identical to adaptive=None).",
        )
    )
    register_adaptive_policy(
        AdaptivePolicySpec(
            name="reactive",
            description="Observed-signal feedback: AIMD admission rates, "
            "SLO-aware planning and elastic device pools.",
            adaptive_admission=True,
            slo_planner=True,
            elastic_pooling=True,
        )
    )
    register_adaptive_policy(
        AdaptivePolicySpec(
            name="predictive",
            description="Reactive controllers plus online arrival "
            "forecasting driving proactive checkpointing.",
            adaptive_admission=True,
            slo_planner=True,
            elastic_pooling=True,
            proactive_checkpointing=True,
        )
    )


_register_presets()
