"""Additional baseline policies used for ablations and examples.

These are not part of the paper's four evaluated strategies but exercise the
same policy interface and are useful as sanity baselines:

* :class:`RandomPolicy` — shuffle the device order uniformly at random,
* :class:`RoundRobinPolicy` — rotate the starting device between jobs,
* :class:`EvenSplitPolicy` — split the job as evenly as possible over every
  device that currently has free capacity (the maximally fragmented
  counterpart of the greedy-fill strategies).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.circuits.partition import partition_even
from repro.scheduling.base import AllocationPlan, AllocationPolicy

__all__ = ["RandomPolicy", "RoundRobinPolicy", "EvenSplitPolicy"]


class RandomPolicy(AllocationPolicy):
    """Greedy-fill devices in a uniformly random order."""

    name = "random"

    def __init__(self, seed: Optional[int] = None) -> None:
        self.rng = np.random.default_rng(seed)

    def plan(self, job: Any, devices: Sequence[Any]) -> Optional[AllocationPlan]:
        ordered = list(devices)
        self.rng.shuffle(ordered)
        return self._greedy_fill(job, ordered)


class RoundRobinPolicy(AllocationPolicy):
    """Greedy-fill devices starting from a rotating offset."""

    name = "round_robin"

    def __init__(self) -> None:
        self._offset = 0

    def plan(self, job: Any, devices: Sequence[Any]) -> Optional[AllocationPlan]:
        devices = list(devices)
        if not devices:
            return None
        start = self._offset % len(devices)
        ordered = devices[start:] + devices[:start]
        plan = self._greedy_fill(job, ordered)
        if plan is not None:
            self._offset += 1
        return plan


class EvenSplitPolicy(AllocationPolicy):
    """Split the job evenly across every device with free capacity.

    This maximises parallel fan-out (and therefore the communication penalty);
    it is used in the ablation study on partition granularity.
    """

    name = "even_split"

    def plan(self, job: Any, devices: Sequence[Any]) -> Optional[AllocationPlan]:
        available = [d for d in devices if d.free_qubits > 0]
        free = [d.free_qubits for d in available]
        if sum(free) < job.num_qubits:
            return None
        allocation = partition_even(job.num_qubits, free)
        return AllocationPlan.from_pairs(zip(available, allocation))
