"""Speed-optimised allocation (paper §5, "Speed-based Mode").

The policy prioritises minimising execution time: devices are ordered by
processing capability (CLOPS, highest first) without considering noise
levels, and the job's qubits are packed greedily into the free capacity of
the fastest devices.  When the fastest devices are partially busy the job
spills over onto slower ones, which is what produces the higher
fragmentation (and hence communication overhead) reported for this strategy
in Table 2.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.scheduling.base import AllocationPlan, AllocationPolicy

__all__ = ["SpeedPolicy"]


class SpeedPolicy(AllocationPolicy):
    """Select the fastest (highest-CLOPS) devices first."""

    name = "speed"

    def __init__(self, prefer_idle: bool = True) -> None:
        #: When two devices have the same CLOPS, prefer the one with more free
        #: qubits (reduces unnecessary fragmentation among equals).
        self.prefer_idle = bool(prefer_idle)

    def plan(self, job: Any, devices: Sequence[Any]) -> Optional[AllocationPlan]:
        if self.prefer_idle:
            ordered = sorted(devices, key=lambda d: (-d.clops, -d.free_qubits, d.name))
        else:
            ordered = sorted(devices, key=lambda d: (-d.clops, d.name))
        return self._greedy_fill(job, ordered)
