"""Speed-optimised allocation (paper §5, "Speed-based Mode").

The policy prioritises minimising execution time: devices are ordered by
processing capability (CLOPS, highest first) without considering noise
levels, and the job's qubits are packed greedily into the free capacity of
the fastest devices.  When the fastest devices are partially busy the job
spills over onto slower ones, which is what produces the higher
fragmentation (and hence communication overhead) reported for this strategy
in Table 2.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.scheduling.base import AllocationPlan, AllocationPolicy

__all__ = ["SpeedPolicy"]


class SpeedPolicy(AllocationPolicy):
    """Select the fastest (highest-CLOPS) devices first."""

    name = "speed"

    def __init__(self, prefer_idle: bool = True) -> None:
        #: When two devices have the same CLOPS, prefer the one with more free
        #: qubits (reduces unnecessary fragmentation among equals).
        self.prefer_idle = bool(prefer_idle)
        # CLOPS is static per device but free capacity is not, so the full
        # sort key is per-call — yet only the free-qubit tie-break between
        # equal-CLOPS devices can actually change between calls.  Partition
        # the fleet once per devices sequence (the fast-path dispatcher
        # passes the same list object every plan; keyed by identity, with
        # the sequence kept referenced so the identity stays valid) into
        # descending-CLOPS groups, then each plan only re-sorts the
        # multi-device groups.  The concatenated order is exactly the
        # ``(-clops, -free_qubits, name)`` global sort.  Callers must treat
        # the passed sequence as an immutable snapshot (both engines build a
        # fresh list when the fleet changes).
        self._groups_for: Optional[Sequence[Any]] = None
        self._groups: List[List[Any]] = []
        self._static_order: List[Any] = []

    def _partition(self, devices: Sequence[Any]) -> None:
        ordered = sorted(devices, key=lambda d: (-d.clops, d.name))
        groups: List[List[Any]] = []
        last_clops = None
        for device in ordered:
            if groups and device.clops == last_clops:
                groups[-1].append(device)
            else:
                groups.append([device])
                last_clops = device.clops
        self._groups = groups
        self._static_order = ordered
        self._groups_for = devices

    def plan(self, job: Any, devices: Sequence[Any]) -> Optional[AllocationPlan]:
        if devices is not self._groups_for:
            self._partition(devices)
        if not self.prefer_idle:
            # No dynamic tie-break: the CLOPS/name order is fully static.
            return self._greedy_fill(job, self._static_order)
        ordered: List[Any] = []
        for group in self._groups:
            if len(group) == 1:
                ordered.append(group[0])
            else:
                ordered.extend(sorted(group, key=lambda d: (-d.free_qubits, d.name)))
        return self._greedy_fill(job, ordered)
