"""Allocation strategies (paper §5).

All strategies share the unified allocation workflow of Algorithm 1; they
differ only in the *device selection policy*.  The four policies evaluated in
the paper are:

* :class:`~repro.scheduling.speed.SpeedPolicy` — fastest (highest-CLOPS)
  devices first,
* :class:`~repro.scheduling.error_aware.ErrorAwarePolicy` — lowest error
  score first (fidelity-optimised),
* :class:`~repro.scheduling.fair.FairPolicy` — least-utilised devices first,
* :class:`~repro.scheduling.rl_policy.RLAllocationPolicy` — allocation
  fractions produced by a trained PPO agent.

Additional baselines (:mod:`repro.scheduling.baselines`) are provided for
ablations: random device order, round-robin, and an even-split variant.
Custom policies subclass :class:`~repro.scheduling.base.AllocationPolicy` and
can be registered by name through :mod:`repro.scheduling.registry`.
"""

from repro.scheduling.base import AllocationPlan, AllocationPolicy, DeviceAllocation
from repro.scheduling.baselines import EvenSplitPolicy, RandomPolicy, RoundRobinPolicy
from repro.scheduling.error_aware import ErrorAwarePolicy
from repro.scheduling.fair import FairPolicy
from repro.scheduling.registry import available_policies, create_policy, register_policy
from repro.scheduling.rl_policy import RLAllocationPolicy
from repro.scheduling.speed import SpeedPolicy
from repro.scheduling.tradeoff import BalancedTradeoffPolicy, MinFragmentationPolicy

__all__ = [
    "AllocationPlan",
    "AllocationPolicy",
    "BalancedTradeoffPolicy",
    "DeviceAllocation",
    "ErrorAwarePolicy",
    "EvenSplitPolicy",
    "FairPolicy",
    "MinFragmentationPolicy",
    "RLAllocationPolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "SpeedPolicy",
    "available_policies",
    "create_policy",
    "register_policy",
]
