"""Extension policies beyond the paper's four modes.

The paper's discussion (§7.2) frames scheduling as a trade-off between
execution efficiency and output quality, with the speed and error-aware
policies at the two extremes.  These extension policies populate the space in
between and are used by the ablation benchmarks:

* :class:`BalancedTradeoffPolicy` — scores devices by a convex combination of
  their (normalised) error score and their (normalised) slowness, so a single
  parameter sweeps continuously from speed-like to fidelity-like behaviour.
* :class:`MinFragmentationPolicy` — minimises the number of devices per job
  (and hence the φ^(k-1) penalty and the communication volume) by choosing
  the devices with the most free capacity first, regardless of their speed or
  calibration.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.scheduling.base import AllocationPlan, AllocationPolicy

__all__ = ["BalancedTradeoffPolicy", "MinFragmentationPolicy"]


class BalancedTradeoffPolicy(AllocationPolicy):
    """Interpolate between speed-optimised and error-aware device selection.

    Each device is scored as::

        score = weight * error_rank + (1 - weight) * slowness_rank

    where both ranks are normalised to [0, 1] over the fleet.  ``weight = 0``
    reproduces the speed ordering, ``weight = 1`` the error-aware ordering,
    and intermediate values trade fidelity against runtime.

    Parameters
    ----------
    fidelity_weight:
        Weight of the error-score term (default 0.5).
    """

    name = "balanced"

    def __init__(self, fidelity_weight: float = 0.5) -> None:
        if not 0.0 <= fidelity_weight <= 1.0:
            raise ValueError("fidelity_weight must be in [0, 1]")
        self.fidelity_weight = float(fidelity_weight)

    @staticmethod
    def _normalise(values):
        lo, hi = min(values), max(values)
        if hi - lo < 1e-15:
            return [0.0 for _ in values]
        return [(v - lo) / (hi - lo) for v in values]

    def plan(self, job: Any, devices: Sequence[Any]) -> Optional[AllocationPlan]:
        devices = list(devices)
        if not devices:
            return None
        errors = self._normalise([d.error_score() for d in devices])
        slowness = self._normalise([1.0 / d.clops for d in devices])
        scores = {
            d.name: self.fidelity_weight * e + (1.0 - self.fidelity_weight) * s
            for d, e, s in zip(devices, errors, slowness)
        }
        ordered = sorted(devices, key=lambda d: (scores[d.name], d.name))
        return self._greedy_fill(job, ordered)


class MinFragmentationPolicy(AllocationPolicy):
    """Use as few devices as possible for each job.

    Devices are ordered by current free capacity (largest first), which
    minimises the number of fragments ``k`` given the present fleet state;
    ties are broken by error score so equally-free devices favour quality.
    """

    name = "min_fragmentation"

    def plan(self, job: Any, devices: Sequence[Any]) -> Optional[AllocationPlan]:
        ordered = sorted(devices, key=lambda d: (-d.free_qubits, d.error_score(), d.name))
        return self._greedy_fill(job, ordered)
