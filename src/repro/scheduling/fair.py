"""Fair (load-balancing) allocation (paper §5, "Fair Mode").

The policy balances load by preferring the devices with the lowest current
utilisation, aiming to prevent resource contention and spread work evenly
across the fleet.  Hardware heterogeneity (CLOPS, error scores) is ignored,
which is why Table 2 reports a runtime identical to the speed policy but a
slightly lower fidelity.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.scheduling.base import AllocationPlan, AllocationPolicy

__all__ = ["FairPolicy"]


class FairPolicy(AllocationPolicy):
    """Select the least-utilised devices first."""

    name = "fair"

    def plan(self, job: Any, devices: Sequence[Any]) -> Optional[AllocationPlan]:
        ordered = sorted(devices, key=lambda d: (d.utilization, -d.free_qubits, d.name))
        return self._greedy_fill(job, ordered)
