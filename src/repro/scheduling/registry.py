"""Policy registry: create allocation policies by name.

The configuration layer (§3) lets users pick a scheduling policy by name;
this registry maps the paper's mode names to policy classes and allows users
to register their own.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.scheduling.base import AllocationPolicy
from repro.scheduling.baselines import EvenSplitPolicy, RandomPolicy, RoundRobinPolicy
from repro.scheduling.error_aware import ErrorAwarePolicy
from repro.scheduling.fair import FairPolicy
from repro.scheduling.speed import SpeedPolicy

__all__ = ["register_policy", "create_policy", "available_policies"]

_REGISTRY: Dict[str, Callable[..., AllocationPolicy]] = {}


def register_policy(name: str, factory: Callable[..., AllocationPolicy]) -> None:
    """Register a policy *factory* under *name* (overwrites existing entries)."""
    if not name:
        raise ValueError("policy name must be non-empty")
    _REGISTRY[name] = factory


def create_policy(name: str, **kwargs: Any) -> AllocationPolicy:
    """Instantiate a registered policy by name.

    The paper's four modes are registered as ``"speed"``, ``"fidelity"``
    (alias ``"error_aware"``), ``"fair"`` and — once a model is supplied —
    ``"rlbase"`` (which requires a ``model=...`` keyword argument).
    """
    if name not in _REGISTRY:
        raise KeyError(f"Unknown policy {name!r}; available: {available_policies()}")
    return _REGISTRY[name](**kwargs)


def available_policies() -> List[str]:
    """Names of all registered policies."""
    return sorted(_REGISTRY)


def _register_builtins() -> None:
    from repro.scheduling.tradeoff import BalancedTradeoffPolicy, MinFragmentationPolicy

    register_policy("speed", SpeedPolicy)
    register_policy("fidelity", ErrorAwarePolicy)
    register_policy("error_aware", ErrorAwarePolicy)
    register_policy("fair", FairPolicy)
    register_policy("random", RandomPolicy)
    register_policy("round_robin", RoundRobinPolicy)
    register_policy("even_split", EvenSplitPolicy)
    register_policy("balanced", BalancedTradeoffPolicy)
    register_policy("min_fragmentation", MinFragmentationPolicy)

    def _make_rl(**kwargs: Any) -> AllocationPolicy:
        from repro.scheduling.rl_policy import RLAllocationPolicy

        if "model" not in kwargs:
            raise ValueError("the 'rlbase' policy requires a model=... keyword argument")
        return RLAllocationPolicy(**kwargs)

    register_policy("rlbase", _make_rl)
    register_policy("rl", _make_rl)


_register_builtins()
