"""Error-aware (fidelity-optimised) allocation (paper §5, "Error-aware Mode").

The policy maximises circuit fidelity by routing jobs to the devices with the
lowest calibration-derived error score (Eq. 2).  Unlike the speed and fair
policies it does **not** spill onto poorly calibrated devices when the good
ones are busy: it selects the minimal set of best devices whose *total*
capacity covers the job and waits for them to free up.  This concentration
is what yields the higher fidelity, lower communication overhead and roughly
doubled makespan observed in Table 2.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.circuits.partition import partition_greedy_fill
from repro.metrics.error_score import DEFAULT_WEIGHTS, ErrorScoreWeights
from repro.scheduling.base import AllocationPlan, AllocationPolicy

__all__ = ["ErrorAwarePolicy"]


class ErrorAwarePolicy(AllocationPolicy):
    """Select the devices with the lowest error scores.

    Parameters
    ----------
    weights:
        Error-score weights (α, θ, γ); defaults to the paper's (0.5, 0.3, 0.2).
    strict:
        When ``True`` (default, the paper's behaviour) the policy always
        targets the globally best devices and waits for them; when ``False``
        it falls back to spilling over the remaining devices ordered by error
        score (a useful ablation).
    """

    name = "fidelity"

    def __init__(self, weights: ErrorScoreWeights = DEFAULT_WEIGHTS, strict: bool = True) -> None:
        self.weights = weights
        self.strict = bool(strict)

    def _score(self, device: Any) -> float:
        return device.error_score(
            alpha=self.weights.alpha, theta=self.weights.theta, gamma=self.weights.gamma
        )

    def plan(self, job: Any, devices: Sequence[Any]) -> Optional[AllocationPlan]:
        ordered = sorted(devices, key=lambda d: (self._score(d), d.name))

        if not self.strict:
            return self._greedy_fill(job, ordered)

        # Strict mode: pick the minimal prefix of best devices whose *total*
        # capacity covers the job, then wait until they are free enough.
        target: list = []
        capacity = 0
        for device in ordered:
            target.append(device)
            capacity += device.num_qubits
            if capacity >= job.num_qubits:
                break
        if capacity < job.num_qubits:
            # Job larger than the whole cloud; infeasible for this policy.
            return None

        free = [d.free_qubits for d in target]
        if sum(free) < job.num_qubits:
            return None
        allocation = partition_greedy_fill(job.num_qubits, free)
        return AllocationPlan.from_pairs(zip(target, allocation))
