"""Allocation-policy interface and allocation plans.

A policy looks at the incoming job and the *current* state of the device
fleet (free qubits, error scores, CLOPS, utilisation) and either returns an
:class:`AllocationPlan` — which devices to use and how many qubits to place
on each — or ``None`` when no acceptable allocation is currently feasible
(in which case the broker waits for capacity to be released and asks again).

Policies never mutate devices; reservation and execution are handled by the
broker (Algorithm 1, steps 6-14).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

__all__ = ["DeviceAllocation", "AllocationPlan", "AllocationPolicy"]


@dataclass(frozen=True)
class DeviceAllocation:
    """Assignment of a number of qubits to one device."""

    #: The device object (duck-typed; any object with the QDevice interface).
    device: Any
    #: Number of qubits placed on that device (``a_i > 0``).
    num_qubits: int

    def __post_init__(self) -> None:
        if self.num_qubits <= 0:
            raise ValueError("num_qubits must be positive")


@dataclass(frozen=True)
class AllocationPlan:
    """A complete allocation of one job across one or more devices."""

    #: Per-device assignments, in execution order.
    allocations: tuple

    def __post_init__(self) -> None:
        if not self.allocations:
            raise ValueError("an allocation plan needs at least one device")
        names = [a.device.name for a in self.allocations]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate devices in allocation plan: {names}")

    @classmethod
    def from_pairs(cls, pairs: Sequence) -> "AllocationPlan":
        """Build a plan from ``(device, num_qubits)`` pairs, dropping zeros."""
        allocations = tuple(
            DeviceAllocation(device=device, num_qubits=int(qubits))
            for device, qubits in pairs
            if int(qubits) > 0
        )
        return cls(allocations=allocations)

    @property
    def num_devices(self) -> int:
        """Number of devices used (``k``)."""
        return len(self.allocations)

    @property
    def total_qubits(self) -> int:
        """Total qubits allocated (must equal the job's demand)."""
        return sum(a.num_qubits for a in self.allocations)

    @property
    def devices(self) -> List[Any]:
        """The device objects in plan order."""
        return [a.device for a in self.allocations]

    @property
    def device_names(self) -> List[str]:
        """Names of the devices in plan order."""
        return [a.device.name for a in self.allocations]

    @property
    def qubit_counts(self) -> List[int]:
        """Per-device qubit counts in plan order."""
        return [a.num_qubits for a in self.allocations]

    def is_feasible_now(self) -> bool:
        """Whether every device currently has enough free qubits."""
        return all(a.device.free_qubits >= a.num_qubits for a in self.allocations)


class AllocationPolicy(abc.ABC):
    """Base class of all device-selection policies (§5)."""

    #: Short identifier used in tables, the registry and result records.
    name: str = "base"

    @abc.abstractmethod
    def plan(self, job: Any, devices: Sequence[Any]) -> Optional[AllocationPlan]:
        """Propose an allocation of *job* over *devices*.

        Parameters
        ----------
        job:
            The :class:`~repro.cloud.qjob.QJob` to place; only its resource
            requirements are inspected.
        devices:
            The fleet of devices (duck-typed QDevice objects exposing
            ``free_qubits``, ``num_qubits``, ``clops``, ``error_score()`` and
            ``utilization``).

        Returns
        -------
        An :class:`AllocationPlan` that is feasible *right now* (every device
        has the planned number of free qubits), or ``None`` if the policy
        prefers to wait for capacity to be released.
        """

    # -- helpers shared by concrete policies ---------------------------------
    @staticmethod
    def _greedy_fill(job: Any, ordered_devices: Sequence[Any]) -> Optional[AllocationPlan]:
        """Fill the ordered devices' free capacity until the job fits.

        Equivalent to ``partition_greedy_fill`` over the devices' free
        capacities followed by :meth:`AllocationPlan.from_pairs`, fused into
        one pass — this helper sits on the per-job hot path of every
        list-based policy, so it avoids the intermediate capacity/allocation
        lists and the redundant re-validation of a freshly built greedy fill.
        """
        total = job.num_qubits
        if total <= 0:
            raise ValueError("total must be positive")
        remaining = total
        allocations = []
        for device in ordered_devices:
            if remaining > 0:
                free = device.free_qubits
                take = free if free < remaining else remaining
                if take > 0:
                    allocations.append(DeviceAllocation(device=device, num_qubits=take))
                    remaining -= take
        if remaining > 0:
            return None
        return AllocationPlan(allocations=tuple(allocations))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
