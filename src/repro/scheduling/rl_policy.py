"""Reinforcement-learning-based allocation (paper §5, "Reinforcement Learning Mode").

A trained PPO agent (see :mod:`repro.rlenv.train`) maps the system state — the
incoming job's qubit demand plus, for each device, its free-qubit level, error
score and CLOPS — to a vector of continuous allocation weights.  The weights
are normalised, scaled by the job's demand, rounded and adjusted so that the
parts sum to the demand and respect each device's currently free capacity
(§4.1).

The observation layout must match the training environments
(:class:`repro.rlenv.qcloud_env.QCloudGymEnv` and
:class:`repro.rlenv.batched_env.BatchedQCloudEnv`) exactly;
:func:`build_observation` below is the reference layout, which the
environments mirror with vectorized assembly (verified by equivalence tests).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.partition import allocation_from_weights
from repro.scheduling.base import AllocationPlan, AllocationPolicy

__all__ = [
    "DEFAULT_MAX_DEVICES",
    "DEFAULT_MAX_QUBITS",
    "DEVICE_LEVEL_NORM",
    "CLOPS_NORM",
    "build_observation",
    "RLAllocationPolicy",
]

#: Number of device slots in the observation (k = 5 in the paper).
DEFAULT_MAX_DEVICES = 5
#: Normalisation constant for the job qubit demand.  The paper's §4.1 quotes
#: ``q_max = 50`` while the case-study jobs need 130-250 qubits; the constant
#: only rescales one observation dimension, so we default to the case-study
#: maximum and expose it as a parameter.
DEFAULT_MAX_QUBITS = 250
#: Normalisation constant for the per-device free-qubit level (paper: /150).
DEVICE_LEVEL_NORM = 150.0
#: Normalisation constant for CLOPS (paper: /1e6).
CLOPS_NORM = 1.0e6


def build_observation(
    num_qubits: int,
    device_states: Sequence[Tuple[float, float, float]],
    max_devices: int = DEFAULT_MAX_DEVICES,
    max_qubits: int = DEFAULT_MAX_QUBITS,
) -> np.ndarray:
    """Build the §4.1 state vector.

    Parameters
    ----------
    num_qubits:
        Qubit demand ``q`` of the incoming job.
    device_states:
        One ``(free_qubits, error_score, clops)`` triple per device, in fleet
        order.  Missing slots (fewer than *max_devices* devices) are padded
        with zeros.
    max_devices, max_qubits:
        Observation-shape constants (5 and the normalisation maximum).

    Returns
    -------
    A float64 vector of dimension ``1 + 3 * max_devices`` (16 for the paper's
    five-device fleet).
    """
    if num_qubits <= 0:
        raise ValueError("num_qubits must be positive")
    if len(device_states) > max_devices:
        raise ValueError(
            f"got {len(device_states)} devices but the observation only holds {max_devices}"
        )
    obs = np.zeros(1 + 3 * max_devices, dtype=np.float64)
    obs[0] = num_qubits / float(max_qubits)
    for i, (free_qubits, error_score, clops) in enumerate(device_states):
        base = 1 + 3 * i
        obs[base + 0] = float(free_qubits) / DEVICE_LEVEL_NORM
        obs[base + 1] = float(error_score)
        obs[base + 2] = float(clops) / CLOPS_NORM
    return obs


def _device_state(device: Any) -> Tuple[float, float, float]:
    """Extract the ``(free_qubits, error_score, clops)`` triple from a device."""
    return (float(device.free_qubits), float(device.error_score()), float(device.clops))


class RLAllocationPolicy(AllocationPolicy):
    """Allocation policy driven by a trained PPO actor-critic model.

    Parameters
    ----------
    model:
        Any object exposing ``predict(observation, deterministic=...)`` and
        returning ``(action, info)`` — a :class:`repro.rl.ppo.PPO` instance,
        an :class:`repro.rl.policies.ActorCriticPolicy`, or a stub for tests.
    max_devices, max_qubits:
        Observation constants; must match training.
    deterministic:
        Use the policy mean rather than sampling at deployment time
        (default ``True``).
    """

    name = "rlbase"

    def __init__(
        self,
        model: Any,
        max_devices: int = DEFAULT_MAX_DEVICES,
        max_qubits: int = DEFAULT_MAX_QUBITS,
        deterministic: bool = True,
    ) -> None:
        if not hasattr(model, "predict"):
            raise TypeError("model must expose a predict(obs, deterministic=...) method")
        self.model = model
        self.max_devices = int(max_devices)
        self.max_qubits = int(max_qubits)
        self.deterministic = bool(deterministic)

    def plan(self, job: Any, devices: Sequence[Any]) -> Optional[AllocationPlan]:
        devices = list(devices)[: self.max_devices]
        free = [d.free_qubits for d in devices]
        if sum(free) < job.num_qubits:
            return None

        observation = build_observation(
            job.num_qubits,
            [_device_state(d) for d in devices],
            max_devices=self.max_devices,
            max_qubits=self.max_qubits,
        )
        action, _info = self.model.predict(observation, deterministic=self.deterministic)
        weights = np.asarray(action, dtype=np.float64).reshape(-1)[: len(devices)]
        allocation = allocation_from_weights(weights, job.num_qubits, free)
        return AllocationPlan.from_pairs(zip(devices, allocation))
