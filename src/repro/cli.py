"""Command-line interface.

Exposes the framework's main workflows without writing Python::

    python -m repro devices                      # list the device catalogue
    python -m repro scenarios                    # list world-dynamics presets
    python -m repro workload -n 100 -o jobs.csv  # generate a synthetic workload
    python -m repro simulate --policy speed -n 100
    python -m repro simulate --policy fidelity --jobs jobs.csv --records out.csv
    python -m repro simulate --scenario flaky-fleet -n 100 --trace run.jsonl
    python -m repro simulate --scenario run.jsonl -n 100   # deterministic replay
    python -m repro simulate --scenario flaky-fleet --checkpointing -n 100
    python -m repro sweep --param checkpointing --values false true
    python -m repro serve --list                 # list multi-tenant mix presets
    python -m repro serve --tenants free-tier-vs-premium -n 200
    python -m repro serve --tenants noisy-neighbor --scenario rush-hour -n 200
    python -m repro serve --tenants free-tier-vs-premium -n 200 --stream
    python -m repro regions                      # list multi-region topologies
    python -m repro simulate --regions dual -n 200 --backend process
    python -m repro adaptive -v                  # list adaptive QoS policies
    python -m repro serve --tenants noisy-neighbor --scenario black-friday \
        --adaptive predictive -n 200
    python -m repro sweep --param adaptive --values static reactive predictive
    python -m repro compare --regions global-triad --routing least-loaded -n 200
    python -m repro sweep --param routing --regions dual \
        --values locality least-loaded calibration-aware round-robin
    python -m repro compare -n 200               # Table-2-style comparison
    python -m repro compare -n 200 --scenario rush-hour
    python -m repro compare -n 200 --backend process --workers 4
    python -m repro sweep --param comm_fidelity_penalty --values 0.9 0.95 1.0
    python -m repro sweep --param scenario --values static drift black-friday
    python -m repro train --timesteps 20000 --model policy.npz
    python -m repro simulate --policy rlbase --model policy.npz -n 100

Every simulation-driving command delegates to the experiment engine
(:mod:`repro.engine`): ``--backend process`` fans cells out over a process
pool, and ``--results-dir`` persists summaries/records with content-keyed
caching so repeated sweeps skip already-computed cells.

Every command prints a short human-readable report to stdout; ``--records``
and ``--curve`` write machine-readable CSV/JSON artefacts for further
analysis.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro import __version__

__all__ = ["build_parser", "main"]


# --------------------------------------------------------------------------- #
# Command implementations
# --------------------------------------------------------------------------- #
def _make_runner(args: argparse.Namespace):
    """Build the ExperimentRunner requested by --backend/--workers/--results-dir."""
    from repro.engine import ExperimentRunner, ResultStore

    store = ResultStore(args.results_dir) if getattr(args, "results_dir", None) else None
    return ExperimentRunner(
        backend=getattr(args, "backend", "serial"),
        max_workers=getattr(args, "workers", None),
        store=store,
    )


def _positive_int(value: str) -> int:
    number = int(value)
    if number <= 0:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return number


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", choices=("serial", "process"), default="serial",
                        help="experiment execution backend")
    parser.add_argument("--workers", type=_positive_int,
                        help="process-pool size (process backend)")
    parser.add_argument("--results-dir",
                        help="persist/cache results in this directory (ResultStore)")


def _cmd_devices(args: argparse.Namespace) -> int:
    from repro.hardware.backends import get_device_profile, list_available_devices

    print(f"{'device':<18} {'qubits':>7} {'QV':>6} {'CLOPS':>9} {'error score':>12}")
    for name in list_available_devices():
        profile = get_device_profile(name, num_qubits=args.qubits, quantum_volume=args.qv)
        print(
            f"{name:<18} {profile.num_qubits:>7} {profile.quantum_volume:>6.0f} "
            f"{profile.clops:>9.0f} {profile.error_score():>12.6f}"
        )
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.dynamics import available_scenarios, get_scenario

    print(f"{'scenario':<14} {'drift':>5} {'outage':>6} {'maint':>5} {'traffic':>8}  description")
    for name in available_scenarios():
        scenario = get_scenario(name)
        traffic = scenario.traffic.model if scenario.traffic is not None else "-"
        print(
            f"{name:<14} {'yes' if scenario.drift else '-':>5} "
            f"{'yes' if scenario.outages else '-':>6} "
            f"{len(scenario.maintenance) if scenario.maintenance else '-':>5} "
            f"{traffic:>8}  {scenario.description}"
        )
    return 0


def _cmd_regions(args: argparse.Namespace) -> int:
    from repro.region import available_topologies, get_topology

    print(f"{'topology':<24} {'regions':>7}  description")
    for name in available_topologies():
        topology = get_topology(name)
        print(f"{name:<24} {len(topology.regions):>7}  {topology.description}")
        if args.verbose:
            for region in topology.regions:
                pool = ",".join(region.device_names) if region.device_names else "(inherit)"
                scenario = region.scenario or "-"
                print(
                    f"  - {region.name:<18} share={region.workload_share:<5g} "
                    f"scenario={scenario:<18} devices={pool}"
                )
    return 0


def _cmd_adaptive(args: argparse.Namespace) -> int:
    from repro.adaptive import available_adaptive_policies, get_adaptive_policy

    print(f"{'policy':<12} {'tick(s)':>8} {'controllers':<12}  description")
    for name in available_adaptive_policies():
        spec = get_adaptive_policy(name)
        controllers = len(spec.controller_names) or "-"
        print(f"{name:<12} {spec.tick_interval:>8g} {controllers!s:<12}  {spec.description}")
        if args.verbose:
            for controller in spec.controller_names:
                print(f"  - {controller}")
            if spec.adaptive_admission:
                print(f"    aimd: +{spec.aimd_increase:g}*base / x{spec.aimd_decrease:g} "
                      f"in [{spec.aimd_floor:g}, {spec.aimd_ceiling:g}]*base, "
                      f"depth>{spec.queue_depth_high}")
            if spec.slo_planner:
                print(f"    planner: pressure>={spec.deadline_pressure:g}*deadline, "
                      f"subset={spec.latency_pool_fraction:g} of fleet")
            if spec.elastic_pooling:
                print(f"    pooling: hysteresis={spec.pool_hysteresis:g} of fleet")
            if spec.proactive_checkpointing:
                print(f"    forecast: window={spec.forecast_window:g}s "
                      f"horizon={spec.forecast_horizon:g}s rush>={spec.rush_factor:g}x "
                      f"risk>={spec.outage_risk_threshold:g}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import format_tenant_table
    from repro.cloud.config import SimulationConfig
    from repro.cloud.environment import QCloudSimEnv
    from repro.cloud.records import records_to_csv
    from repro.serve import available_tenant_mixes, get_tenant_mix

    if args.list:
        print(f"{'mix':<22} {'tenants':>7} {'classes':>8}  tenants (class/weight/share)")
        for name in available_tenant_mixes():
            mix = get_tenant_mix(name)
            detail = ", ".join(
                f"{t.name}({t.priority_class}/{t.weight:g}/{t.share:g})" for t in mix.tenants
            )
            print(
                f"{name:<22} {len(mix.tenants):>7} {len(mix.priority_classes):>8}  {detail}"
            )
        return 0

    config = SimulationConfig(
        policy=args.policy,
        num_jobs=args.num_jobs,
        seed=args.seed,
        scenario=args.scenario,
        tenants=args.tenants,
        max_requeues=args.max_requeues,
        checkpointing=args.checkpointing,
        adaptive=args.adaptive,
    )

    if args.stream:
        # O(1)-memory serving: records stream into P2 sketches (and
        # optionally a chunked JSONL file) instead of RAM.
        from repro.cloud.records_stream import StreamingRecordsManager

        with StreamingRecordsManager(export_path=args.records) as manager:
            env = QCloudSimEnv(config=config, policy=_load_policy(args), records=manager)
            env.run_until_complete()
            print(f"policy        : {getattr(env.policy, 'name', config.policy)}")
            print(f"tenant mix    : {env.tenant_mix.name}")
            print(f"jobs completed: {manager.completed}")
            print(f"jobs rejected : {len(env.broker.rejected_jobs)}")
            print(f"jobs failed   : {len(env.broker.failed_jobs)}")
            print(f"preemptions   : {env.broker.preempted_total}")
            if env.adaptive_engine is not None and env.adaptive_engine.controllers:
                print(f"adaptive      : {env.adaptive_policy.name} "
                      f"({env.adaptive_engine.ticks} ticks)")
            if manager.mean_fidelity is not None:
                print(f"fidelity      : {manager.mean_fidelity:.5f} (streaming mean)")
            tenants = sorted({t.name for t in env.tenant_mix.tenants})
            print()
            print(f"{'tenant':<14} {'q_p50':>10} {'q_p95':>10} {'q_p99':>10} "
                  f"{'c_p50':>10} {'c_p95':>10} {'c_p99':>10}")
            print("-" * 80)
            for tenant in tenants:
                p = env.records.latency_percentiles(tenant)

                def ms(value):
                    return "-" if value is None else f"{value:,.1f}"

                print(f"{tenant:<14} {ms(p['wait_p50']):>10} {ms(p['wait_p95']):>10} "
                      f"{ms(p['wait_p99']):>10} {ms(p['turnaround_p50']):>10} "
                      f"{ms(p['turnaround_p95']):>10} {ms(p['turnaround_p99']):>10}")
            if args.records:
                print(f"\nstreamed per-job records to {args.records} (JSONL)")
            if args.report:
                payload = {
                    "aggregates": manager.aggregates(),
                    "tenants": {t: manager.latency_percentiles(t) for t in tenants},
                }
                with open(args.report, "w") as fh:
                    json.dump(payload, fh, indent=2)
                print(f"wrote streaming aggregate report to {args.report}")
            return 0 if manager.completed else 1

    env = QCloudSimEnv(config=config, policy=_load_policy(args))
    records = env.run_until_complete()
    reports = env.tenant_reports()

    print(f"policy        : {getattr(env.policy, 'name', config.policy)}")
    print(f"tenant mix    : {env.tenant_mix.name}")
    print(f"jobs completed: {len(records)}")
    print(f"jobs rejected : {len(env.broker.rejected_jobs)}")
    print(f"jobs failed   : {len(env.broker.failed_jobs)}")
    print(f"preemptions   : {env.broker.preempted_total}")
    if env.adaptive_engine is not None and env.adaptive_engine.controllers:
        report = env.adaptive_report()
        admission = report["decisions"].get("adaptive-admission", {})
        print(f"adaptive      : {env.adaptive_policy.name} ({report['ticks']} ticks, "
              f"{admission.get('adjustments', 0)} rate adjustments)")
    if records:
        summary = env.summary()
        print(f"T_sim (s)     : {summary.total_simulation_time:,.2f}")
        print(f"fidelity      : {summary.mean_fidelity:.5f} ± {summary.std_fidelity:.5f}")
    print()
    print(format_tenant_table(reports))

    if args.records:
        # A zero-completion run (e.g. heavy admission shedding) writes a
        # header-only CSV so downstream tooling always finds the schema.
        records_to_csv(records, args.records)
        print(f"\nwrote per-job records to {args.records}")
    if args.report:
        with open(args.report, "w") as fh:
            json.dump([r.as_dict() for r in reports], fh, indent=2)
        print(f"wrote tenant SLO report to {args.report}")
    return 0 if len(records) else 1


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.cloud.io import jobs_to_csv, jobs_to_json
    from repro.cloud.job_generator import generate_synthetic_jobs

    jobs = generate_synthetic_jobs(
        num_jobs=args.num_jobs,
        seed=args.seed,
        qubit_range=(args.min_qubits, args.max_qubits),
        arrival=args.arrival,
        arrival_rate=args.arrival_rate,
    )
    if args.output.endswith(".json"):
        jobs_to_json(jobs, args.output)
    else:
        jobs_to_csv(jobs, args.output)
    print(f"Wrote {len(jobs)} jobs to {args.output}")
    return 0


def _load_policy(args: argparse.Namespace):
    """Build the policy instance requested on the command line (or None)."""
    if args.policy in ("rlbase", "rl"):
        if not args.model:
            raise SystemExit("--model PATH is required for the rlbase policy")
        import numpy as np

        from repro.gymapi.spaces import Box
        from repro.rl.policies import ActorCriticPolicy
        from repro.scheduling.rl_policy import RLAllocationPolicy

        policy_net = ActorCriticPolicy(
            Box(0.0, np.inf, shape=(16,), dtype=np.float64),
            Box(0.0, 1.0, shape=(5,), dtype=np.float64),
            seed=0,
        )
        policy_net.load(args.model)
        return RLAllocationPolicy(policy_net)
    return None  # let the environment build it from the registry by name


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import run_policy_simulation
    from repro.cloud.config import SimulationConfig
    from repro.cloud.io import jobs_from_csv, jobs_from_json
    from repro.cloud.records import records_to_csv

    config = SimulationConfig(
        policy=args.policy,
        num_jobs=args.num_jobs,
        seed=args.seed,
        scenario=args.scenario,
        tenants=args.tenants,
        checkpointing=args.checkpointing,
        fast_path=args.fast_path,
        regions=args.regions,
        routing=args.routing,
        adaptive=args.adaptive,
    )
    jobs = None
    if args.jobs:
        jobs = jobs_from_json(args.jobs) if args.jobs.endswith(".json") else jobs_from_csv(args.jobs)

    if args.regions:
        # Multi-region run: shards execute on the requested backend (the
        # process backend runs regions as real parallel processes).
        if args.trace or args.stats:
            raise SystemExit("--trace/--stats are not supported with --regions")
        from repro.analysis.reporting import format_region_table
        from repro.engine import ExperimentRunner
        from repro.region import RegionalCloud

        cloud = RegionalCloud(
            config=config,
            jobs=jobs,
            policy=_load_policy(args),
            runner=ExperimentRunner(backend=args.backend, max_workers=args.workers),
        )
        records = cloud.run_until_complete()
        summary = cloud.summary()
        print(f"policy        : {summary.strategy}")
        print(f"topology      : {cloud.topology.name} ({len(cloud.topology.regions)} regions, "
              f"{config.routing} routing)")
        print(f"jobs completed: {summary.num_jobs}")
        print(f"jobs failed   : {len(cloud.failed)}")
        print(f"migrations    : {len(cloud.migrations)}")
        if records:
            print(f"T_sim (s)     : {summary.total_simulation_time:,.2f}")
            print(f"fidelity      : {summary.mean_fidelity:.5f} ± {summary.std_fidelity:.5f}")
            print(f"T_comm (s)    : {summary.total_communication_time:,.2f}")
        print()
        print(format_region_table(cloud.region_reports()))
        if args.records:
            records_to_csv(records, args.records)
            print(f"\nwrote per-job records to {args.records}")
        return 0 if len(records) else 1

    if args.trace or args.stats:
        # Trace recording and loop statistics need the live environment, so
        # bypass the runner.
        if args.backend != "serial" or args.workers or args.results_dir:
            flag = "--trace" if args.trace else "--stats"
            print(f"note: {flag} runs in-process; ignoring --backend/--workers/--results-dir",
                  file=sys.stderr)
        import time as _time

        from repro.cloud.environment import QCloudSimEnv

        from repro.metrics import empty_summary

        env = QCloudSimEnv(config=config, jobs=jobs, policy=_load_policy(args))
        wall_start = _time.perf_counter()
        records = env.run_until_complete()
        wall = _time.perf_counter() - wall_start
        # Zero-completion runs (e.g. every job infeasible or requeue-exhausted)
        # still report and write their trace instead of raising.
        name = getattr(env.policy, "name", config.policy)
        summary = env.summary() if records else empty_summary(name)
        if args.trace:
            env.save_trace(args.trace)
            print(f"wrote scenario trace to {args.trace}")
        if env.scenario_engine is not None and env.scenario_engine.applied_events:
            counts = env.scenario_engine.event_counts()
            print("world events  : " + ", ".join(f"{k}={v}" for k, v in sorted(counts.items())))
        if args.stats:
            from repro.des.monitoring import EventLoopStats

            stats = EventLoopStats.from_env(env, wall_seconds=wall)
            print(f"engine        : {'flat fast path' if env.fast_path_active else 'legacy processes'}")
            print(f"events        : {stats.events_processed:,} in {stats.batches_processed:,} batches "
                  f"(mean {stats.mean_batch_size:.2f}, max {stats.max_batch_size})")
            print(f"peak queue    : {stats.peak_queue_size:,}")
            if stats.events_per_second is not None:
                print(f"throughput    : {stats.events_per_second:,.0f} events/s "
                      f"({wall:.2f}s wall)")
    else:
        summary, records = run_policy_simulation(
            config, policy=_load_policy(args), jobs=jobs, runner=_make_runner(args)
        )

    print(f"policy        : {summary.strategy}")
    print(f"jobs completed: {summary.num_jobs}")
    if records:
        print(f"T_sim (s)     : {summary.total_simulation_time:,.2f}")
        print(f"fidelity      : {summary.mean_fidelity:.5f} ± {summary.std_fidelity:.5f}")
        print(f"T_comm (s)    : {summary.total_communication_time:,.2f}")
        print(f"devices/job   : {summary.mean_devices_per_job:.2f}")

    if args.records:
        # A zero-completion run still writes a header-only CSV.
        records_to_csv(records, args.records)
        print(f"wrote per-job records to {args.records}")
    return 0 if len(records) else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import run_case_study
    from repro.analysis.histogram import ascii_histogram
    from repro.analysis.reporting import format_table2
    from repro.cloud.config import SimulationConfig

    strategies: List[str] = list(args.strategies)
    rl_model = None
    if args.model:
        import numpy as np

        from repro.gymapi.spaces import Box
        from repro.rl.policies import ActorCriticPolicy

        rl_model = ActorCriticPolicy(
            Box(0.0, np.inf, shape=(16,), dtype=np.float64),
            Box(0.0, 1.0, shape=(5,), dtype=np.float64),
            seed=0,
        )
        rl_model.load(args.model)
        if "rlbase" not in strategies:
            strategies.append("rlbase")

    config = SimulationConfig(
        num_jobs=args.num_jobs,
        seed=args.seed,
        scenario=args.scenario,
        tenants=args.tenants,
        regions=args.regions,
        routing=args.routing,
        adaptive=args.adaptive,
    )
    runner = _make_runner(args)
    result = run_case_study(
        config, strategies=tuple(strategies), rl_model=rl_model, runner=runner
    )
    print(format_table2(result.summaries))
    if args.histograms:
        for name in result.summaries:
            print()
            print(ascii_histogram(result.fidelities(name), bins=12, width=40, title=f"[{name}]"))
    if runner.store is not None:
        path = runner.store.write_summaries_csv(result.summary_rows())
        print(f"\nwrote summary rows to {path}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.cloud.config import SimulationConfig
    from repro.engine import ExperimentSpec

    field_names = {f.name for f in dataclasses.fields(SimulationConfig)}
    if args.param not in field_names:
        raise SystemExit(
            f"unknown config field {args.param!r}; choose one of {sorted(field_names)}"
        )

    config = SimulationConfig(
        num_jobs=args.num_jobs, seed=args.seed, regions=args.regions, routing=args.routing
    )
    field_types = {f.name: str(f.type) for f in dataclasses.fields(SimulationConfig)}
    ftype = field_types[args.param]
    if "Tuple" in ftype or "List" in ftype:
        raise SystemExit(f"cannot sweep compound field {args.param!r} ({ftype}) from the CLI")

    def parse_bool(text: str) -> bool:
        lowered = text.lower()
        if lowered in ("true", "1", "yes", "on"):
            return True
        if lowered in ("false", "0", "no", "off"):
            return False
        raise ValueError(text)

    parse_bool.__name__ = "bool"  # readable --values error message
    if "bool" in ftype:
        cast = parse_bool
    else:
        cast = int if "int" in ftype else float if "float" in ftype else str
    try:
        values = [cast(v) for v in args.values]
    except ValueError:
        raise SystemExit(f"--values for {args.param} must be {cast.__name__}s, got {args.values}")

    runner = _make_runner(args)
    spec = ExperimentSpec(
        base_config=config,
        strategies=tuple(args.strategies),
        replicates=args.replicates,
        overrides=tuple({args.param: value} for value in values),
    )
    try:
        outcome = runner.run(spec)
    except ValueError as exc:
        # Config validation rejected a swept value (e.g. phi outside [0, 1]).
        raise SystemExit(f"invalid sweep value for {args.param}: {exc}")

    print(f"{args.param:<24} {'strategy':<10} {'seed':>12} {'T_sim(s)':>12} "
          f"{'fidelity':>10} {'T_comm(s)':>12} {'cached':>7}")
    per_value = len(outcome) // len(values)
    for i, cell_result in enumerate(outcome):
        value = values[i // per_value]
        s = cell_result.summary
        print(f"{value!s:<24} {cell_result.cell.strategy:<10} {cell_result.cell.seed:>12} "
              f"{s.total_simulation_time:>12,.1f} {s.mean_fidelity:>10.5f} "
              f"{s.total_communication_time:>12,.1f} {'yes' if cell_result.cached else 'no':>7}")

    if runner.store is not None:
        rows = outcome.summary_rows()
        for i, row in enumerate(rows):
            row[args.param] = values[i // per_value]
        path = runner.store.write_summaries_csv(rows)
        print(f"\nwrote summary rows to {path}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.analysis.training_curve import downsample_curve, summarize_training_curve
    from repro.rlenv.train import train_allocation_policy

    model, curve = train_allocation_policy(
        total_timesteps=args.timesteps,
        seed=args.seed,
        communication_aware=args.comm_aware,
        n_envs=args.n_envs,
    )
    stats = summarize_training_curve(curve)
    print(f"updates           : {int(stats['num_updates'])}")
    print(f"reward            : {stats['initial_reward']:.4f} -> {stats['final_reward']:.4f}")
    print(f"entropy loss      : {stats['initial_entropy_loss']:.2f} -> {stats['final_entropy_loss']:.2f}")

    model.save(args.model)
    print(f"saved policy to {args.model}")

    if args.curve:
        with open(args.curve, "w") as fh:
            json.dump(downsample_curve(curve, max_points=args.curve_points), fh, indent=2)
        print(f"wrote training curve to {args.curve}")
    return 0


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quantum-cloud scheduling simulator (ICPP 2025 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_devices = sub.add_parser("devices", help="list the simulated device catalogue")
    p_devices.add_argument("--qubits", type=int, default=127, help="qubits per device")
    p_devices.add_argument("--qv", type=float, default=127, help="quantum volume per device")
    p_devices.set_defaults(func=_cmd_devices)

    p_scen = sub.add_parser("scenarios", help="list the world-dynamics scenario presets")
    p_scen.set_defaults(func=_cmd_scenarios)

    p_regions = sub.add_parser("regions", help="list the multi-region topology presets")
    p_regions.add_argument("--list", action="store_true",
                           help="list the registered topologies (the default action)")
    p_regions.add_argument("-v", "--verbose", action="store_true",
                           help="also print each topology's regions, pools and scenarios")
    p_regions.set_defaults(func=_cmd_regions)

    p_adaptive = sub.add_parser("adaptive", help="list the adaptive QoS policy presets")
    p_adaptive.add_argument("--list", action="store_true",
                            help="list the registered policies (the default action)")
    p_adaptive.add_argument("-v", "--verbose", action="store_true",
                            help="also print each policy's controllers and gains")
    p_adaptive.set_defaults(func=_cmd_adaptive)

    p_workload = sub.add_parser("workload", help="generate a synthetic workload file")
    p_workload.add_argument("-n", "--num-jobs", type=int, default=100)
    p_workload.add_argument("-o", "--output", default="workload.csv", help=".csv or .json path")
    p_workload.add_argument("--seed", type=int, default=2025)
    p_workload.add_argument("--min-qubits", type=int, default=130)
    p_workload.add_argument("--max-qubits", type=int, default=250)
    p_workload.add_argument("--arrival", choices=("batch", "poisson"), default="batch")
    p_workload.add_argument("--arrival-rate", type=float, default=0.01)
    p_workload.set_defaults(func=_cmd_workload)

    p_sim = sub.add_parser("simulate", help="run one simulation with one policy")
    p_sim.add_argument("--policy", default="speed",
                       help="speed | fidelity | fair | rlbase | any registered policy")
    p_sim.add_argument("-n", "--num-jobs", type=int, default=100)
    p_sim.add_argument("--seed", type=int, default=2025)
    p_sim.add_argument("--jobs", help="CSV/JSON workload file (overrides --num-jobs)")
    p_sim.add_argument("--model", help="trained policy .npz (required for rlbase)")
    p_sim.add_argument("--records", help="write per-job records to this CSV file")
    p_sim.add_argument("--scenario",
                       help="world-dynamics scenario: a preset name (see 'repro scenarios') "
                            "or a recorded .jsonl trace to replay")
    p_sim.add_argument("--tenants",
                       help="multi-tenant mix preset (see 'repro serve --list'); swaps in "
                            "the serve broker")
    p_sim.add_argument("--trace", help="record the run's scenario trace to this JSONL file")
    p_sim.add_argument("--checkpointing", action="store_true",
                       help="checkpointed preemption: aborted jobs (outages, preemptions) "
                            "resume with only their remaining shots")
    p_sim.add_argument("--fast-path", action="store_true",
                       help="flat-event dispatcher for bulk runs (byte-identical results; "
                            "falls back to the legacy engine when ineligible)")
    p_sim.add_argument("--stats", action="store_true",
                       help="print event-loop statistics (events, batches, events/s); "
                            "runs in-process")
    p_sim.add_argument("--regions",
                       help="multi-region topology preset (see 'repro regions'); runs one "
                            "broker shard per region behind the routing tier")
    p_sim.add_argument("--routing", default="locality",
                       choices=("locality", "least-loaded", "calibration-aware", "round-robin"),
                       help="routing policy of the multi-region front tier")
    p_sim.add_argument("--adaptive",
                       help="adaptive QoS policy preset (see 'repro adaptive'); attaches "
                            "the closed-loop control plane")
    _add_engine_options(p_sim)
    p_sim.set_defaults(func=_cmd_simulate)

    p_serve = sub.add_parser(
        "serve",
        help="run a multi-tenant serving simulation and report per-tenant SLOs",
    )
    p_serve.add_argument("--tenants", default="single",
                         help="tenant-mix preset (default: single)")
    p_serve.add_argument("--list", action="store_true",
                         help="list the registered tenant-mix presets and exit")
    p_serve.add_argument("--policy", default="speed",
                         help="speed | fidelity | fair | rlbase | any registered policy")
    p_serve.add_argument("-n", "--num-jobs", type=int, default=100)
    p_serve.add_argument("--seed", type=int, default=2025)
    p_serve.add_argument("--scenario",
                         help="world-dynamics scenario preset or .jsonl trace; its traffic "
                              "is routed to tenants by share")
    p_serve.add_argument("--max-requeues", type=int, default=100,
                         help="starvation guard: fail a job after this many outage/preemption "
                              "requeues")
    p_serve.add_argument("--checkpointing", action="store_true",
                         help="checkpointed preemption: preempted/killed jobs resume with "
                              "only their remaining shots")
    p_serve.add_argument("--model", help="trained policy .npz (required for rlbase)")
    p_serve.add_argument("--records", help="write per-job records to this CSV file "
                                           "(JSONL with --stream)")
    p_serve.add_argument("--report", help="write the per-tenant SLO report to this JSON file")
    p_serve.add_argument("--stream", action="store_true",
                         help="O(1)-memory serving: stream records into P2 percentile "
                              "sketches instead of RAM (million-job runs)")
    p_serve.add_argument("--adaptive",
                         help="adaptive QoS policy preset (see 'repro adaptive'); attaches "
                              "the closed-loop control plane")
    p_serve.set_defaults(func=_cmd_serve)

    p_cmp = sub.add_parser("compare", help="compare allocation strategies (Table 2)")
    p_cmp.add_argument("-n", "--num-jobs", type=int, default=100)
    p_cmp.add_argument("--seed", type=int, default=2025)
    p_cmp.add_argument("--strategies", nargs="+", default=["speed", "fidelity", "fair"])
    p_cmp.add_argument("--model", help="trained policy .npz; adds the rlbase row")
    p_cmp.add_argument("--scenario",
                       help="world-dynamics scenario preset or .jsonl trace (all strategies "
                            "face the same non-stationary world)")
    p_cmp.add_argument("--tenants",
                       help="multi-tenant mix preset (all strategies serve the same mix)")
    p_cmp.add_argument("--regions",
                       help="multi-region topology preset (all strategies route over the "
                            "same sharded cloud)")
    p_cmp.add_argument("--routing", default="locality",
                       choices=("locality", "least-loaded", "calibration-aware", "round-robin"),
                       help="routing policy of the multi-region front tier")
    p_cmp.add_argument("--adaptive",
                       help="adaptive QoS policy preset (all strategies run the same "
                            "closed-loop control plane)")
    p_cmp.add_argument("--histograms", action="store_true", help="print Fig.-6-style histograms")
    _add_engine_options(p_cmp)
    p_cmp.set_defaults(func=_cmd_compare)

    p_sweep = sub.add_parser("sweep", help="sweep one config field over a value grid")
    p_sweep.add_argument("--param", required=True,
                         help="SimulationConfig field to sweep (e.g. comm_fidelity_penalty)")
    p_sweep.add_argument("--values", nargs="+", required=True, help="values to sweep over")
    p_sweep.add_argument("--strategies", nargs="+", default=["speed"])
    p_sweep.add_argument("-n", "--num-jobs", type=int, default=50)
    p_sweep.add_argument("--seed", type=int, default=2025)
    p_sweep.add_argument("--replicates", type=int, default=1,
                         help="workload replicates per grid cell (seeds derived)")
    p_sweep.add_argument("--regions",
                         help="multi-region topology preset applied to every grid cell")
    p_sweep.add_argument("--routing", default="locality",
                         choices=("locality", "least-loaded", "calibration-aware", "round-robin"),
                         help="routing policy of the multi-region front tier")
    _add_engine_options(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_train = sub.add_parser("train", help="train the PPO allocation policy (Fig. 5)")
    p_train.add_argument("--timesteps", type=int, default=100_000)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--model", default="rl_allocation_policy.npz")
    p_train.add_argument("--curve", help="write the training curve to this JSON file")
    p_train.add_argument("--curve-points", type=int, default=50)
    p_train.add_argument("--comm-aware", action="store_true",
                         help="fold the communication penalty into the reward (paper future work)")
    p_train.add_argument("--n-envs", type=int, default=1,
                         help="parallel rollout environments (1 = bit-reproducible serial "
                              "training; 16 trains several times faster)")
    p_train.set_defaults(func=_cmd_train)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
