"""Command-line interface.

Exposes the framework's main workflows without writing Python::

    python -m repro devices                      # list the device catalogue
    python -m repro workload -n 100 -o jobs.csv  # generate a synthetic workload
    python -m repro simulate --policy speed -n 100
    python -m repro simulate --policy fidelity --jobs jobs.csv --records out.csv
    python -m repro compare -n 200               # Table-2-style comparison
    python -m repro train --timesteps 20000 --model policy.npz
    python -m repro simulate --policy rlbase --model policy.npz -n 100

Every command prints a short human-readable report to stdout; ``--records``
and ``--curve`` write machine-readable CSV/JSON artefacts for further
analysis.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro import __version__

__all__ = ["build_parser", "main"]


# --------------------------------------------------------------------------- #
# Command implementations
# --------------------------------------------------------------------------- #
def _cmd_devices(args: argparse.Namespace) -> int:
    from repro.hardware.backends import get_device_profile, list_available_devices

    print(f"{'device':<18} {'qubits':>7} {'QV':>6} {'CLOPS':>9} {'error score':>12}")
    for name in list_available_devices():
        profile = get_device_profile(name, num_qubits=args.qubits, quantum_volume=args.qv)
        print(
            f"{name:<18} {profile.num_qubits:>7} {profile.quantum_volume:>6.0f} "
            f"{profile.clops:>9.0f} {profile.error_score():>12.6f}"
        )
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.cloud.io import jobs_to_csv, jobs_to_json
    from repro.cloud.job_generator import generate_synthetic_jobs

    jobs = generate_synthetic_jobs(
        num_jobs=args.num_jobs,
        seed=args.seed,
        qubit_range=(args.min_qubits, args.max_qubits),
        arrival=args.arrival,
        arrival_rate=args.arrival_rate,
    )
    if args.output.endswith(".json"):
        jobs_to_json(jobs, args.output)
    else:
        jobs_to_csv(jobs, args.output)
    print(f"Wrote {len(jobs)} jobs to {args.output}")
    return 0


def _load_policy(args: argparse.Namespace):
    """Build the policy instance requested on the command line (or None)."""
    if args.policy in ("rlbase", "rl"):
        if not args.model:
            raise SystemExit("--model PATH is required for the rlbase policy")
        import numpy as np

        from repro.gymapi.spaces import Box
        from repro.rl.policies import ActorCriticPolicy
        from repro.scheduling.rl_policy import RLAllocationPolicy

        policy_net = ActorCriticPolicy(
            Box(0.0, np.inf, shape=(16,), dtype=np.float64),
            Box(0.0, 1.0, shape=(5,), dtype=np.float64),
            seed=0,
        )
        policy_net.load(args.model)
        return RLAllocationPolicy(policy_net)
    return None  # let the environment build it from the registry by name


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.cloud.config import SimulationConfig
    from repro.cloud.environment import QCloudSimEnv
    from repro.cloud.io import jobs_from_csv, jobs_from_json

    config = SimulationConfig(policy=args.policy, num_jobs=args.num_jobs, seed=args.seed)
    jobs = None
    if args.jobs:
        jobs = jobs_from_json(args.jobs) if args.jobs.endswith(".json") else jobs_from_csv(args.jobs)

    env = QCloudSimEnv(config, jobs=jobs, policy=_load_policy(args))
    records = env.run_until_complete()
    summary = env.summary()

    print(f"policy        : {summary.strategy}")
    print(f"jobs completed: {summary.num_jobs}")
    print(f"T_sim (s)     : {summary.total_simulation_time:,.2f}")
    print(f"fidelity      : {summary.mean_fidelity:.5f} ± {summary.std_fidelity:.5f}")
    print(f"T_comm (s)    : {summary.total_communication_time:,.2f}")
    print(f"devices/job   : {summary.mean_devices_per_job:.2f}")

    if args.records:
        env.records.to_csv(args.records)
        print(f"wrote per-job records to {args.records}")
    return 0 if len(records) else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import run_case_study
    from repro.analysis.histogram import ascii_histogram
    from repro.analysis.reporting import format_table2
    from repro.cloud.config import SimulationConfig

    strategies: List[str] = list(args.strategies)
    rl_model = None
    if args.model:
        import numpy as np

        from repro.gymapi.spaces import Box
        from repro.rl.policies import ActorCriticPolicy

        rl_model = ActorCriticPolicy(
            Box(0.0, np.inf, shape=(16,), dtype=np.float64),
            Box(0.0, 1.0, shape=(5,), dtype=np.float64),
            seed=0,
        )
        rl_model.load(args.model)
        if "rlbase" not in strategies:
            strategies.append("rlbase")

    config = SimulationConfig(num_jobs=args.num_jobs, seed=args.seed)
    result = run_case_study(config, strategies=tuple(strategies), rl_model=rl_model)
    print(format_table2(result.summaries))
    if args.histograms:
        for name in result.summaries:
            print()
            print(ascii_histogram(result.fidelities(name), bins=12, width=40, title=f"[{name}]"))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.analysis.training_curve import downsample_curve, summarize_training_curve
    from repro.rlenv.train import train_allocation_policy

    model, curve = train_allocation_policy(
        total_timesteps=args.timesteps,
        seed=args.seed,
        communication_aware=args.comm_aware,
    )
    stats = summarize_training_curve(curve)
    print(f"updates           : {int(stats['num_updates'])}")
    print(f"reward            : {stats['initial_reward']:.4f} -> {stats['final_reward']:.4f}")
    print(f"entropy loss      : {stats['initial_entropy_loss']:.2f} -> {stats['final_entropy_loss']:.2f}")

    model.save(args.model)
    print(f"saved policy to {args.model}")

    if args.curve:
        with open(args.curve, "w") as fh:
            json.dump(downsample_curve(curve, max_points=args.curve_points), fh, indent=2)
        print(f"wrote training curve to {args.curve}")
    return 0


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quantum-cloud scheduling simulator (ICPP 2025 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_devices = sub.add_parser("devices", help="list the simulated device catalogue")
    p_devices.add_argument("--qubits", type=int, default=127, help="qubits per device")
    p_devices.add_argument("--qv", type=float, default=127, help="quantum volume per device")
    p_devices.set_defaults(func=_cmd_devices)

    p_workload = sub.add_parser("workload", help="generate a synthetic workload file")
    p_workload.add_argument("-n", "--num-jobs", type=int, default=100)
    p_workload.add_argument("-o", "--output", default="workload.csv", help=".csv or .json path")
    p_workload.add_argument("--seed", type=int, default=2025)
    p_workload.add_argument("--min-qubits", type=int, default=130)
    p_workload.add_argument("--max-qubits", type=int, default=250)
    p_workload.add_argument("--arrival", choices=("batch", "poisson"), default="batch")
    p_workload.add_argument("--arrival-rate", type=float, default=0.01)
    p_workload.set_defaults(func=_cmd_workload)

    p_sim = sub.add_parser("simulate", help="run one simulation with one policy")
    p_sim.add_argument("--policy", default="speed",
                       help="speed | fidelity | fair | rlbase | any registered policy")
    p_sim.add_argument("-n", "--num-jobs", type=int, default=100)
    p_sim.add_argument("--seed", type=int, default=2025)
    p_sim.add_argument("--jobs", help="CSV/JSON workload file (overrides --num-jobs)")
    p_sim.add_argument("--model", help="trained policy .npz (required for rlbase)")
    p_sim.add_argument("--records", help="write per-job records to this CSV file")
    p_sim.set_defaults(func=_cmd_simulate)

    p_cmp = sub.add_parser("compare", help="compare allocation strategies (Table 2)")
    p_cmp.add_argument("-n", "--num-jobs", type=int, default=100)
    p_cmp.add_argument("--seed", type=int, default=2025)
    p_cmp.add_argument("--strategies", nargs="+", default=["speed", "fidelity", "fair"])
    p_cmp.add_argument("--model", help="trained policy .npz; adds the rlbase row")
    p_cmp.add_argument("--histograms", action="store_true", help="print Fig.-6-style histograms")
    p_cmp.set_defaults(func=_cmd_compare)

    p_train = sub.add_parser("train", help="train the PPO allocation policy (Fig. 5)")
    p_train.add_argument("--timesteps", type=int, default=100_000)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--model", default="rl_allocation_policy.npz")
    p_train.add_argument("--curve", help="write the training curve to this JSON file")
    p_train.add_argument("--curve-points", type=int, default=50)
    p_train.add_argument("--comm-aware", action="store_true",
                         help="fold the communication penalty into the reward (paper future work)")
    p_train.set_defaults(func=_cmd_train)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
