"""Region specifications: declarative multi-region cloud topologies.

A :class:`RegionTopology` describes a sharded quantum cloud the way the
:class:`~repro.dynamics.scenario.Scenario` dataclasses describe world
dynamics: frozen, picklable specs whose ``repr`` is a stable content
fingerprint, carrying no runtime state.  A topology is

* a tuple of :class:`RegionSpec`\\ s — each region owns a device pool, a
  share of the global workload and (optionally) its own world-dynamics
  scenario (maintenance windows, outages, region-local traffic shaping),
* a tuple of :class:`RegionLink`\\ s — pairwise inter-region channels, each
  reusing the :class:`~repro.cloud.communication.ClassicalCommunicationModel`
  (per-qubit transfer latency λ, per-hop fidelity penalty φ), plus a default
  link model for pairs without an explicit entry.

The :class:`~repro.region.cloud.RegionalCloud` turns a topology into one
broker shard per region; the :class:`~repro.region.router.Router` decides
which shard serves which job.  A one-region topology degenerates to the
plain single-broker cloud — byte-identically (see
``tests/region/test_single_region_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cloud.communication import ClassicalCommunicationModel

__all__ = ["DEFAULT_REGION_LINK", "RegionSpec", "RegionLink", "RegionTopology"]

#: Inter-region channels are slower and noisier than intra-cloud links:
#: wide-area classical transfer at 0.05 s/qubit and a 0.98 per-hop penalty.
DEFAULT_REGION_LINK = ClassicalCommunicationModel(
    latency_per_qubit=0.05, fidelity_penalty=0.98
)


@dataclass(frozen=True)
class RegionSpec:
    """One region: a named device pool with a workload share.

    Attributes
    ----------
    name:
        Unique region name (``"eu-central"``, ``"us-east"``, …).
    device_names:
        Catalogue device names forming this region's fleet.  The *empty*
        tuple means "inherit the run's configured fleet" — the one-region
        presets use it so a single-region topology stays byte-identical to
        the plain cloud for any device configuration.
    workload_share:
        Fraction of the global workload originating in this region
        (normalised over the topology; split by largest remainder).
    scenario:
        Optional world-dynamics scenario *name* for this region only (see
        :mod:`repro.dynamics`).  Its maintenance/outage/drift specs run
        inside the region's shard; its traffic spec shapes the arrivals of
        the region's origin jobs; fleet-wide maintenance windows additionally
        mark the region *down* to the router for their duration.
    """

    name: str
    device_names: Tuple[str, ...] = ()
    workload_share: float = 1.0
    scenario: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("region name must be non-empty")
        if self.workload_share <= 0:
            raise ValueError("workload_share must be positive")
        if self.scenario is not None and not self.scenario:
            raise ValueError("scenario must be None or a non-empty name")
        # Tolerate lists from hand-built specs; store a hashable tuple.
        object.__setattr__(self, "device_names", tuple(self.device_names))


@dataclass(frozen=True)
class RegionLink:
    """A pairwise inter-region channel (undirected).

    The channel's cost model is a plain
    :class:`~repro.cloud.communication.ClassicalCommunicationModel`: a job
    served outside its origin region pays ``latency_per_qubit * q`` seconds
    of transfer delay and one hop of the ``fidelity_penalty`` (φ¹).
    """

    a: str
    b: str
    model: ClassicalCommunicationModel = field(default_factory=lambda: DEFAULT_REGION_LINK)

    def __post_init__(self) -> None:
        if not self.a or not self.b:
            raise ValueError("link endpoints must be non-empty region names")
        if self.a == self.b:
            raise ValueError(f"a region link cannot loop ({self.a!r} -> itself)")

    def connects(self, x: str, y: str) -> bool:
        """Whether this link joins regions *x* and *y* (order-insensitive)."""
        return {self.a, self.b} == {x, y}


@dataclass(frozen=True)
class RegionTopology:
    """A named multi-region cloud: regions plus their pairwise links.

    Attributes
    ----------
    name:
        Topology name (how configs and the CLI refer to it).
    regions:
        The region shards, in routing order (round-robin cycles this order;
        ties everywhere break by it).
    links:
        Explicit pairwise channels; pairs without an entry fall back to
        ``default_link``.
    default_link:
        Channel model of every unlisted region pair.
    description:
        One-line human description (shown by ``repro regions``).
    """

    name: str
    regions: Tuple[RegionSpec, ...]
    links: Tuple[RegionLink, ...] = ()
    default_link: ClassicalCommunicationModel = field(
        default_factory=lambda: DEFAULT_REGION_LINK
    )
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("topology name must be non-empty")
        if not self.regions:
            raise ValueError("a topology needs at least one region")
        object.__setattr__(self, "regions", tuple(self.regions))
        object.__setattr__(self, "links", tuple(self.links))
        names = [r.name for r in self.regions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate region names: {names}")
        known = set(names)
        for link in self.links:
            for endpoint in (link.a, link.b):
                if endpoint not in known:
                    raise ValueError(
                        f"link {link.a!r}<->{link.b!r} references unknown region "
                        f"{endpoint!r}; regions: {sorted(known)}"
                    )
        seen_pairs = set()
        for link in self.links:
            pair = frozenset((link.a, link.b))
            if pair in seen_pairs:
                raise ValueError(f"duplicate link between {link.a!r} and {link.b!r}")
            seen_pairs.add(pair)

    # -- lookups ---------------------------------------------------------------
    @property
    def region_names(self) -> List[str]:
        """Region names in routing order."""
        return [r.name for r in self.regions]

    def region(self, name: str) -> RegionSpec:
        """Look up one region by name."""
        for spec in self.regions:
            if spec.name == name:
                return spec
        raise KeyError(f"unknown region {name!r}; available: {self.region_names}")

    def link(self, a: str, b: str) -> Optional[ClassicalCommunicationModel]:
        """The channel model between regions *a* and *b*.

        ``None`` for ``a == b`` — intra-region traffic pays no inter-region
        cost (that is what makes one-region topologies byte-identical to the
        plain cloud).
        """
        if a == b:
            return None
        self.region(a), self.region(b)  # validate both endpoints
        for entry in self.links:
            if entry.connects(a, b):
                return entry.model
        return self.default_link

    def workload_shares(self) -> Dict[str, float]:
        """Region name → normalised workload share."""
        total = sum(r.workload_share for r in self.regions)
        return {r.name: r.workload_share / total for r in self.regions}

    @property
    def is_single_region(self) -> bool:
        """Whether the topology degenerates to the plain single-broker cloud."""
        return len(self.regions) == 1
