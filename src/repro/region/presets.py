"""Named region-topology presets and the topology registry.

The registry maps topology names to
:class:`~repro.region.spec.RegionTopology` instances so configurations,
experiment grids and the CLI can select a sharded cloud by name
(``SimulationConfig(regions="dual")``, ``repro simulate --regions
follow-the-sun``).  Six presets ship built-in:

=========================  ==================================================
``single``                 one region inheriting the configured fleet —
                           byte-identical to the plain single-broker cloud
``dual``                   two healthy regions: a fast EU pool (2x 220k
                           CLOPS) vs a larger, slower US pool (3 devices)
``global-triad``           three regions; the AP pool is small and slow, so
                           load- and calibration-aware routing matter
``region-outage``          ``dual`` with the US region down for its first
                           1,800 s (fleet-wide maintenance) — arrivals in the
                           window spill to the EU region
``cross-region-rush-hour`` ``dual`` where each region's origin traffic is a
                           diurnal process in antiphase: one region's crest
                           is the other's trough
``follow-the-sun``         three regions whose diurnal origin traffic peaks
                           8 simulated hours apart, like timezone-shifted
                           business days
=========================  ==================================================

A region's pool lists device *models* from the hardware catalogue; the same
model may be deployed in several regions (each shard instantiates its own
copy).  The traffic/outage scenarios the presets reference are registered in
the :mod:`repro.dynamics` scenario registry when this module is imported.
"""

from __future__ import annotations

import math
from typing import Dict, List, Union

from repro.dynamics import MaintenanceWindow, Scenario, TrafficSpec, register_scenario
from repro.region.spec import RegionSpec, RegionTopology

__all__ = [
    "register_topology",
    "get_topology",
    "available_topologies",
    "resolve_topology",
]

_REGISTRY: Dict[str, RegionTopology] = {}


def register_topology(topology: RegionTopology) -> None:
    """Register *topology* under its name (overwrites existing entries)."""
    _REGISTRY[topology.name] = topology


def get_topology(name: str) -> RegionTopology:
    """Look up a registered topology by name."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown region topology {name!r}; available: {available_topologies()}")
    return _REGISTRY[name]


def available_topologies() -> List[str]:
    """Names of all registered topologies (presets first, in preset order)."""
    return list(_REGISTRY)


def resolve_topology(topology: Union[str, RegionTopology]) -> RegionTopology:
    """Resolve a topology reference: a registered name or an explicit instance."""
    if isinstance(topology, RegionTopology):
        return topology
    return get_topology(topology)


#: Device pools of the multi-region presets (catalogue model names).
_EU_POOL = ("ibm_strasbourg", "ibm_brussels")
_US_POOL = ("ibm_kyiv", "ibm_quebec", "ibm_kawasaki")
_US_SMALL_POOL = ("ibm_kyiv", "ibm_quebec")
_AP_POOL = ("ibm_kawasaki", "ibm_kyiv")


def _register_region_scenarios() -> None:
    # Region-local world dynamics, sized like the dynamics presets against
    # the paper's case study (a 100-job batch drains in ~5-6 k simulated
    # seconds on the full fleet; a half fleet takes roughly twice that).
    register_scenario(
        Scenario(
            name="region-blackout",
            description="whole-fleet maintenance for the first 1,800 s (region-wide outage)",
            maintenance=(
                MaintenanceWindow(start=0.0, duration=1800.0, device=None, kill_running=True),
            ),
        )
    )
    register_scenario(
        Scenario(
            name="region-rush-am",
            description="diurnal origin traffic peaking in the morning half-period",
            traffic=TrafficSpec(model="diurnal", rate=0.008, peak_rate=0.1,
                                period=7200.0, phase=math.pi),
        )
    )
    register_scenario(
        Scenario(
            name="region-rush-pm",
            description="diurnal origin traffic peaking in the evening half-period",
            traffic=TrafficSpec(model="diurnal", rate=0.008, peak_rate=0.1,
                                period=7200.0, phase=0.0),
        )
    )
    for hours in (0, 8, 16):
        register_scenario(
            Scenario(
                name=f"region-sun-{hours:02d}",
                description=f"diurnal origin traffic of a timezone {hours} h ahead of UTC",
                traffic=TrafficSpec(
                    model="diurnal",
                    rate=0.006,
                    peak_rate=0.08,
                    period=10_800.0,
                    phase=2.0 * math.pi * hours / 24.0,
                ),
            )
        )


def _register_presets() -> None:
    register_topology(
        RegionTopology(
            name="single",
            description="one region inheriting the configured fleet (the plain cloud's world)",
            regions=(RegionSpec(name="global", device_names=(), workload_share=1.0),),
        )
    )
    register_topology(
        RegionTopology(
            name="dual",
            description="a fast EU pool vs a larger, slower US pool, both healthy",
            regions=(
                RegionSpec(name="eu-central", device_names=_EU_POOL, workload_share=0.5),
                RegionSpec(name="us-east", device_names=_US_POOL, workload_share=0.5),
            ),
        )
    )
    register_topology(
        RegionTopology(
            name="global-triad",
            description="EU/US/AP pools of uneven size and speed — routing policy matters",
            regions=(
                RegionSpec(name="eu-central", device_names=_EU_POOL, workload_share=0.4),
                RegionSpec(name="us-east", device_names=_US_SMALL_POOL, workload_share=0.35),
                RegionSpec(name="ap-tokyo", device_names=_AP_POOL, workload_share=0.25),
            ),
        )
    )
    register_topology(
        RegionTopology(
            name="region-outage",
            description="dual layout with the US region down for its first 1,800 s",
            regions=(
                RegionSpec(name="eu-central", device_names=_EU_POOL, workload_share=0.5),
                RegionSpec(
                    name="us-east",
                    device_names=_US_POOL,
                    workload_share=0.5,
                    scenario="region-blackout",
                ),
            ),
        )
    )
    register_topology(
        RegionTopology(
            name="cross-region-rush-hour",
            description="dual layout with antiphase diurnal origin traffic per region",
            regions=(
                RegionSpec(
                    name="eu-central",
                    device_names=_EU_POOL,
                    workload_share=0.5,
                    scenario="region-rush-am",
                ),
                RegionSpec(
                    name="us-east",
                    device_names=_US_POOL,
                    workload_share=0.5,
                    scenario="region-rush-pm",
                ),
            ),
        )
    )
    register_topology(
        RegionTopology(
            name="follow-the-sun",
            description="three regions whose diurnal traffic peaks 8 h apart",
            regions=(
                RegionSpec(
                    name="eu-central",
                    device_names=_EU_POOL,
                    workload_share=0.4,
                    scenario="region-sun-00",
                ),
                RegionSpec(
                    name="us-east",
                    device_names=_US_SMALL_POOL,
                    workload_share=0.35,
                    scenario="region-sun-08",
                ),
                RegionSpec(
                    name="ap-tokyo",
                    device_names=_AP_POOL,
                    workload_share=0.25,
                    scenario="region-sun-16",
                ),
            ),
        )
    )


_register_region_scenarios()
_register_presets()
