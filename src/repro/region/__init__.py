"""repro.region — sharded multi-region quantum cloud with a routing tier.

The paper's cloud is one broker over one fleet; production quantum clouds
are regional fleets behind a router.  This package supplies the missing
tier:

* **Topologies** (:mod:`repro.region.spec`): frozen
  :class:`RegionSpec`/:class:`RegionTopology` dataclasses — per-region
  device pools, workload shares, optional per-region world-dynamics
  scenarios, and pairwise inter-region channels reusing the
  :class:`~repro.cloud.communication.ClassicalCommunicationModel`.
* **Routing** (:mod:`repro.region.router`): a deterministic front tier with
  four pluggable policies — ``locality``, ``least-loaded``,
  ``calibration-aware``, ``round-robin`` — that skips down or infeasible
  regions and drives cross-region spillover.
* **Execution** (:mod:`repro.region.cloud`): :class:`RegionalCloud` runs one
  broker shard per region (serially or as real parallel processes via the
  :class:`~repro.engine.runner.ExperimentRunner` process backend), migrates
  terminally failed jobs across regions, and merges the per-shard record
  streams into one globally-ordered result::

      cloud = RegionalCloud(SimulationConfig(num_jobs=100, regions="dual"))
      records = cloud.run_until_complete()
      print(cloud.summary().as_row())
      print(cloud.region_reports())

* **Presets** (:mod:`repro.region.presets`): ``single``, ``dual``,
  ``global-triad``, plus three stress topologies — ``region-outage``,
  ``cross-region-rush-hour``, ``follow-the-sun`` — registered on import.

A one-region topology is byte-identical to the plain single-broker cloud,
and process-parallel shard execution is byte-identical to serial shard
execution (both regression-tested in ``tests/region/``).
"""

from repro.region.cloud import (
    RegionalCloud,
    apportion_regional_jobs,
    regional_jobs,
    route_jobs_to_regions,
)
from repro.region.presets import (
    available_topologies,
    get_topology,
    register_topology,
    resolve_topology,
)
from repro.region.router import ROUTING_POLICIES, RegionState, Router
from repro.region.spec import DEFAULT_REGION_LINK, RegionLink, RegionSpec, RegionTopology

__all__ = [
    "DEFAULT_REGION_LINK",
    "ROUTING_POLICIES",
    "RegionLink",
    "RegionSpec",
    "RegionState",
    "RegionTopology",
    "RegionalCloud",
    "Router",
    "apportion_regional_jobs",
    "available_topologies",
    "get_topology",
    "register_topology",
    "regional_jobs",
    "resolve_topology",
    "route_jobs_to_regions",
]
