"""The routing tier: which region shard serves which job.

The :class:`Router` is the multi-region cloud's front door.  It sees every
job once, in arrival order, before any shard runs, and assigns it a region
deterministically — no RNG, no wall clock — so a routing decision is a pure
function of (topology, config, policy, job stream).  Four policies ship:

``locality``
    Serve the job in its origin region unless that region is down at the
    job's arrival or can never fit it; spilled jobs fall back to the
    least-loaded feasible region.  The production default: it keeps
    cross-region transfer cost at zero for healthy regions.
``least-loaded``
    Greedy balance of normalised projected load ``(L_r + cost) / C_r``,
    where ``C_r`` is the region's aggregate throughput capacity
    (Σ CLOPS·qubits over its pool) and ``L_r`` the cost already routed
    there.  Ignores origin entirely.
``calibration-aware``
    Least-loaded scoring scaled by the region's mean calibration error
    score (paper Eq. 2): a fast but badly-calibrated pool loses to a
    slightly slower, cleaner one until its load advantage dominates.
``round-robin``
    Cycles regions in topology order, skipping down/infeasible ones — the
    baseline the smarter policies are compared against.

Every policy skips regions that are *down* at the job's arrival (a region
scenario's fleet-wide maintenance windows mark the whole shard offline) and
regions whose pool can never fit the job's width.  When no region qualifies,
the job goes to the largest feasible region regardless of downtime — the
shard's own broker then queues or fails it, which keeps "impossible" jobs
flowing through the normal failure-accounting path.

The same :meth:`Router.assign` drives spillover *migration*: jobs that
terminally failed in their assigned shard are re-routed with that region
excluded (see :class:`~repro.region.cloud.RegionalCloud`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.cloud.qjob import QJob
from repro.dynamics import resolve_scenario
from repro.hardware.backends import get_device_profile
from repro.region.spec import RegionSpec, RegionTopology

__all__ = ["ROUTING_POLICIES", "RegionState", "Router"]

#: Supported routing policies, in documentation order.
ROUTING_POLICIES: Tuple[str, ...] = (
    "locality",
    "least-loaded",
    "calibration-aware",
    "round-robin",
)


class RegionState:
    """The router's static + accumulated view of one region.

    Static facts (pool width, capacity, mean error score, down windows) are
    derived once from the topology and config; ``load`` accumulates the cost
    of every job routed here so far.
    """

    def __init__(
        self,
        spec: RegionSpec,
        device_names: Tuple[str, ...],
        device_qubits: int,
        quantum_volume: float,
    ) -> None:
        self.spec = spec
        self.name = spec.name
        self.device_names = device_names
        profiles = [
            get_device_profile(name, device_qubits, quantum_volume)
            for name in device_names
        ]
        #: Total qubits across the pool — the widest job the shard can ever
        #: serve (the partitioner splits jobs across devices).
        self.total_qubits: int = sum(p.num_qubits for p in profiles)
        #: Aggregate throughput capacity: Σ CLOPS·qubits over the pool.
        self.capacity: float = float(sum(p.clops * p.num_qubits for p in profiles))
        #: Mean calibration error score of the pool (paper Eq. 2).
        self.mean_error_score: float = sum(p.error_score() for p in profiles) / len(profiles)
        #: Cost already routed here (see :meth:`Router.job_cost`).
        self.load: float = 0.0
        #: ``(start, end)`` intervals during which the whole region is down:
        #: fleet-wide maintenance windows of the region's scenario.
        self.down_intervals: Tuple[Tuple[float, float], ...] = ()
        if spec.scenario is not None:
            scenario = resolve_scenario(spec.scenario)
            self.down_intervals = tuple(
                (window.start, window.start + window.duration)
                for window in scenario.maintenance
                if window.device is None
            )

    def is_down(self, time: float) -> bool:
        """Whether the whole region is offline at *time*."""
        return any(start <= time < end for start, end in self.down_intervals)

    def fits(self, job: QJob) -> bool:
        """Whether the region's pool can ever serve *job* (width check)."""
        return job.num_qubits <= self.total_qubits

    def projected(self, cost: float) -> float:
        """Normalised load if *cost* were routed here."""
        return (self.load + cost) / self.capacity


class Router:
    """Deterministic front tier assigning jobs to region shards.

    Parameters
    ----------
    topology:
        The resolved region topology.
    config:
        The run's configuration — supplies the inherited fleet of regions
        with an empty pool, plus device qubits / quantum volume.
    policy:
        One of :data:`ROUTING_POLICIES`.
    """

    def __init__(self, topology: RegionTopology, config, policy: str = "locality") -> None:
        if policy not in ROUTING_POLICIES:
            raise ValueError(f"unknown routing policy {policy!r}; choose from {ROUTING_POLICIES}")
        self.topology = topology
        self.policy = policy
        self.states: Dict[str, RegionState] = {}
        for spec in topology.regions:
            pool = spec.device_names or tuple(config.device_names)
            self.states[spec.name] = RegionState(
                spec, pool, config.device_qubits, config.quantum_volume
            )
        self._rr_index = 0

    # -- cost model ------------------------------------------------------------
    @staticmethod
    def job_cost(job: QJob) -> float:
        """Routing-tier cost proxy of one job: qubits × depth × shots.

        Proportional to the layer-execution work the shard will do; the
        absolute scale cancels in every policy's normalised comparison.
        """
        return float(job.num_qubits) * float(job.depth) * float(job.num_shots)

    # -- assignment ------------------------------------------------------------
    def assign(
        self,
        job: QJob,
        origin: Optional[str] = None,
        exclude: FrozenSet[str] = frozenset(),
    ) -> str:
        """Pick the region that serves *job* and account its load there.

        *origin* is the region the job arrived in (used by ``locality`` and
        as the round-robin's notion of "home"); *exclude* removes regions
        already tried (migration re-routing).
        """
        cost = self.job_cost(job)
        candidates = [
            state
            for state in self.states.values()
            if state.name not in exclude
            and state.fits(job)
            and not state.is_down(job.arrival_time)
        ]
        chosen = self._choose(job, origin, candidates, cost)
        if chosen is None:
            chosen = self._fallback(job, exclude)
        chosen.load += cost
        return chosen.name

    def _choose(
        self,
        job: QJob,
        origin: Optional[str],
        candidates: List[RegionState],
        cost: float,
    ) -> Optional[RegionState]:
        if not candidates:
            return None
        if self.policy == "locality" and origin is not None:
            for state in candidates:
                if state.name == origin:
                    return state
            # Origin down/infeasible/excluded: spill to the least-loaded
            # feasible region instead.
        if self.policy == "round-robin":
            names = self.topology.region_names
            eligible = {state.name for state in candidates}
            for offset in range(len(names)):
                name = names[(self._rr_index + offset) % len(names)]
                if name in eligible:
                    self._rr_index = (self._rr_index + offset + 1) % len(names)
                    return self.states[name]
            return None
        if self.policy == "calibration-aware":
            return min(
                candidates,
                key=lambda s: (
                    s.mean_error_score * (1.0 + s.projected(cost)),
                    self.topology.region_names.index(s.name),
                ),
            )
        # "least-loaded", and the spill path of "locality".
        return min(
            candidates,
            key=lambda s: (s.projected(cost), self.topology.region_names.index(s.name)),
        )

    def _fallback(self, job: QJob, exclude: FrozenSet[str]) -> RegionState:
        """No up+feasible region: send the job somewhere it can at least
        queue (widest pool wins), so it fails through the shard's normal
        accounting rather than vanishing at the routing tier."""
        pool = [s for s in self.states.values() if s.name not in exclude] or list(
            self.states.values()
        )
        return max(
            pool,
            key=lambda s: (
                s.total_qubits,
                -self.topology.region_names.index(s.name),
            ),
        )

    # -- reporting -------------------------------------------------------------
    def load_report(self) -> Dict[str, Dict[str, float]]:
        """Per-region routed load and capacity (for summaries and the CLI)."""
        return {
            name: {
                "capacity": state.capacity,
                "routed_load": state.load,
                "normalised_load": state.load / state.capacity,
                "mean_error_score": state.mean_error_score,
            }
            for name, state in self.states.items()
        }
