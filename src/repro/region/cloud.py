"""The sharded multi-region cloud: one broker shard per region.

A :class:`RegionalCloud` turns a :class:`~repro.region.spec.RegionTopology`
into N independent :class:`~repro.cloud.environment.QCloudSimEnv` shards —
one per region, each owning its device pool and (optionally) its own world-
dynamics scenario — behind a :class:`~repro.region.router.Router` front
tier.  The execution model is *epoch-based*:

1. The router assigns every job a region (deterministically, in arrival
   order).  Jobs served outside their origin region arrive at the remote
   shard ``latency_per_qubit * num_qubits`` seconds late and pay one hop of
   the link's fidelity penalty.
2. All shards with work run to completion — serially, or as real parallel
   processes via the ``"process"`` backend of
   :class:`~repro.engine.runner.ExperimentRunner`.  A shard is a pure
   function of its picklable :class:`_ShardTask`, so both backends produce
   byte-identical records.
3. Jobs that *terminally failed* in their shard (requeue limit exhausted,
   infeasible in that pool) migrate: the router re-routes them with the
   failed region excluded, they pay the extra hop, and a follow-up epoch
   runs on the target shards.  After ``max_migration_rounds`` epochs the
   survivors are reported as failed.
4. Per-shard record streams merge into one globally job-id-ordered result.
   Off-origin records are restored to their *original* arrival time, with
   the accumulated transfer latency added to ``communication_time`` and the
   per-hop fidelity penalties multiplied in — so the merged stream reads
   exactly like one cloud's output, with cross-region cost made visible.

A one-region topology bypasses routing and workload splitting entirely: the
single shard receives the unmodified config (and workload), making the run
byte-identical to the plain single-broker cloud — the regression tested in
``tests/region/test_single_region_equivalence.py``.

Multi-region runs generate each region's origin workload from the region's
own scenario traffic model (or the config's default arrival process) on an
independent seed sub-stream, split over regions by workload share (largest
remainder) — mirroring how :mod:`repro.serve` builds tenant workloads.
Multi-tenant mixes and a global ``config.scenario`` are rejected for
multi-region runs: tenancy lives inside a shard, world dynamics live in the
per-region scenarios.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cloud.config import SimulationConfig
from repro.cloud.qjob import QJob
from repro.cloud.records import JobRecord, JobRecordsManager
from repro.engine.runner import ExperimentRunner
from repro.engine.spec import derive_seed
from repro.metrics.aggregate import StrategySummary, empty_summary, summarize_records
from repro.region.presets import resolve_topology
from repro.region.router import Router
from repro.region.spec import RegionSpec, RegionTopology

__all__ = [
    "RegionalCloud",
    "apportion_regional_jobs",
    "regional_jobs",
    "route_jobs_to_regions",
]


# -- regional workloads ----------------------------------------------------------
def apportion_regional_jobs(topology: RegionTopology, num_jobs: int) -> List[int]:
    """Split *num_jobs* over regions by workload share (largest remainder).

    Deterministic: quotas are floored, then leftover jobs go to the largest
    fractional remainders (ties broken by topology order).
    """
    if num_jobs <= 0:
        raise ValueError("num_jobs must be positive")
    shares = topology.workload_shares()
    quotas = [num_jobs * shares[region.name] for region in topology.regions]
    counts = [int(q) for q in quotas]
    remainders = [q - c for q, c in zip(quotas, counts)]
    leftover = num_jobs - sum(counts)
    for index in sorted(range(len(counts)), key=lambda i: (-remainders[i], i))[:leftover]:
        counts[index] += 1
    return counts


def _generate_for_region(
    region: RegionSpec, count: int, seed: int, config: SimulationConfig
) -> List[QJob]:
    traffic = None
    if region.scenario is not None:
        from repro.dynamics import resolve_scenario

        traffic = resolve_scenario(region.scenario).traffic
    if traffic is not None:
        from repro.workloads.arrivals import generate_traffic_jobs

        return generate_traffic_jobs(
            traffic,
            num_jobs=count,
            seed=seed,
            qubit_range=config.qubit_range,
            depth_range=config.depth_range,
            shots_range=config.shots_range,
            two_qubit_density=config.two_qubit_density,
        )
    from repro.cloud.job_generator import generate_synthetic_jobs

    return generate_synthetic_jobs(
        num_jobs=count,
        seed=seed,
        qubit_range=config.qubit_range,
        depth_range=config.depth_range,
        shots_range=config.shots_range,
        two_qubit_density=config.two_qubit_density,
        arrival=config.arrival,
        arrival_rate=config.arrival_rate,
    )


def regional_jobs(
    topology: RegionTopology, config: SimulationConfig
) -> Optional[Tuple[List[QJob], Dict[int, str]]]:
    """The merged multi-region workload, or ``None`` for one-region topologies.

    Every region contributes its workload share of ``config.num_jobs``,
    generated from its scenario's traffic model (or the config's default
    arrival process) on an independent seed sub-stream.  Returns the merged,
    arrival-ordered, renumbered job list plus each job's origin region.

    A one-region topology returns ``None``: the shard then generates the
    exact default workload itself, keeping the run byte-identical to the
    plain cloud.
    """
    if topology.is_single_region:
        return None

    counts = apportion_regional_jobs(topology, config.num_jobs)
    merged: List[Tuple[QJob, str]] = []
    for region_index, (region, count) in enumerate(zip(topology.regions, counts)):
        if count == 0:
            continue
        seed = derive_seed(config.seed, "region-workload", topology.name, region.name)
        for job in _generate_for_region(region, count, seed, config):
            # Offset ids per region so the pre-renumber sort key is unique.
            job.job_id = region_index * config.num_jobs + job.job_id
            merged.append((job, region.name))

    merged.sort(key=lambda pair: (pair[0].arrival_time, pair[0].job_id))
    origin: Dict[int, str] = {}
    jobs: List[QJob] = []
    for new_id, (job, region_name) in enumerate(merged):
        job.job_id = new_id
        origin[new_id] = region_name
        jobs.append(job)
    return jobs, origin


def route_jobs_to_regions(
    jobs: Sequence[QJob], topology: RegionTopology, seed: Optional[int]
) -> Dict[int, str]:
    """Attribute an *existing* workload to origin regions by workload share.

    One deterministic weighted draw per job from a dedicated seed sub-stream
    (mirrors :func:`repro.serve.route_jobs_to_tenants`); arrival times and
    circuits are untouched.  Returns job id → origin region name.
    """
    jobs = list(jobs)
    if topology.is_single_region:
        only = topology.regions[0].name
        return {job.job_id: only for job in jobs}
    rng = np.random.default_rng(derive_seed(seed, "region-routing", topology.name))
    shares = topology.workload_shares()
    names = topology.region_names
    weights = np.array([shares[name] for name in names], dtype=np.float64)
    weights /= weights.sum()
    choices = rng.choice(len(names), size=len(jobs), p=weights)
    return {job.job_id: names[int(index)] for job, index in zip(jobs, choices)}


# -- the shard worker ------------------------------------------------------------
@dataclass(frozen=True)
class _ShardTask:
    """Everything one region shard needs, picklable for the process pool."""

    region: str
    config: SimulationConfig
    jobs: Optional[Tuple[QJob, ...]] = None
    policy: Optional[Any] = None


@dataclass(frozen=True)
class _ShardResult:
    """One shard's complete outcome, picklable for the process pool."""

    region: str
    records: Tuple[JobRecord, ...]
    #: Terminally failed jobs (status reset by ``clone`` — re-routable).
    failed_jobs: Tuple[QJob, ...]
    #: job id → (failure time, reason) of the terminal failures.
    failures: Dict[int, Tuple[float, str]] = field(default_factory=dict)
    #: Per-device execution statistics of the shard.
    device_utilization: Dict[str, Dict[str, float]] = field(default_factory=dict)


def _run_shard(task: _ShardTask) -> _ShardResult:
    """Run one region shard to completion (worker entry point).

    Module-level so the process backend can pickle it by reference; a pure
    function of the task (jobs are cloned before simulation), so serial and
    process execution produce byte-identical results.
    """
    from repro.cloud.environment import QCloudSimEnv

    jobs = [job.clone() for job in task.jobs] if task.jobs is not None else None
    env = QCloudSimEnv(config=task.config, jobs=jobs, policy=task.policy)
    records = env.run_until_complete()
    failures: Dict[int, Tuple[float, str]] = {}
    for event in env.records.events:
        if event.event == "failed":
            failures[event.job_id] = (event.time, event.detail or "")
    return _ShardResult(
        region=task.region,
        records=tuple(records),
        failed_jobs=tuple(job.clone() for job in env.broker.failed_jobs),
        failures=failures,
        device_utilization=env.device_utilization_report(),
    )


# -- the regional cloud ----------------------------------------------------------
class RegionalCloud:
    """A sharded multi-region quantum cloud behind a routing tier.

    Parameters
    ----------
    config:
        The run's configuration.  ``config.regions`` names the topology
        (unless *topology* is given) and ``config.routing`` the policy.
    topology:
        Explicit topology (name or instance); overrides ``config.regions``.
    jobs:
        Explicit global workload (cloned at intake; origin regions assigned
        by weighted share).  Default: each region generates its own origin
        workload from its share of ``config.num_jobs``.
    policy:
        Allocation-policy instance shipped to every shard (overrides
        ``config.policy``; required for ``"rlbase"``).
    records:
        Records manager the merged stream is fed into — pass a
        :class:`~repro.cloud.records_stream.StreamingRecordsManager` to keep
        million-job multi-region runs in O(1) memory.
    runner:
        The :class:`~repro.engine.runner.ExperimentRunner` executing the
        shards: ``backend="process"`` runs regions as real parallel
        processes, byte-identical to the default serial execution.
    max_migration_rounds:
        Epochs of cross-region spillover for terminally failed jobs.
    """

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        topology: Optional[Union[str, RegionTopology]] = None,
        jobs: Optional[Sequence[QJob]] = None,
        policy: Optional[Any] = None,
        records: Optional[JobRecordsManager] = None,
        runner: Optional[ExperimentRunner] = None,
        max_migration_rounds: int = 2,
    ) -> None:
        self.config = config if config is not None else SimulationConfig(regions="dual")
        if topology is None:
            if self.config.regions is None:
                raise ValueError(
                    "a region topology is required: set SimulationConfig.regions "
                    "(e.g. 'dual') or pass topology=..."
                )
            topology = self.config.regions
        self.topology = resolve_topology(topology)
        if not self.topology.is_single_region:
            if self.config.tenants is not None:
                raise ValueError(
                    "multi-region runs do not support tenant mixes; tenancy lives "
                    "inside a shard — run the mix against a single-region topology"
                )
            if self.config.scenario is not None:
                raise ValueError(
                    "multi-region runs take world dynamics from the per-region "
                    "scenarios of the topology, not config.scenario"
                )
        if max_migration_rounds < 0:
            raise ValueError("max_migration_rounds must be non-negative")
        self.policy = policy
        self.records = records if records is not None else JobRecordsManager()
        self.runner = runner if runner is not None else ExperimentRunner(backend="serial")
        self.max_migration_rounds = max_migration_rounds
        self.router = Router(self.topology, self.config, policy=self.config.routing)

        # -- workload and initial routing -------------------------------------
        self._explicit_jobs = jobs is not None
        self._jobs: Optional[List[QJob]] = None
        #: job id → origin region (arrival side of the routing decision).
        self.origin_of: Dict[int, str] = {}
        #: job id → region that (last) served the job.
        self.region_of: Dict[int, str] = {}
        #: Applied migrations: (job id, from region, to region, round).
        self.migrations: List[Tuple[int, str, str, int]] = []
        #: Terminally failed jobs after all migration rounds:
        #: ``{"job_id", "time", "reason", "regions_tried"}`` dicts.
        self.failed: List[Dict[str, Any]] = []
        self._shard_stats: Dict[str, Dict[str, Any]] = {}
        self._ran = False

        if jobs is not None:
            self._jobs = [job.clone() for job in jobs]
            self.origin_of = route_jobs_to_regions(self._jobs, self.topology, self.config.seed)
        elif not self.topology.is_single_region:
            generated = regional_jobs(self.topology, self.config)
            assert generated is not None
            self._jobs, self.origin_of = generated
        # else: one region, jobs=None — the shard generates the default
        # workload itself (byte-identity with the plain cloud).

    # -- shard construction ----------------------------------------------------
    def _shard_config(self, region: RegionSpec) -> SimulationConfig:
        """The configuration one region's shard runs with."""
        payload = asdict(self.config)
        payload["regions"] = None
        payload["routing"] = "locality"
        if region.device_names:
            payload["device_names"] = list(region.device_names)
        if not self.topology.is_single_region:
            payload["scenario"] = region.scenario
        elif region.scenario is not None and payload["scenario"] is None:
            payload["scenario"] = region.scenario
        return SimulationConfig(**payload)

    # -- execution -------------------------------------------------------------
    def run_until_complete(self) -> List[JobRecord]:
        """Route, run every shard (and migration epochs), merge the streams.

        Returns the merged completed records, globally ordered by job id —
        empty when a streaming records manager aggregates them instead.
        """
        if self._ran:
            raise RuntimeError("this RegionalCloud has already run")
        self._ran = True

        if self.topology.is_single_region:
            merged = self._run_single_region()
        else:
            merged = self._run_multi_region()

        for record in merged:
            self.records.add_record(record)
        for failure in self.failed:
            # log_event, not log_failure: StreamingRecordsManager implements
            # only the shared event funnel, and "failed" goes through it.
            self.records.log_event(
                failure["job_id"], "failed", failure["time"], detail=failure["reason"]
            )
        return self.records.completed_records

    def _run_single_region(self) -> List[JobRecord]:
        region = self.topology.regions[0]
        task = _ShardTask(
            region=region.name,
            config=self._shard_config(region),
            jobs=tuple(self._jobs) if self._jobs is not None else None,
            policy=self.policy,
        )
        result = self.runner.map(_run_shard, [task])[0]
        self._ingest_shard_stats(result)
        for job in result.failed_jobs:
            time, reason = result.failures.get(job.job_id, (0.0, "failed"))
            self.failed.append(
                {
                    "job_id": job.job_id,
                    "time": time,
                    "reason": reason,
                    "regions_tried": [region.name],
                }
            )
        for record in result.records:
            self.region_of[record.job_id] = region.name
        return sorted(result.records, key=lambda r: r.job_id)

    def _run_multi_region(self) -> List[JobRecord]:
        assert self._jobs is not None
        # Per-job routing state: accumulated transfer cost across hops.
        state: Dict[int, Dict[str, Any]] = {}
        epoch: Dict[str, List[QJob]] = {name: [] for name in self.topology.region_names}
        for job in self._jobs:  # arrival order — the router is sequential
            origin = self.origin_of[job.job_id]
            target = self.router.assign(job, origin=origin)
            entry = {
                "origin": origin,
                "arrival": job.arrival_time,
                "region": target,
                "transfer": 0.0,
                "penalty": 1.0,
                "tried": {target},
            }
            shipped = job.clone()
            if target != origin:
                link = self.topology.link(origin, target)
                assert link is not None
                entry["transfer"] = link.latency_per_qubit * job.num_qubits
                entry["penalty"] = link.penalty(2)
                shipped.arrival_time = job.arrival_time + entry["transfer"]
            state[job.job_id] = entry
            self.region_of[job.job_id] = target
            epoch[target].append(shipped)

        merged: List[JobRecord] = []
        round_index = 0
        while True:
            tasks = [
                _ShardTask(
                    region=region.name,
                    config=self._shard_config(region),
                    jobs=tuple(epoch[region.name]),
                    policy=self.policy,
                )
                for region in self.topology.regions
                if epoch[region.name]
            ]
            failures: List[Tuple[QJob, float, str]] = []
            for result in self.runner.map(_run_shard, tasks):
                self._ingest_shard_stats(result)
                merged.extend(result.records)
                for job in result.failed_jobs:
                    time, reason = result.failures.get(job.job_id, (0.0, "failed"))
                    failures.append((job, time, reason))

            if not failures or round_index >= self.max_migration_rounds:
                for job, time, reason in sorted(failures, key=lambda f: f[0].job_id):
                    entry = state[job.job_id]
                    self.failed.append(
                        {
                            "job_id": job.job_id,
                            "time": time,
                            "reason": reason,
                            "regions_tried": sorted(entry["tried"]),
                        }
                    )
                break

            round_index += 1
            epoch = {name: [] for name in self.topology.region_names}
            for job, fail_time, reason in sorted(failures, key=lambda f: f[0].job_id):
                entry = state[job.job_id]
                tried = entry["tried"]
                if len(tried) >= len(self.topology.regions):
                    self.failed.append(
                        {
                            "job_id": job.job_id,
                            "time": fail_time,
                            "reason": reason,
                            "regions_tried": sorted(tried),
                        }
                    )
                    continue
                # Route from where the job failed, at the time it failed.
                probe = job.clone()
                probe.arrival_time = fail_time
                target = self.router.assign(
                    probe, origin=entry["origin"], exclude=frozenset(tried)
                )
                link = self.topology.link(entry["region"], target)
                assert link is not None  # target is never the failed region
                hop = link.latency_per_qubit * job.num_qubits
                migrated = job.clone()
                migrated.arrival_time = fail_time + hop
                self.migrations.append((job.job_id, entry["region"], target, round_index))
                entry["transfer"] += hop
                entry["penalty"] *= link.penalty(2)
                entry["region"] = target
                tried.add(target)
                self.region_of[job.job_id] = target
                epoch[target].append(migrated)

        # Restore origin-side arrival times and surface cross-region cost.
        for record in merged:
            entry = state[record.job_id]
            if entry["transfer"] > 0.0:
                record.arrival_time = entry["arrival"]
                record.communication_time += entry["transfer"]
                record.fidelity *= entry["penalty"]
        merged.sort(key=lambda r: r.job_id)
        return merged

    # -- reporting -------------------------------------------------------------
    def _ingest_shard_stats(self, result: _ShardResult) -> None:
        stats = self._shard_stats.setdefault(
            result.region,
            {"completed": 0, "failed": 0, "device_utilization": {}},
        )
        stats["completed"] += len(result.records)
        stats["failed"] += len(result.failed_jobs)
        stats["device_utilization"] = result.device_utilization

    def summary(self, strategy: Optional[str] = None) -> StrategySummary:
        """Aggregate the merged records into one Table-2 row."""
        name = strategy if strategy is not None else getattr(
            self.policy, "name", self.config.policy
        )
        records = self.records.completed_records
        return summarize_records(records, strategy=name) if records else empty_summary(name)

    def region_reports(self) -> Dict[str, Dict[str, Any]]:
        """Per-region outcome: routed/served/failed counts plus router load."""
        routed: Dict[str, int] = {name: 0 for name in self.topology.region_names}
        for region_name in self.region_of.values():
            routed[region_name] += 1
        origin_counts: Dict[str, int] = {name: 0 for name in self.topology.region_names}
        for region_name in self.origin_of.values():
            origin_counts[region_name] += 1
        migrated_out: Dict[str, int] = {name: 0 for name in self.topology.region_names}
        migrated_in: Dict[str, int] = {name: 0 for name in self.topology.region_names}
        for _, source, target, _ in self.migrations:
            migrated_out[source] += 1
            migrated_in[target] += 1
        load = self.router.load_report()
        reports: Dict[str, Dict[str, Any]] = {}
        for name in self.topology.region_names:
            stats = self._shard_stats.get(name, {})
            reports[name] = {
                "origin_jobs": origin_counts[name],
                "served_jobs": routed[name],
                "completed": stats.get("completed", 0),
                "failed": stats.get("failed", 0),
                "migrated_in": migrated_in[name],
                "migrated_out": migrated_out[name],
                **load[name],
            }
        return reports
