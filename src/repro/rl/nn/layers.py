"""Layers with explicit forward/backward passes.

The networks needed for the paper's PPO policy are small MLPs (two hidden
layers of 64 tanh units).  Rather than pulling in a deep-learning framework,
each layer implements

* ``forward(x)`` — computes the output and caches whatever the backward pass
  needs,
* ``backward(grad_output)`` — accumulates parameter gradients and returns the
  gradient with respect to the layer input.

Gradient correctness is verified against finite differences in the test
suite (``tests/rl/test_layers.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.rl.nn.init import orthogonal_

__all__ = ["Parameter", "Module", "Linear", "Tanh", "ReLU", "Identity", "Sequential", "MLP"]


class Parameter:
    """A trainable array with an associated gradient accumulator."""

    __slots__ = ("name", "data", "grad")

    def __init__(self, data: np.ndarray, name: str = "param") -> None:
        self.name = name
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)

    @property
    def shape(self) -> tuple:
        """Shape of the parameter array."""
        return self.data.shape

    def zero_grad(self) -> None:
        """Reset the gradient accumulator to zero."""
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter({self.name}, shape={self.data.shape})"


class Module:
    """Base class for all layers and networks."""

    def parameters(self) -> List[Parameter]:
        """Return all trainable parameters (recursively)."""
        params: List[Parameter] = []
        for value in vars(self).values():
            if isinstance(value, Parameter):
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
                    elif isinstance(item, Parameter):
                        params.append(item)
        return params

    def zero_grad(self) -> None:
        """Reset all parameter gradients."""
        for param in self.parameters():
            param.zero_grad()

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- (de)serialisation -------------------------------------------------
    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        """Return a flat name → array mapping of all parameters."""
        state: Dict[str, np.ndarray] = {}
        for i, param in enumerate(self.parameters()):
            state[f"{prefix}{i}:{param.name}"] = param.data.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], prefix: str = "") -> None:
        """Load parameters previously produced by :meth:`state_dict`."""
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state dict has {len(state)} entries but module has {len(params)} parameters"
            )
        for i, param in enumerate(params):
            key = f"{prefix}{i}:{param.name}"
            if key not in state:
                raise KeyError(f"missing parameter {key!r} in state dict")
            value = np.asarray(state[key], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {key!r}: expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()
            param.grad = np.zeros_like(param.data)

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(p.data.size for p in self.parameters()))


class Linear(Module):
    """Affine transform ``y = x W^T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output dimensionality.
    gain:
        Orthogonal-initialisation gain for the weight matrix.
    rng:
        Random generator for initialisation (defaults to a fresh generator).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        gain: float = np.sqrt(2.0),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = Parameter(orthogonal_((out_features, in_features), gain=gain, rng=rng), "weight")
        self.bias = Parameter(np.zeros(out_features), "bias")
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        self._input = x
        return x @ self.weight.data.T + self.bias.data

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.atleast_2d(np.asarray(grad_output, dtype=np.float64))
        self.weight.grad += grad_output.T @ self._input
        self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Linear({self.in_features}, {self.out_features})"


class Tanh(Module):
    """Elementwise hyperbolic tangent."""

    def __init__(self) -> None:
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = np.tanh(np.asarray(x, dtype=np.float64))
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * (1.0 - self._output**2)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Tanh()"


class ReLU(Module):
    """Elementwise rectified linear unit."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ReLU()"


class Identity(Module):
    """Pass-through layer."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=np.float64)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Identity()"


class Sequential(Module):
    """Chain of layers applied in order."""

    def __init__(self, *layers: Module) -> None:
        self.layers: List[Module] = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential({inner})"


def MLP(
    in_dim: int,
    hidden_sizes: Sequence[int],
    out_dim: int,
    activation: str = "tanh",
    out_gain: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> Sequential:
    """Build a multi-layer perceptron.

    Hidden layers use orthogonal initialisation with gain ``sqrt(2)``; the
    output layer uses ``out_gain`` (``0.01`` for policy heads, ``1.0`` for
    value heads, following standard PPO practice).
    """
    acts = {"tanh": Tanh, "relu": ReLU, "identity": Identity}
    if activation not in acts:
        raise ValueError(f"Unknown activation {activation!r}; choose from {sorted(acts)}")
    act_cls = acts[activation]

    layers: List[Module] = []
    prev = in_dim
    for size in hidden_sizes:
        layers.append(Linear(prev, size, gain=np.sqrt(2.0), rng=rng))
        layers.append(act_cls())
        prev = size
    layers.append(Linear(prev, out_dim, gain=out_gain, rng=rng))
    return Sequential(*layers)
