"""First-order optimizers operating on :class:`~repro.rl.nn.layers.Parameter`."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.rl.nn.layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm_"]


def clip_grad_norm_(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip the global L2 norm of all gradients to *max_norm*.

    Returns the total norm before clipping (as PyTorch does).
    """
    params = [p for p in parameters]
    total_sq = 0.0
    for p in params:
        total_sq += float(np.sum(p.grad**2))
    total_norm = float(np.sqrt(total_sq))
    if max_norm > 0 and total_norm > max_norm:
        scale = max_norm / (total_norm + 1e-12)
        for p in params:
            p.grad *= scale
    return total_norm


class Optimizer:
    """Base optimizer: holds a parameter list and a learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be > 0")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Reset all parameter gradients."""
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update using the currently accumulated gradients."""
        raise NotImplementedError

    def set_lr(self, lr: float) -> None:
        """Change the learning rate (used by schedules)."""
        if lr <= 0:
            raise ValueError("learning rate must be > 0")
        self.lr = float(lr)


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2, momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction.

    Default hyperparameters match PyTorch / Stable-Baselines3
    (``betas=(0.9, 0.999)``, ``eps=1e-8``... SB3 uses ``eps=1e-5`` for PPO,
    which is exposed through the ``eps`` argument).
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 3e-4,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    @property
    def t(self) -> int:
        """Number of optimizer steps taken."""
        return self._t

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
