"""Weight initialisation schemes.

PPO implementations conventionally use orthogonal initialisation with a gain
of ``sqrt(2)`` for hidden layers, ``0.01`` for the policy head and ``1.0`` for
the value head; these helpers reproduce that behaviour.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["orthogonal_", "xavier_uniform_", "constant_"]


def orthogonal_(
    shape: tuple,
    gain: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Return an orthogonally-initialised matrix of the given *shape*.

    For non-square shapes, the semi-orthogonal factor of a QR decomposition of
    a Gaussian random matrix is used (rows or columns are orthonormal,
    whichever set is smaller).
    """
    if len(shape) != 2:
        raise ValueError(f"orthogonal_ expects a 2-D shape, got {shape}")
    rng = rng if rng is not None else np.random.default_rng()
    rows, cols = shape
    flat = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    # Make the decomposition unique (positive diagonal of R).
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols]


def xavier_uniform_(
    shape: tuple,
    gain: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    if len(shape) != 2:
        raise ValueError(f"xavier_uniform_ expects a 2-D shape, got {shape}")
    rng = rng if rng is not None else np.random.default_rng()
    fan_in, fan_out = shape[1], shape[0]
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def constant_(shape: tuple, value: float = 0.0) -> np.ndarray:
    """Constant initialisation."""
    return np.full(shape, value, dtype=np.float64)
