"""Minimal neural-network building blocks with manual backpropagation."""

from repro.rl.nn.init import constant_, orthogonal_, xavier_uniform_
from repro.rl.nn.layers import Identity, Linear, MLP, Module, Parameter, ReLU, Sequential, Tanh
from repro.rl.nn.optim import SGD, Adam, Optimizer, clip_grad_norm_

__all__ = [
    "Adam",
    "Identity",
    "Linear",
    "MLP",
    "Module",
    "Optimizer",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "Tanh",
    "clip_grad_norm_",
    "constant_",
    "orthogonal_",
    "xavier_uniform_",
]
