"""Actor-critic MLP policy for PPO.

The architecture mirrors Stable-Baselines3's ``MlpPolicy`` default for PPO:
two separate MLP towers (policy and value) with two hidden layers of 64 tanh
units each, a linear action head initialised with small gain, a linear value
head, and a state-independent trainable log standard deviation for continuous
action spaces.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.gymapi.spaces import Box, Discrete, Space
from repro.rl.distributions import Categorical, DiagGaussian
from repro.rl.nn.layers import MLP, Module, Parameter, Sequential

__all__ = ["ActorCriticPolicy"]


class ActorCriticPolicy(Module):
    """MLP actor-critic with a diagonal-Gaussian or categorical action head.

    Parameters
    ----------
    observation_space:
        A :class:`~repro.gymapi.spaces.Box` observation space (1-D).
    action_space:
        A :class:`~repro.gymapi.spaces.Box` (continuous) or
        :class:`~repro.gymapi.spaces.Discrete` action space.
    net_arch:
        Hidden layer sizes shared by the policy and value towers.
    log_std_init:
        Initial value of the log standard deviation (continuous actions only).
    seed:
        Seed for weight initialisation and action sampling.
    """

    def __init__(
        self,
        observation_space: Space,
        action_space: Space,
        net_arch: Sequence[int] = (64, 64),
        activation: str = "tanh",
        log_std_init: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        if not isinstance(observation_space, Box) or len(observation_space.shape) != 1:
            raise TypeError("ActorCriticPolicy requires a 1-D Box observation space")
        self.observation_space = observation_space
        self.action_space = action_space
        self.net_arch = tuple(int(x) for x in net_arch)
        self.rng = np.random.default_rng(seed)

        obs_dim = observation_space.shape[0]
        if isinstance(action_space, Box):
            if len(action_space.shape) != 1:
                raise TypeError("continuous action spaces must be 1-D")
            self.action_dim = action_space.shape[0]
            self.is_continuous = True
        elif isinstance(action_space, Discrete):
            self.action_dim = action_space.n
            self.is_continuous = False
        else:
            raise TypeError(f"Unsupported action space {action_space!r}")

        # Separate towers for policy and value (SB3 default net_arch for PPO).
        self.pi_net: Sequential = MLP(
            obs_dim, self.net_arch, self.action_dim, activation=activation, out_gain=0.01, rng=self.rng
        )
        self.vf_net: Sequential = MLP(
            obs_dim, self.net_arch, 1, activation=activation, out_gain=1.0, rng=self.rng
        )
        if self.is_continuous:
            self.log_std = Parameter(np.full(self.action_dim, float(log_std_init)), "log_std")
        else:
            self.log_std = None  # type: ignore[assignment]

    # -- forward passes -----------------------------------------------------
    def distribution(self, obs: np.ndarray) -> Union[DiagGaussian, Categorical]:
        """Run the policy tower and return the action distribution."""
        obs = np.atleast_2d(np.asarray(obs, dtype=np.float64))
        out = self.pi_net.forward(obs)
        if self.is_continuous:
            return DiagGaussian(out, self.log_std.data)
        return Categorical(out)

    def value(self, obs: np.ndarray) -> np.ndarray:
        """Run the value tower and return state values of shape ``(batch,)``."""
        obs = np.atleast_2d(np.asarray(obs, dtype=np.float64))
        return self.vf_net.forward(obs)[:, 0]

    def forward(
        self, obs: np.ndarray, deterministic: bool = False
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample actions and return ``(actions, values, log_probs)``."""
        dist = self.distribution(obs)
        if deterministic:
            actions = dist.mode()
        else:
            actions = dist.sample(self.rng)
        values = self.value(obs)
        log_probs = dist.log_prob(actions)
        return actions, values, log_probs

    def evaluate_actions(
        self, obs: np.ndarray, actions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Union[DiagGaussian, Categorical]]:
        """Return ``(values, log_probs, entropies, distribution)`` for given actions.

        The forward caches left in the towers allow the caller to immediately
        backpropagate through :meth:`backward_policy` / :meth:`backward_value`.
        """
        dist = self.distribution(obs)
        values = self.value(obs)
        log_probs = dist.log_prob(actions)
        entropies = dist.entropy()
        return values, log_probs, entropies, dist

    def predict(
        self, obs: np.ndarray, deterministic: bool = True
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Deployment helper: return the action for a single observation.

        Mirrors SB3's ``model.predict``: accepts a single observation (1-D)
        or a batch, returns actions with matching leading shape, clipped into
        the action space if it is a bounded :class:`Box`.
        """
        obs_arr = np.asarray(obs, dtype=np.float64)
        single = obs_arr.ndim == 1
        actions, values, _ = self.forward(obs_arr, deterministic=deterministic)
        if self.is_continuous and isinstance(self.action_space, Box):
            actions = np.clip(actions, self.action_space.low, self.action_space.high)
        if single:
            return actions[0], {"value": values[0]}
        return actions, {"value": values}

    # -- backward passes ----------------------------------------------------
    def backward_policy(self, grad_action_out: np.ndarray) -> None:
        """Backpropagate a gradient w.r.t. the policy tower output."""
        self.pi_net.backward(grad_action_out)

    def backward_value(self, grad_value_out: np.ndarray) -> None:
        """Backpropagate a gradient w.r.t. the value tower output.

        Parameters
        ----------
        grad_value_out:
            Array of shape ``(batch,)`` — gradient w.r.t. the scalar values.
        """
        grad = np.asarray(grad_value_out, dtype=np.float64).reshape(-1, 1)
        self.vf_net.backward(grad)

    # -- persistence ----------------------------------------------------------
    def save(self, path: str) -> None:
        """Save all parameters (including log_std) to a ``.npz`` file."""
        arrays = self.state_dict()
        meta = {
            "obs_dim": np.asarray(self.observation_space.shape[0]),
            "net_arch": np.asarray(self.net_arch),
            "action_dim": np.asarray(self.action_dim),
            "is_continuous": np.asarray(int(self.is_continuous)),
        }
        np.savez(path, **arrays, **{f"__meta_{k}": v for k, v in meta.items()})

    def load(self, path: str) -> None:
        """Load parameters previously saved with :meth:`save`."""
        data = np.load(path, allow_pickle=False)
        arrays = {k: data[k] for k in data.files if not k.startswith("__meta_")}
        self.load_state_dict(arrays)

    @property
    def parameters_flat(self) -> np.ndarray:
        """All parameters concatenated into a single flat vector (diagnostics)."""
        return np.concatenate([p.data.ravel() for p in self.parameters()])
