"""Training callbacks.

Callbacks receive the PPO instance and are invoked at rollout and update
boundaries.  They are used by the benchmark harness to collect the training
curve of the paper's Fig. 5 and to stop training early in smoke tests.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["BaseCallback", "CallbackList", "TrainingCurveCallback", "StopOnRewardCallback"]


class BaseCallback:
    """Base class for PPO training callbacks."""

    def __init__(self) -> None:
        self.model: Optional[Any] = None

    def init_callback(self, model: Any) -> None:
        """Attach the callback to a PPO instance before training starts."""
        self.model = model

    def on_training_start(self) -> None:
        """Called once before the first rollout."""

    def on_rollout_end(self) -> bool:
        """Called after each rollout is collected; return False to stop training."""
        return True

    def on_update_end(self) -> bool:
        """Called after each gradient-update phase; return False to stop training."""
        return True

    def on_training_end(self) -> None:
        """Called once after training finishes."""


class CallbackList(BaseCallback):
    """Run several callbacks in sequence; stops if any of them asks to stop."""

    def __init__(self, callbacks: List[BaseCallback]) -> None:
        super().__init__()
        self.callbacks = list(callbacks)

    def init_callback(self, model: Any) -> None:
        super().init_callback(model)
        for cb in self.callbacks:
            cb.init_callback(model)

    def on_training_start(self) -> None:
        for cb in self.callbacks:
            cb.on_training_start()

    def on_rollout_end(self) -> bool:
        return all(cb.on_rollout_end() for cb in self.callbacks)

    def on_update_end(self) -> bool:
        return all(cb.on_update_end() for cb in self.callbacks)

    def on_training_end(self) -> None:
        for cb in self.callbacks:
            cb.on_training_end()


class TrainingCurveCallback(BaseCallback):
    """Collects the per-update training curve (reward, entropy loss, losses).

    After training, :attr:`curve` holds one dict per PPO update with the keys
    ``timesteps``, ``ep_rew_mean``, ``entropy_loss``, ``policy_loss``,
    ``value_loss`` and ``approx_kl`` — exactly the series needed to regenerate
    the paper's Fig. 5.
    """

    def __init__(self) -> None:
        super().__init__()
        self.curve: List[Dict[str, float]] = []

    def on_update_end(self) -> bool:
        assert self.model is not None
        logger = self.model.logger
        self.curve.append(
            {
                "timesteps": float(self.model.num_timesteps),
                "ep_rew_mean": logger.latest("rollout/ep_rew_mean", float("nan")),
                "entropy_loss": logger.latest("train/entropy_loss", float("nan")),
                "policy_loss": logger.latest("train/policy_gradient_loss", float("nan")),
                "value_loss": logger.latest("train/value_loss", float("nan")),
                "approx_kl": logger.latest("train/approx_kl", float("nan")),
            }
        )
        return True


class StopOnRewardCallback(BaseCallback):
    """Stop training once the rolling mean episode reward reaches a threshold."""

    def __init__(self, reward_threshold: float) -> None:
        super().__init__()
        self.reward_threshold = float(reward_threshold)
        self.triggered_at: Optional[int] = None

    def on_update_end(self) -> bool:
        assert self.model is not None
        mean_reward = self.model.logger.latest("rollout/ep_rew_mean")
        if mean_reward is not None and mean_reward >= self.reward_threshold:
            self.triggered_at = self.model.num_timesteps
            return False
        return True
