"""Action distributions used by the actor-critic policy.

Two distributions are provided:

* :class:`DiagGaussian` — a diagonal Gaussian over continuous actions whose
  mean comes from the policy network and whose (state-independent) log
  standard deviation is a trainable parameter.  This is what the paper's
  5-dimensional continuous allocation action uses.
* :class:`Categorical` — a softmax distribution over discrete actions, used
  by auxiliary baselines and tests.

Both expose ``sample``, ``log_prob``, ``entropy`` and the gradients of the
log-probability / entropy with respect to their inputs, so the PPO update can
backpropagate without an autodiff framework.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["DiagGaussian", "Categorical"]

_LOG_2PI = float(np.log(2.0 * np.pi))


class DiagGaussian:
    """Diagonal Gaussian distribution ``N(mean, diag(exp(log_std))^2)``.

    Parameters
    ----------
    mean:
        Array of shape ``(batch, dim)``.
    log_std:
        Array of shape ``(dim,)`` (state-independent, broadcast over the batch).
    """

    def __init__(self, mean: np.ndarray, log_std: np.ndarray) -> None:
        self.mean = np.atleast_2d(np.asarray(mean, dtype=np.float64))
        self.log_std = np.asarray(log_std, dtype=np.float64).reshape(-1)
        if self.log_std.shape[0] != self.mean.shape[1]:
            raise ValueError(
                f"log_std dimension {self.log_std.shape[0]} does not match mean dim {self.mean.shape[1]}"
            )
        self.std = np.exp(self.log_std)

    @property
    def dim(self) -> int:
        """Action dimensionality."""
        return self.mean.shape[1]

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one action per batch row."""
        noise = rng.standard_normal(self.mean.shape)
        return self.mean + noise * self.std

    def mode(self) -> np.ndarray:
        """The distribution mode (the mean) — used for deterministic actions."""
        return self.mean.copy()

    def log_prob(self, actions: np.ndarray) -> np.ndarray:
        """Log density of *actions*, summed over action dimensions."""
        actions = np.atleast_2d(np.asarray(actions, dtype=np.float64))
        z = (actions - self.mean) / self.std
        per_dim = -0.5 * z**2 - self.log_std - 0.5 * _LOG_2PI
        return per_dim.sum(axis=1)

    def entropy(self) -> np.ndarray:
        """Differential entropy, summed over action dimensions (per batch row)."""
        per_dim = self.log_std + 0.5 * (1.0 + _LOG_2PI)
        return np.full(self.mean.shape[0], per_dim.sum())

    # -- gradients ----------------------------------------------------------
    def log_prob_grads(self, actions: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Gradients of ``log_prob`` w.r.t. the mean and the log_std.

        Returns
        -------
        (d_mean, d_log_std):
            ``d_mean`` has shape ``(batch, dim)``; ``d_log_std`` has shape
            ``(batch, dim)`` (per-sample contribution, to be weighted and
            summed by the caller).
        """
        actions = np.atleast_2d(np.asarray(actions, dtype=np.float64))
        diff = actions - self.mean
        var = self.std**2
        d_mean = diff / var
        d_log_std = diff**2 / var - 1.0
        return d_mean, d_log_std

    def entropy_grad_log_std(self) -> np.ndarray:
        """Gradient of the (per-row) entropy w.r.t. ``log_std`` (it is 1)."""
        return np.ones_like(self.log_std)

    def kl_divergence(self, other: "DiagGaussian") -> np.ndarray:
        """KL(self || other), per batch row, summed over dimensions."""
        var_ratio = (self.std / other.std) ** 2
        mean_term = ((self.mean - other.mean) / other.std) ** 2
        per_dim = 0.5 * (var_ratio + mean_term - 1.0) + (other.log_std - self.log_std)
        return per_dim.sum(axis=1)


class Categorical:
    """Categorical distribution parameterised by unnormalised logits."""

    def __init__(self, logits: np.ndarray) -> None:
        logits = np.atleast_2d(np.asarray(logits, dtype=np.float64))
        # Stable log-softmax.
        shifted = logits - logits.max(axis=1, keepdims=True)
        self.logits = logits
        self.log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        self.probs = np.exp(self.log_probs)

    @property
    def dim(self) -> int:
        """Number of categories."""
        return self.logits.shape[1]

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one category index per batch row."""
        cum = np.cumsum(self.probs, axis=1)
        u = rng.random((self.probs.shape[0], 1))
        return (u > cum).sum(axis=1)

    def mode(self) -> np.ndarray:
        """Most likely category per batch row."""
        return self.probs.argmax(axis=1)

    def log_prob(self, actions: np.ndarray) -> np.ndarray:
        """Log probability of the given category indices."""
        actions = np.asarray(actions, dtype=np.int64).reshape(-1)
        return self.log_probs[np.arange(self.log_probs.shape[0]), actions]

    def entropy(self) -> np.ndarray:
        """Shannon entropy per batch row."""
        return -(self.probs * self.log_probs).sum(axis=1)

    def log_prob_grad_logits(self, actions: np.ndarray) -> np.ndarray:
        """Gradient of ``log_prob`` w.r.t. the logits (shape ``(batch, dim)``)."""
        actions = np.asarray(actions, dtype=np.int64).reshape(-1)
        grad = -self.probs.copy()
        grad[np.arange(grad.shape[0]), actions] += 1.0
        return grad

    def entropy_grad_logits(self) -> np.ndarray:
        """Gradient of the entropy w.r.t. the logits (shape ``(batch, dim)``)."""
        # dH/dlogit_j = -p_j * (log p_j + H)
        ent = self.entropy()[:, None]
        return -self.probs * (self.log_probs + ent)
