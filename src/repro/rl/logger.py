"""Training logger: records scalar diagnostics per update.

The logger is intentionally tiny: it keeps every recorded key as a list of
``(timestep, value)`` pairs so the training curves of the paper's Fig. 5
(average episode reward and entropy loss over training steps) can be
regenerated and inspected programmatically.
"""

from __future__ import annotations

import csv
import json
from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["TrainingLogger"]


class TrainingLogger:
    """Scalar logger keyed by metric name."""

    def __init__(self) -> None:
        self._history: Dict[str, List[Tuple[int, float]]] = defaultdict(list)

    def record(self, key: str, value: float, step: int) -> None:
        """Record *value* for *key* at training *step*."""
        self._history[key].append((int(step), float(value)))

    def record_dict(self, values: Dict[str, float], step: int) -> None:
        """Record several metrics at the same step."""
        for key, value in values.items():
            self.record(key, value, step)

    # -- access ---------------------------------------------------------------
    @property
    def keys(self) -> List[str]:
        """All metric names recorded so far."""
        return sorted(self._history)

    def history(self, key: str) -> List[Tuple[int, float]]:
        """Full ``(step, value)`` history of one metric."""
        return list(self._history[key])

    def steps(self, key: str) -> List[int]:
        """Steps at which *key* was recorded."""
        return [s for s, _ in self._history[key]]

    def values(self, key: str) -> List[float]:
        """Values recorded for *key* (in step order)."""
        return [v for _, v in self._history[key]]

    def latest(self, key: str, default: Optional[float] = None) -> Optional[float]:
        """Most recent value of *key* (or *default* if never recorded)."""
        if not self._history[key]:
            return default
        return self._history[key][-1][1]

    def moving_average(self, key: str, window: int = 10) -> List[float]:
        """Simple trailing moving average of a metric."""
        vals = self.values(key)
        out: List[float] = []
        for i in range(len(vals)):
            lo = max(0, i - window + 1)
            out.append(sum(vals[lo : i + 1]) / (i - lo + 1))
        return out

    # -- export ---------------------------------------------------------------
    def to_dict(self) -> Dict[str, List[Tuple[int, float]]]:
        """Return the complete history as a plain dictionary."""
        return {k: list(v) for k, v in self._history.items()}

    def save_json(self, path: str) -> None:
        """Dump the history to a JSON file."""
        payload = {k: [[s, v] for s, v in pairs] for k, pairs in self._history.items()}
        Path(path).write_text(json.dumps(payload, indent=2))

    def save_csv(self, path: str, keys: Optional[Sequence[str]] = None) -> None:
        """Dump selected metrics to a wide CSV (one row per step)."""
        keys = list(keys) if keys is not None else self.keys
        steps = sorted({s for k in keys for s, _ in self._history[k]})
        by_key = {k: dict(self._history[k]) for k in keys}
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["step"] + keys)
            for step in steps:
                writer.writerow([step] + [by_key[k].get(step, "") for k in keys])

    @classmethod
    def load_json(cls, path: str) -> "TrainingLogger":
        """Load a history previously written by :meth:`save_json`."""
        payload = json.loads(Path(path).read_text())
        logger = cls()
        for key, pairs in payload.items():
            for step, value in pairs:
                logger.record(key, value, step)
        return logger
