"""Proximal Policy Optimization (clipped surrogate objective).

This is a NumPy-only PPO implementation whose defaults match
Stable-Baselines3 (``n_steps=2048``, ``batch_size=64``, ``n_epochs=10``,
``gamma=0.99``, ``gae_lambda=0.95``, ``clip_range=0.2``, ``ent_coef=0.0``,
``vf_coef=0.5``, ``max_grad_norm=0.5``, Adam with ``lr=3e-4``), because the
paper reports training its allocation agent with "default hyperparameters"
(§6.6).

Rollout collection is vectorized: the algorithm accepts either a scalar
:class:`~repro.gymapi.core.Env` (wrapped in a 1-environment
:class:`~repro.gymapi.vector.SyncVecEnv`) or any
:class:`~repro.gymapi.vector.VecEnv`, and steps the vector
``n_steps // n_envs`` times per rollout with ``(n_envs, obs_dim)`` policy
forwards.  With a single environment every array op, RNG draw and update is
identical to the historical serial implementation — same seeds produce
bit-identical training curves — while ``n_envs > 1`` amortises rollout
collection into a handful of large matmuls per vector step.

The gradient of the clipped surrogate, the entropy bonus and the value loss
are derived analytically and pushed through the policy's MLP towers with the
manual backward passes of :mod:`repro.rl.nn.layers`; correctness is checked
against finite differences in the test suite.
"""

from __future__ import annotations

import warnings
from collections import deque
from typing import Any, Callable, Dict, Optional, Union

import numpy as np

from repro.gymapi.core import Env
from repro.gymapi.spaces import Box, Discrete
from repro.gymapi.vector import SyncVecEnv, VecEnv
from repro.rl.buffers import RolloutBuffer
from repro.rl.callbacks import BaseCallback, CallbackList
from repro.rl.distributions import Categorical, DiagGaussian
from repro.rl.logger import TrainingLogger
from repro.rl.nn.optim import Adam, clip_grad_norm_
from repro.rl.policies import ActorCriticPolicy

__all__ = ["PPO"]

ScheduleOrFloat = Union[float, Callable[[float], float]]


def _as_schedule(value: ScheduleOrFloat) -> Callable[[float], float]:
    """Turn a constant into a schedule mapping remaining-progress -> value."""
    if callable(value):
        return value
    return lambda _progress_remaining: float(value)


class PPO:
    """Proximal Policy Optimization over a (possibly vectorized) environment.

    Parameters
    ----------
    policy:
        Either the string ``"MlpPolicy"`` or an :class:`ActorCriticPolicy`
        instance.
    env:
        A scalar environment following the :class:`repro.gymapi.core.Env` API
        (stepped through a 1-environment
        :class:`~repro.gymapi.vector.SyncVecEnv`, bit-identical to the
        historical serial implementation) or a
        :class:`~repro.gymapi.vector.VecEnv` whose ``num_envs`` sets the
        rollout batch width.
    learning_rate, n_steps, batch_size, n_epochs, gamma, gae_lambda,
    clip_range, ent_coef, vf_coef, max_grad_norm, target_kl:
        Standard PPO hyperparameters (SB3 defaults).  ``n_steps`` counts
        *total* transitions per rollout across all environments and must be
        divisible by ``num_envs``.
    seed:
        Seed for policy initialisation, action sampling, environment seeding
        and mini-batch shuffling.
    """

    def __init__(
        self,
        policy: Union[str, ActorCriticPolicy],
        env: Union[Env, VecEnv],
        learning_rate: ScheduleOrFloat = 3e-4,
        n_steps: int = 2048,
        batch_size: int = 64,
        n_epochs: int = 10,
        gamma: float = 0.99,
        gae_lambda: float = 0.95,
        clip_range: ScheduleOrFloat = 0.2,
        normalize_advantage: bool = True,
        ent_coef: float = 0.0,
        vf_coef: float = 0.5,
        max_grad_norm: float = 0.5,
        target_kl: Optional[float] = None,
        policy_kwargs: Optional[Dict[str, Any]] = None,
        seed: Optional[int] = None,
        verbose: int = 0,
    ) -> None:
        self.env = env
        self.vec_env: VecEnv = env if isinstance(env, VecEnv) else SyncVecEnv([env])
        self.n_envs = int(self.vec_env.num_envs)
        self.n_steps = int(n_steps)
        self.batch_size = int(batch_size)
        self.n_epochs = int(n_epochs)
        self.gamma = float(gamma)
        self.gae_lambda = float(gae_lambda)
        self.lr_schedule = _as_schedule(learning_rate)
        self.clip_range_schedule = _as_schedule(clip_range)
        self.normalize_advantage = bool(normalize_advantage)
        self.ent_coef = float(ent_coef)
        self.vf_coef = float(vf_coef)
        self.max_grad_norm = float(max_grad_norm)
        self.target_kl = target_kl
        self.verbose = int(verbose)
        self.seed = seed
        self.rng = np.random.default_rng(seed)

        if self.n_steps % self.n_envs != 0:
            raise ValueError(
                f"n_steps={self.n_steps} must be divisible by the number of "
                f"environments (n_envs={self.n_envs})"
            )
        if self.n_steps % self.batch_size != 0:
            warnings.warn(
                f"n_steps={self.n_steps} is not a multiple of batch_size={self.batch_size}; "
                "the final mini-batch of each epoch will be smaller than the others",
                UserWarning,
                stacklevel=2,
            )

        observation_space = self.vec_env.observation_space
        action_space = self.vec_env.action_space
        if isinstance(policy, str):
            if policy != "MlpPolicy":
                raise ValueError(f"Unknown policy {policy!r}; only 'MlpPolicy' is supported")
            kwargs = dict(policy_kwargs or {})
            kwargs.setdefault("seed", seed)
            self.policy = ActorCriticPolicy(observation_space, action_space, **kwargs)
        else:
            self.policy = policy

        obs_dim = observation_space.shape[0]
        if isinstance(action_space, Box):
            action_dim = action_space.shape[0]
        elif isinstance(action_space, Discrete):
            action_dim = 1
        else:
            raise TypeError(f"Unsupported action space {action_space!r}")

        self.rollout_buffer = RolloutBuffer(
            self.n_steps // self.n_envs,
            obs_dim,
            action_dim,
            gamma=self.gamma,
            gae_lambda=self.gae_lambda,
            n_envs=self.n_envs,
        )
        self.optimizer = Adam(self.policy.parameters(), lr=self.lr_schedule(1.0), eps=1e-5)
        self.logger = TrainingLogger()

        self.num_timesteps = 0
        self._total_timesteps = 0
        self._ep_info_buffer: deque = deque(maxlen=100)
        self._env_seeded = False
        self._last_obs: Optional[np.ndarray] = None
        self._last_episode_starts = np.ones(self.n_envs, dtype=bool)
        self._current_ep_returns = np.zeros(self.n_envs, dtype=np.float64)
        self._current_ep_lengths = np.zeros(self.n_envs, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Rollout collection
    # ------------------------------------------------------------------ #
    @property
    def progress_remaining(self) -> float:
        """Fraction of total training timesteps still to run (1 → 0)."""
        if self._total_timesteps == 0:
            return 1.0
        return max(0.0, 1.0 - self.num_timesteps / self._total_timesteps)

    def _reset_env(self) -> None:
        # Seed the environments on the very first reset so that seeded
        # training runs are fully reproducible; later resets must not re-seed
        # (that would make every episode identical).
        if not self._env_seeded and self.seed is not None:
            obs, _infos = self.vec_env.reset(seed=self.seed)
        else:
            obs, _infos = self.vec_env.reset()
        self._env_seeded = True
        self._last_obs = np.asarray(obs, dtype=np.float64)
        self._last_episode_starts = np.ones(self.n_envs, dtype=bool)
        self._current_ep_returns = np.zeros(self.n_envs, dtype=np.float64)
        self._current_ep_lengths = np.zeros(self.n_envs, dtype=np.int64)

    def collect_rollouts(self) -> None:
        """Fill the rollout buffer with ``n_steps`` transitions.

        The vector environment is stepped ``n_steps // n_envs`` times; each
        step is one ``(n_envs, obs_dim)`` policy forward and one batched
        environment transition.  Sub-environments auto-reset on episode end,
        and completed-episode statistics land in the episode info buffer in
        environment order.
        """
        if self._last_obs is None:
            self._reset_env()
        self.rollout_buffer.reset()
        action_space = self.vec_env.action_space
        is_box = isinstance(action_space, Box)

        for _ in range(self.n_steps // self.n_envs):
            assert self._last_obs is not None
            actions, values, log_probs = self.policy.forward(self._last_obs)
            if is_box:
                clipped_actions = np.clip(actions, action_space.low, action_space.high)
                buffer_actions = actions
            else:
                clipped_actions = actions
                buffer_actions = np.asarray(actions, dtype=np.float64).reshape(self.n_envs, 1)

            obs, rewards, terminated, truncated, _infos = self.vec_env.step(clipped_actions)
            dones = np.logical_or(terminated, truncated)

            self.rollout_buffer.add(
                self._last_obs,
                buffer_actions,
                rewards,
                self._last_episode_starts,
                values,
                log_probs,
            )
            self.num_timesteps += self.n_envs
            self._current_ep_returns += rewards
            self._current_ep_lengths += 1

            for i in np.flatnonzero(dones):
                self._ep_info_buffer.append(
                    {"r": float(self._current_ep_returns[i]), "l": int(self._current_ep_lengths[i])}
                )
                self._current_ep_returns[i] = 0.0
                self._current_ep_lengths[i] = 0

            self._last_episode_starts = dones
            self._last_obs = np.asarray(obs, dtype=np.float64)

        # Bootstrap the value of each environment's final state.
        last_values = self.policy.value(self._last_obs)
        self.rollout_buffer.compute_returns_and_advantage(
            last_values, done=self._last_episode_starts
        )

    # ------------------------------------------------------------------ #
    # Gradient update
    # ------------------------------------------------------------------ #
    def train(self) -> None:
        """Run ``n_epochs`` of clipped-surrogate updates on the current rollout."""
        clip_range = self.clip_range_schedule(self.progress_remaining)
        self.optimizer.set_lr(self.lr_schedule(self.progress_remaining))

        entropy_losses, pg_losses, value_losses = [], [], []
        clip_fractions, approx_kls = [], []
        continue_training = True

        for _epoch in range(self.n_epochs):
            for batch in self.rollout_buffer.get(self.batch_size, rng=self.rng):
                obs = batch["observations"]
                actions = batch["actions"]
                old_log_probs = batch["old_log_probs"]
                advantages = batch["advantages"]
                returns = batch["returns"]
                n = obs.shape[0]

                if self.normalize_advantage and n > 1:
                    advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)

                if not self.policy.is_continuous:
                    actions_eval = actions[:, 0].astype(np.int64)
                else:
                    actions_eval = actions

                values, log_probs, entropies, dist = self.policy.evaluate_actions(obs, actions_eval)

                # --- losses (for logging) ---------------------------------
                ratio = np.exp(log_probs - old_log_probs)
                unclipped = ratio * advantages
                clipped = np.clip(ratio, 1.0 - clip_range, 1.0 + clip_range) * advantages
                policy_loss = -float(np.mean(np.minimum(unclipped, clipped)))
                value_loss = float(np.mean((returns - values) ** 2))
                entropy_loss = -float(np.mean(entropies))

                with np.errstate(divide="ignore", invalid="ignore"):
                    log_ratio = log_probs - old_log_probs
                    approx_kl = float(np.mean(np.exp(log_ratio) - 1.0 - log_ratio))
                clip_fraction = float(np.mean(np.abs(ratio - 1.0) > clip_range))

                entropy_losses.append(entropy_loss)
                pg_losses.append(policy_loss)
                value_losses.append(value_loss)
                approx_kls.append(approx_kl)
                clip_fractions.append(clip_fraction)

                if self.target_kl is not None and approx_kl > 1.5 * self.target_kl:
                    continue_training = False
                    break

                # --- analytic gradients ------------------------------------
                # d(policy_loss)/d(log_prob): gradient flows through the
                # unclipped branch only where the min selects it.
                use_unclipped = unclipped <= clipped
                d_loss_d_logp = np.where(use_unclipped, -advantages * ratio, 0.0) / n

                self.policy.zero_grad()

                if self.policy.is_continuous:
                    assert isinstance(dist, DiagGaussian)
                    d_mean, d_log_std = dist.log_prob_grads(actions_eval)
                    grad_policy_out = d_loss_d_logp[:, None] * d_mean
                    # log_std gradient: surrogate term + entropy bonus term.
                    grad_log_std = (d_loss_d_logp[:, None] * d_log_std).sum(axis=0)
                    grad_log_std += self.ent_coef * (-1.0) * dist.entropy_grad_log_std()
                    self.policy.backward_policy(grad_policy_out)
                    self.policy.log_std.grad += grad_log_std
                else:
                    assert isinstance(dist, Categorical)
                    d_logits = dist.log_prob_grad_logits(actions_eval)
                    grad_policy_out = d_loss_d_logp[:, None] * d_logits
                    grad_policy_out += self.ent_coef * (-1.0 / n) * dist.entropy_grad_logits()
                    self.policy.backward_policy(grad_policy_out)

                # Value loss: vf_coef * mean((returns - V)^2)
                grad_values = self.vf_coef * 2.0 * (values - returns) / n
                self.policy.backward_value(grad_values)

                clip_grad_norm_(self.policy.parameters(), self.max_grad_norm)
                self.optimizer.step()

            if not continue_training:
                break

        step = self.num_timesteps
        self.logger.record("train/entropy_loss", float(np.mean(entropy_losses)), step)
        self.logger.record("train/policy_gradient_loss", float(np.mean(pg_losses)), step)
        self.logger.record("train/value_loss", float(np.mean(value_losses)), step)
        self.logger.record("train/approx_kl", float(np.mean(approx_kls)), step)
        self.logger.record("train/clip_fraction", float(np.mean(clip_fractions)), step)
        self.logger.record("train/clip_range", float(clip_range), step)
        self.logger.record("train/learning_rate", float(self.optimizer.lr), step)
        self.logger.record(
            "train/explained_variance", float(self.rollout_buffer.explained_variance()), step
        )
        if self.policy.is_continuous:
            self.logger.record("train/std", float(np.mean(np.exp(self.policy.log_std.data))), step)

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def learn(
        self,
        total_timesteps: int,
        callback: Optional[Union[BaseCallback, list]] = None,
        log_interval: int = 1,
        progress_bar: bool = False,
    ) -> "PPO":
        """Train for (at least) ``total_timesteps`` environment steps."""
        if total_timesteps <= 0:
            raise ValueError("total_timesteps must be > 0")
        self._total_timesteps = int(total_timesteps)

        if isinstance(callback, list):
            callback = CallbackList(callback)
        if callback is None:
            callback = BaseCallback()
        callback.init_callback(self)
        callback.on_training_start()

        self._reset_env()
        iteration = 0
        while self.num_timesteps < self._total_timesteps:
            self.collect_rollouts()
            iteration += 1

            if self._ep_info_buffer:
                rewards = [info["r"] for info in self._ep_info_buffer]
                lengths = [info["l"] for info in self._ep_info_buffer]
                self.logger.record("rollout/ep_rew_mean", float(np.mean(rewards)), self.num_timesteps)
                self.logger.record("rollout/ep_len_mean", float(np.mean(lengths)), self.num_timesteps)

            if not callback.on_rollout_end():
                break

            self.train()

            if self.verbose and iteration % max(1, log_interval) == 0:  # pragma: no cover
                rew = self.logger.latest("rollout/ep_rew_mean", float("nan"))
                ent = self.logger.latest("train/entropy_loss", float("nan"))
                print(
                    f"iter={iteration} timesteps={self.num_timesteps} "
                    f"ep_rew_mean={rew:.4f} entropy_loss={ent:.3f}"
                )

            if not callback.on_update_end():
                break

        callback.on_training_end()
        return self

    # ------------------------------------------------------------------ #
    # Inference & persistence
    # ------------------------------------------------------------------ #
    def predict(self, obs: np.ndarray, deterministic: bool = True):
        """Predict an action for *obs* (delegates to the policy)."""
        return self.policy.predict(obs, deterministic=deterministic)

    def save(self, path: str) -> None:
        """Save the policy parameters to ``path`` (``.npz``)."""
        self.policy.save(path)

    def load_parameters(self, path: str) -> None:
        """Load policy parameters from a file written by :meth:`save`."""
        self.policy.load(path)

    def training_curve(self) -> Dict[str, list]:
        """Return the logged training curve (steps and values per metric)."""
        return {
            key: {"steps": self.logger.steps(key), "values": self.logger.values(key)}
            for key in self.logger.keys
        }
