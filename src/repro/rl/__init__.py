"""Reinforcement-learning substrate: a pure-NumPy PPO implementation.

The paper trains its allocation policy with Proximal Policy Optimization
(PPO) using an MLP policy and default hyperparameters (§6.6).  Neither
Stable-Baselines3 nor a deep-learning framework is available offline, so this
subpackage implements the full stack from scratch on top of NumPy:

* :mod:`repro.rl.nn` — layers (:class:`~repro.rl.nn.layers.Linear`,
  activations, :class:`~repro.rl.nn.layers.Sequential`) with explicit
  forward/backward passes, orthogonal initialisation and the
  :class:`~repro.rl.nn.optim.Adam` optimizer,
* :mod:`repro.rl.distributions` — diagonal Gaussian and categorical action
  distributions,
* :mod:`repro.rl.policies` — the actor-critic MLP policy,
* :mod:`repro.rl.buffers` — rollout storage with GAE(λ) advantage estimation
  and an optional ``n_envs`` batch axis,
* :mod:`repro.rl.ppo` — the clipped-surrogate PPO algorithm with the same
  default hyperparameters as Stable-Baselines3 and vectorized rollout
  collection over :mod:`repro.gymapi.vector` environments,
* :mod:`repro.rl.logger` / :mod:`repro.rl.callbacks` — training diagnostics
  (used to regenerate the paper's Fig. 5 training curves).
"""

from repro.rl import nn
from repro.rl.buffers import RolloutBuffer
from repro.rl.callbacks import BaseCallback, CallbackList, TrainingCurveCallback
from repro.rl.distributions import Categorical, DiagGaussian
from repro.rl.logger import TrainingLogger
from repro.rl.policies import ActorCriticPolicy
from repro.rl.ppo import PPO

__all__ = [
    "ActorCriticPolicy",
    "BaseCallback",
    "CallbackList",
    "Categorical",
    "DiagGaussian",
    "PPO",
    "RolloutBuffer",
    "TrainingCurveCallback",
    "TrainingLogger",
    "nn",
]
