"""Rollout storage with Generalised Advantage Estimation (GAE)."""

from __future__ import annotations

from typing import Dict, Iterator, Optional

import numpy as np

__all__ = ["RolloutBuffer"]


class RolloutBuffer:
    """Fixed-size buffer holding one on-policy rollout.

    The buffer stores transitions collected by the PPO data-collection loop
    and computes advantage estimates with GAE(λ) once the rollout is
    complete.  Mini-batches are then served in random order for the gradient
    updates.

    Parameters
    ----------
    buffer_size:
        Number of environment steps per rollout (PPO's ``n_steps``).
    obs_dim, action_dim:
        Dimensionality of observations and (continuous) actions.  For
        discrete actions, ``action_dim`` should be 1.
    gamma, gae_lambda:
        Discount factor and GAE smoothing factor.
    """

    def __init__(
        self,
        buffer_size: int,
        obs_dim: int,
        action_dim: int,
        gamma: float = 0.99,
        gae_lambda: float = 0.95,
    ) -> None:
        if buffer_size <= 0:
            raise ValueError("buffer_size must be > 0")
        if not 0.0 <= gamma <= 1.0:
            raise ValueError("gamma must be in [0, 1]")
        if not 0.0 <= gae_lambda <= 1.0:
            raise ValueError("gae_lambda must be in [0, 1]")
        self.buffer_size = int(buffer_size)
        self.obs_dim = int(obs_dim)
        self.action_dim = int(action_dim)
        self.gamma = float(gamma)
        self.gae_lambda = float(gae_lambda)
        self.reset()

    def reset(self) -> None:
        """Clear the buffer and reallocate storage."""
        n, d_obs, d_act = self.buffer_size, self.obs_dim, self.action_dim
        self.observations = np.zeros((n, d_obs), dtype=np.float64)
        self.actions = np.zeros((n, d_act), dtype=np.float64)
        self.rewards = np.zeros(n, dtype=np.float64)
        self.episode_starts = np.zeros(n, dtype=np.float64)
        self.values = np.zeros(n, dtype=np.float64)
        self.log_probs = np.zeros(n, dtype=np.float64)
        self.advantages = np.zeros(n, dtype=np.float64)
        self.returns = np.zeros(n, dtype=np.float64)
        self.pos = 0
        self.full = False

    def add(
        self,
        obs: np.ndarray,
        action: np.ndarray,
        reward: float,
        episode_start: bool,
        value: float,
        log_prob: float,
    ) -> None:
        """Append a single transition."""
        if self.full:
            raise RuntimeError("RolloutBuffer is full; call reset() before adding more data")
        self.observations[self.pos] = np.asarray(obs, dtype=np.float64).reshape(-1)
        self.actions[self.pos] = np.asarray(action, dtype=np.float64).reshape(-1)
        self.rewards[self.pos] = float(reward)
        self.episode_starts[self.pos] = float(episode_start)
        self.values[self.pos] = float(value)
        self.log_probs[self.pos] = float(log_prob)
        self.pos += 1
        if self.pos == self.buffer_size:
            self.full = True

    def compute_returns_and_advantage(self, last_value: float, done: bool) -> None:
        """Compute GAE(λ) advantages and discounted returns.

        Parameters
        ----------
        last_value:
            Value estimate of the state following the final transition.
        done:
            Whether the final transition terminated the episode.
        """
        if not self.full:
            raise RuntimeError("Rollout is not complete")
        last_gae = 0.0
        for step in reversed(range(self.buffer_size)):
            if step == self.buffer_size - 1:
                next_non_terminal = 1.0 - float(done)
                next_value = float(last_value)
            else:
                next_non_terminal = 1.0 - self.episode_starts[step + 1]
                next_value = self.values[step + 1]
            delta = self.rewards[step] + self.gamma * next_value * next_non_terminal - self.values[step]
            last_gae = delta + self.gamma * self.gae_lambda * next_non_terminal * last_gae
            self.advantages[step] = last_gae
        self.returns = self.advantages + self.values

    def get(
        self, batch_size: Optional[int] = None, rng: Optional[np.random.Generator] = None
    ) -> Iterator[Dict[str, np.ndarray]]:
        """Yield shuffled mini-batches covering the whole buffer once."""
        if not self.full:
            raise RuntimeError("Rollout is not complete")
        rng = rng if rng is not None else np.random.default_rng()
        indices = rng.permutation(self.buffer_size)
        if batch_size is None or batch_size >= self.buffer_size:
            batch_size = self.buffer_size
        start = 0
        while start < self.buffer_size:
            idx = indices[start : start + batch_size]
            yield {
                "observations": self.observations[idx],
                "actions": self.actions[idx],
                "old_values": self.values[idx],
                "old_log_probs": self.log_probs[idx],
                "advantages": self.advantages[idx],
                "returns": self.returns[idx],
            }
            start += batch_size

    def __len__(self) -> int:
        return self.pos

    def explained_variance(self) -> float:
        """Fraction of return variance explained by the value predictions."""
        var_returns = float(np.var(self.returns))
        if var_returns == 0.0:
            return float("nan")
        return 1.0 - float(np.var(self.returns - self.values)) / var_returns
