"""Rollout storage with Generalised Advantage Estimation (GAE).

The buffer supports an optional environment batch axis (``n_envs``): with the
default ``n_envs=1`` every array keeps its historical 1-environment shape
(``(buffer_size,)`` / ``(buffer_size, dim)``) and all results are bit-for-bit
identical to the original single-environment implementation; with
``n_envs > 1`` the storage grows a batch axis (``(buffer_size, n_envs, ...)``)
filled by vectorized rollout collection, GAE runs once over ``(n_envs,)``
vectors per time step, and mini-batches are served from the
``buffer_size * n_envs`` flattened transitions.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Union

import numpy as np

__all__ = ["RolloutBuffer"]

FloatOrArray = Union[float, np.ndarray]


def _as_float(value: Union[bool, float, np.ndarray]) -> float:
    """Convert a scalar or size-1 array to a Python float."""
    return float(np.asarray(value, dtype=np.float64).reshape(()))


class RolloutBuffer:
    """Fixed-size buffer holding one on-policy rollout.

    The buffer stores transitions collected by the PPO data-collection loop
    and computes advantage estimates with GAE(λ) once the rollout is
    complete.  Mini-batches are then served in random order for the gradient
    updates.

    Parameters
    ----------
    buffer_size:
        Number of environment *vector* steps per rollout — PPO's
        ``n_steps // n_envs``.  Total stored transitions are
        ``buffer_size * n_envs``.
    obs_dim, action_dim:
        Dimensionality of observations and (continuous) actions.  For
        discrete actions, ``action_dim`` should be 1.
    gamma, gae_lambda:
        Discount factor and GAE smoothing factor.
    n_envs:
        Number of parallel environments feeding the buffer (default 1, which
        preserves the original single-environment array shapes exactly).
    """

    def __init__(
        self,
        buffer_size: int,
        obs_dim: int,
        action_dim: int,
        gamma: float = 0.99,
        gae_lambda: float = 0.95,
        n_envs: int = 1,
    ) -> None:
        if buffer_size <= 0:
            raise ValueError("buffer_size must be > 0")
        if n_envs <= 0:
            raise ValueError("n_envs must be > 0")
        if not 0.0 <= gamma <= 1.0:
            raise ValueError("gamma must be in [0, 1]")
        if not 0.0 <= gae_lambda <= 1.0:
            raise ValueError("gae_lambda must be in [0, 1]")
        self.buffer_size = int(buffer_size)
        self.obs_dim = int(obs_dim)
        self.action_dim = int(action_dim)
        self.gamma = float(gamma)
        self.gae_lambda = float(gae_lambda)
        self.n_envs = int(n_envs)
        self.reset()

    @property
    def total_transitions(self) -> int:
        """Number of transitions held by a full buffer."""
        return self.buffer_size * self.n_envs

    def _batch_shape(self, *trailing: int) -> tuple:
        if self.n_envs == 1:
            return (self.buffer_size, *trailing)
        return (self.buffer_size, self.n_envs, *trailing)

    def reset(self) -> None:
        """Clear the buffer and reallocate storage."""
        self.observations = np.zeros(self._batch_shape(self.obs_dim), dtype=np.float64)
        self.actions = np.zeros(self._batch_shape(self.action_dim), dtype=np.float64)
        self.rewards = np.zeros(self._batch_shape(), dtype=np.float64)
        self.episode_starts = np.zeros(self._batch_shape(), dtype=np.float64)
        self.values = np.zeros(self._batch_shape(), dtype=np.float64)
        self.log_probs = np.zeros(self._batch_shape(), dtype=np.float64)
        self.advantages = np.zeros(self._batch_shape(), dtype=np.float64)
        self.returns = np.zeros(self._batch_shape(), dtype=np.float64)
        self.pos = 0
        self.full = False
        self._flat_cache: Optional[Dict[str, np.ndarray]] = None

    def add(
        self,
        obs: np.ndarray,
        action: np.ndarray,
        reward: FloatOrArray,
        episode_start: Union[bool, np.ndarray],
        value: FloatOrArray,
        log_prob: FloatOrArray,
    ) -> None:
        """Append one transition per environment (a whole vector step)."""
        if self.full:
            raise RuntimeError("RolloutBuffer is full; call reset() before adding more data")
        if self.n_envs == 1:
            self.observations[self.pos] = np.asarray(obs, dtype=np.float64).reshape(-1)
            self.actions[self.pos] = np.asarray(action, dtype=np.float64).reshape(-1)
            self.rewards[self.pos] = _as_float(reward)
            self.episode_starts[self.pos] = _as_float(episode_start)
            self.values[self.pos] = _as_float(value)
            self.log_probs[self.pos] = _as_float(log_prob)
        else:
            self.observations[self.pos] = np.asarray(obs, dtype=np.float64).reshape(
                self.n_envs, self.obs_dim
            )
            self.actions[self.pos] = np.asarray(action, dtype=np.float64).reshape(
                self.n_envs, self.action_dim
            )
            self.rewards[self.pos] = np.asarray(reward, dtype=np.float64).reshape(self.n_envs)
            self.episode_starts[self.pos] = np.asarray(episode_start, dtype=np.float64).reshape(
                self.n_envs
            )
            self.values[self.pos] = np.asarray(value, dtype=np.float64).reshape(self.n_envs)
            self.log_probs[self.pos] = np.asarray(log_prob, dtype=np.float64).reshape(self.n_envs)
        self.pos += 1
        if self.pos == self.buffer_size:
            self.full = True

    def compute_returns_and_advantage(
        self, last_value: FloatOrArray, done: Union[bool, np.ndarray]
    ) -> None:
        """Compute GAE(λ) advantages and discounted returns.

        Parameters
        ----------
        last_value:
            Value estimate of the state following each environment's final
            transition — a float (``n_envs == 1``) or an ``(n_envs,)`` array.
        done:
            Whether each environment's final transition terminated its
            episode — a bool or an ``(n_envs,)`` array.
        """
        if not self.full:
            raise RuntimeError("Rollout is not complete")
        if self.n_envs == 1:
            last_values: FloatOrArray = _as_float(last_value)
            next_episode_start: FloatOrArray = _as_float(done)
            last_gae: FloatOrArray = 0.0
        else:
            last_values = np.asarray(last_value, dtype=np.float64).reshape(self.n_envs)
            next_episode_start = np.asarray(done, dtype=np.float64).reshape(self.n_envs)
            last_gae = np.zeros(self.n_envs, dtype=np.float64)
        for step in reversed(range(self.buffer_size)):
            if step == self.buffer_size - 1:
                next_non_terminal = 1.0 - next_episode_start
                next_value = last_values
            else:
                next_non_terminal = 1.0 - self.episode_starts[step + 1]
                next_value = self.values[step + 1]
            delta = self.rewards[step] + self.gamma * next_value * next_non_terminal - self.values[step]
            last_gae = delta + self.gamma * self.gae_lambda * next_non_terminal * last_gae
            self.advantages[step] = last_gae
        self.returns = self.advantages + self.values
        self._flat_cache = None

    def _flatten(self, array: np.ndarray) -> np.ndarray:
        """Collapse the (time, env) axes into one transition axis (env-major)."""
        if self.n_envs == 1:
            return array
        return array.swapaxes(0, 1).reshape(self.total_transitions, *array.shape[2:])

    def get(
        self, batch_size: Optional[int] = None, rng: Optional[np.random.Generator] = None
    ) -> Iterator[Dict[str, np.ndarray]]:
        """Yield shuffled mini-batches covering the whole buffer once."""
        if not self.full:
            raise RuntimeError("Rollout is not complete")
        rng = rng if rng is not None else np.random.default_rng()
        total = self.total_transitions
        indices = rng.permutation(total)
        if batch_size is None or batch_size >= total:
            batch_size = total
        if self._flat_cache is None:
            # Flatten once per rollout, not once per epoch: for n_envs > 1 the
            # swap-and-flatten copies all six arrays, and PPO calls get() once
            # per training epoch over the same completed rollout.
            self._flat_cache = {
                "observations": self._flatten(self.observations),
                "actions": self._flatten(self.actions),
                "old_values": self._flatten(self.values),
                "old_log_probs": self._flatten(self.log_probs),
                "advantages": self._flatten(self.advantages),
                "returns": self._flatten(self.returns),
            }
        flat = self._flat_cache
        start = 0
        while start < total:
            idx = indices[start : start + batch_size]
            yield {key: array[idx] for key, array in flat.items()}
            start += batch_size

    def __len__(self) -> int:
        return self.pos * self.n_envs

    def explained_variance(self) -> float:
        """Fraction of return variance explained by the value predictions."""
        var_returns = float(np.var(self.returns))
        if var_returns == 0.0:
            return float("nan")
        return 1.0 - float(np.var(self.returns - self.values)) / var_returns
