"""High-level experiment runners.

:func:`run_case_study` reproduces the paper's §7 evaluation: it runs the same
synthetic workload through each allocation strategy on the five-device fleet
and returns one :class:`~repro.metrics.aggregate.StrategySummary` per
strategy (the rows of Table 2) together with the raw per-job records (the
data behind Fig. 6).

The sweep helpers (:func:`sweep_communication_penalty`,
:func:`sweep_error_score_weights`) implement the ablations called out in
DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv
from repro.cloud.job_generator import generate_synthetic_jobs
from repro.cloud.qjob import QJob
from repro.cloud.records import JobRecord
from repro.metrics.aggregate import StrategySummary, summarize_records
from repro.metrics.error_score import ErrorScoreWeights
from repro.scheduling.error_aware import ErrorAwarePolicy
from repro.scheduling.registry import create_policy

__all__ = [
    "CaseStudyResult",
    "run_policy_simulation",
    "run_case_study",
    "sweep_communication_penalty",
    "sweep_error_score_weights",
]

#: The four strategies evaluated in the paper, in Table 2 order.
PAPER_STRATEGIES = ("speed", "fidelity", "fair", "rlbase")


@dataclass
class CaseStudyResult:
    """Results of one multi-strategy case study."""

    #: Per-strategy Table 2 rows.
    summaries: Dict[str, StrategySummary] = field(default_factory=dict)
    #: Per-strategy raw job records (input to the Fig. 6 histograms).
    records: Dict[str, List[JobRecord]] = field(default_factory=dict)
    #: The configuration that produced the results.
    config: Optional[SimulationConfig] = None

    def summary_rows(self) -> List[Dict[str, object]]:
        """All Table 2 rows as dictionaries, in insertion order."""
        return [s.as_row() for s in self.summaries.values()]

    def fidelities(self, strategy: str) -> List[float]:
        """Final fidelities of all jobs under one strategy."""
        return [r.fidelity for r in self.records[strategy]]


def _clone_jobs(jobs: Sequence[QJob]) -> List[QJob]:
    """Deep-ish copy of a job list so each simulation gets fresh status fields."""
    return [
        QJob(
            job_id=j.job_id,
            circuit=j.circuit,
            arrival_time=j.arrival_time,
            priority=j.priority,
        )
        for j in jobs
    ]


def run_policy_simulation(
    config: SimulationConfig,
    policy: Any = None,
    jobs: Optional[Sequence[QJob]] = None,
) -> Tuple[StrategySummary, List[JobRecord]]:
    """Run one simulation with one policy and summarise it.

    Parameters
    ----------
    config:
        Simulation configuration (devices, workload, communication model).
    policy:
        Policy instance; when ``None`` it is created from ``config.policy``
        via the registry.
    jobs:
        Pre-built workload (cloned before use); when ``None`` the synthetic
        workload described by *config* is generated.
    """
    if jobs is None:
        jobs = generate_synthetic_jobs(
            num_jobs=config.num_jobs,
            seed=config.seed,
            qubit_range=config.qubit_range,
            depth_range=config.depth_range,
            shots_range=config.shots_range,
            two_qubit_density=config.two_qubit_density,
            arrival=config.arrival,
            arrival_rate=config.arrival_rate,
        )
    env = QCloudSimEnv(config=config, jobs=_clone_jobs(jobs), policy=policy)
    records = env.run_until_complete()
    name = getattr(env.policy, "name", config.policy)
    return summarize_records(records, strategy=name), records


def run_case_study(
    config: Optional[SimulationConfig] = None,
    strategies: Sequence[str] = PAPER_STRATEGIES,
    rl_model: Any = None,
    policies: Optional[Dict[str, Any]] = None,
) -> CaseStudyResult:
    """Run the paper's case study across several allocation strategies.

    Every strategy sees exactly the same workload (same seed, cloned jobs) on
    an identically configured fleet.

    Parameters
    ----------
    config:
        Simulation configuration; defaults to the paper's (1,000 jobs).
    strategies:
        Strategy names to run (Table 2 order by default).  ``"rlbase"`` is
        skipped with a warning entry when no model is available.
    rl_model:
        Trained model for the ``"rlbase"`` strategy (a
        :class:`repro.rl.ppo.PPO` or anything with ``predict``).
    policies:
        Optional mapping overriding specific policy instances by name.
    """
    config = config if config is not None else SimulationConfig()
    policies = dict(policies or {})

    jobs = generate_synthetic_jobs(
        num_jobs=config.num_jobs,
        seed=config.seed,
        qubit_range=config.qubit_range,
        depth_range=config.depth_range,
        shots_range=config.shots_range,
        two_qubit_density=config.two_qubit_density,
        arrival=config.arrival,
        arrival_rate=config.arrival_rate,
    )

    result = CaseStudyResult(config=config)
    for strategy in strategies:
        if strategy in policies:
            policy = policies[strategy]
        elif strategy in ("rlbase", "rl"):
            if rl_model is None:
                continue
            policy = create_policy("rlbase", model=rl_model)
        else:
            policy = create_policy(strategy)
        summary, records = run_policy_simulation(
            config.with_policy(strategy), policy=policy, jobs=jobs
        )
        result.summaries[strategy] = summary
        result.records[strategy] = records
    return result


def sweep_communication_penalty(
    phis: Sequence[float],
    config: Optional[SimulationConfig] = None,
    strategy: str = "speed",
) -> Dict[float, StrategySummary]:
    """Ablation: sweep the per-link fidelity penalty φ (default 0.95)."""
    config = config if config is not None else SimulationConfig(num_jobs=50)
    results: Dict[float, StrategySummary] = {}
    for phi in phis:
        cfg = config.with_policy(strategy)
        cfg = SimulationConfig(**{**cfg.as_dict(), "comm_fidelity_penalty": float(phi)})
        summary, _ = run_policy_simulation(cfg)
        results[float(phi)] = summary
    return results


def sweep_error_score_weights(
    weight_sets: Sequence[Tuple[float, float, float]],
    config: Optional[SimulationConfig] = None,
) -> Dict[Tuple[float, float, float], StrategySummary]:
    """Ablation: sweep the error-score weights (α, θ, γ) of Eq. (2)."""
    config = config if config is not None else SimulationConfig(num_jobs=50)
    results: Dict[Tuple[float, float, float], StrategySummary] = {}
    for alpha, theta, gamma in weight_sets:
        policy = ErrorAwarePolicy(weights=ErrorScoreWeights(alpha, theta, gamma))
        summary, _ = run_policy_simulation(config.with_policy("fidelity"), policy=policy)
        results[(alpha, theta, gamma)] = summary
    return results
