"""High-level experiment runners.

:func:`run_case_study` reproduces the paper's §7 evaluation: it runs the same
synthetic workload through each allocation strategy on the five-device fleet
and returns one :class:`~repro.metrics.aggregate.StrategySummary` per
strategy (the rows of Table 2) together with the raw per-job records (the
data behind Fig. 6).

The sweep helpers (:func:`sweep_communication_penalty`,
:func:`sweep_error_score_weights`) implement the ablations called out in
DESIGN.md.

All of them are thin declarative fronts over
:class:`~repro.engine.ExperimentRunner`: they build an experiment grid and
delegate execution, so every entry point transparently supports the serial
and process-pool backends and result-store caching (pass ``runner=`` or
``backend=``/``max_workers=``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cloud.config import SimulationConfig
from repro.cloud.qjob import QJob
from repro.cloud.records import JobRecord
from repro.engine import ExperimentCell, ExperimentRunner, ExperimentSpec, PolicySpec
from repro.metrics.aggregate import StrategySummary
from repro.metrics.error_score import ErrorScoreWeights
from repro.scheduling.registry import create_policy

__all__ = [
    "CaseStudyResult",
    "run_policy_simulation",
    "run_case_study",
    "sweep_communication_penalty",
    "sweep_error_score_weights",
]

#: The four strategies evaluated in the paper, in Table 2 order.
PAPER_STRATEGIES = ("speed", "fidelity", "fair", "rlbase")


def _resolve_runner(
    runner: Optional[ExperimentRunner],
    backend: Optional[str],
    max_workers: Optional[int],
) -> ExperimentRunner:
    """An explicit runner wins; otherwise build one from backend/max_workers."""
    if runner is not None:
        return runner
    return ExperimentRunner(backend=backend or "serial", max_workers=max_workers)


@dataclass
class CaseStudyResult:
    """Results of one multi-strategy case study."""

    #: Per-strategy Table 2 rows.
    summaries: Dict[str, StrategySummary] = field(default_factory=dict)
    #: Per-strategy raw job records (input to the Fig. 6 histograms).
    records: Dict[str, List[JobRecord]] = field(default_factory=dict)
    #: The configuration that produced the results.
    config: Optional[SimulationConfig] = None

    def summary_rows(self) -> List[Dict[str, object]]:
        """All Table 2 rows as dictionaries, in insertion order."""
        return [s.as_row() for s in self.summaries.values()]

    def fidelities(self, strategy: str) -> List[float]:
        """Final fidelities of all jobs under one strategy."""
        return [r.fidelity for r in self.records[strategy]]


def run_policy_simulation(
    config: SimulationConfig,
    policy: Any = None,
    jobs: Optional[Sequence[QJob]] = None,
    runner: Optional[ExperimentRunner] = None,
) -> Tuple[StrategySummary, List[JobRecord]]:
    """Run one simulation with one policy and summarise it.

    Parameters
    ----------
    config:
        Simulation configuration (devices, workload, communication model).
    policy:
        Policy instance; when ``None`` it is created from ``config.policy``
        via the registry.
    jobs:
        Pre-built workload (cloned before use); when ``None`` the synthetic
        workload described by *config* is generated.
    runner:
        Experiment runner to execute on (default: a serial one).
    """
    cell = ExperimentCell(
        index=0,
        strategy=config.policy,
        seed=config.seed,
        config=config,
        policy=policy,
        jobs=tuple(jobs) if jobs is not None else None,
    )
    result = _resolve_runner(runner, None, None).run_cells([cell])[0]
    return result.summary, result.records


def run_case_study(
    config: Optional[SimulationConfig] = None,
    strategies: Sequence[str] = PAPER_STRATEGIES,
    rl_model: Any = None,
    policies: Optional[Dict[str, Any]] = None,
    runner: Optional[ExperimentRunner] = None,
    backend: Optional[str] = None,
    max_workers: Optional[int] = None,
) -> CaseStudyResult:
    """Run the paper's case study across several allocation strategies.

    Every strategy sees exactly the same workload (same seed) on an
    identically configured fleet; with ``backend="process"`` the strategies
    run concurrently and the results are identical to the serial backend.

    Parameters
    ----------
    config:
        Simulation configuration; defaults to the paper's (1,000 jobs).
    strategies:
        Strategy names to run (Table 2 order by default).  ``"rlbase"`` is
        skipped when no model is available.
    rl_model:
        Trained model for the ``"rlbase"`` strategy (a
        :class:`repro.rl.ppo.PPO` or anything with ``predict``).
    policies:
        Optional mapping overriding specific policy instances by name.
    runner, backend, max_workers:
        Execution control: pass a ready :class:`ExperimentRunner` (wins), or
        a backend name (``"serial"``/``"process"``) and pool size.
    """
    config = config if config is not None else SimulationConfig()
    policies = dict(policies or {})

    selected: List[str] = []
    for strategy in strategies:
        if strategy not in policies and strategy in ("rlbase", "rl"):
            if rl_model is None:
                continue
            policies[strategy] = create_policy("rlbase", model=rl_model)
        selected.append(strategy)

    if not selected:
        # Every requested strategy was skipped (e.g. only "rlbase", no model).
        return CaseStudyResult(config=config)

    spec = ExperimentSpec(
        base_config=config,
        strategies=tuple(selected),
        policies=policies,
    )
    outcome = _resolve_runner(runner, backend, max_workers).run(spec)

    result = CaseStudyResult(config=config)
    for cell_result in outcome:
        result.summaries[cell_result.cell.strategy] = cell_result.summary
        result.records[cell_result.cell.strategy] = cell_result.records
    return result


def sweep_communication_penalty(
    phis: Sequence[float],
    config: Optional[SimulationConfig] = None,
    strategy: str = "speed",
    runner: Optional[ExperimentRunner] = None,
) -> Dict[float, StrategySummary]:
    """Ablation: sweep the per-link fidelity penalty φ (default 0.95)."""
    config = config if config is not None else SimulationConfig(num_jobs=50)
    spec = ExperimentSpec(
        base_config=config,
        strategies=(strategy,),
        overrides=tuple({"comm_fidelity_penalty": float(phi)} for phi in phis),
    )
    outcome = _resolve_runner(runner, None, None).run(spec)
    return {
        float(phi): cell_result.summary
        for phi, cell_result in zip(phis, outcome)
    }


def sweep_error_score_weights(
    weight_sets: Sequence[Tuple[float, float, float]],
    config: Optional[SimulationConfig] = None,
    runner: Optional[ExperimentRunner] = None,
) -> Dict[Tuple[float, float, float], StrategySummary]:
    """Ablation: sweep the error-score weights (α, θ, γ) of Eq. (2)."""
    config = config if config is not None else SimulationConfig(num_jobs=50)
    base = config.with_policy("fidelity")
    cells = [
        ExperimentCell(
            index=i,
            strategy="fidelity",
            seed=base.seed,
            config=base,
            policy_spec=PolicySpec(
                "fidelity", {"weights": ErrorScoreWeights(alpha, theta, gamma)}
            ),
        )
        for i, (alpha, theta, gamma) in enumerate(weight_sets)
    ]
    results = _resolve_runner(runner, None, None).run_cells(cells)
    return {
        tuple(weights): cell_result.summary
        for weights, cell_result in zip(weight_sets, results)
    }
