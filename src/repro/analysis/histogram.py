"""Fidelity-distribution utilities (Fig. 6).

The paper's Fig. 6 shows one fidelity histogram per allocation strategy.
:func:`fidelity_distributions` computes the histogram series for a
multi-strategy case-study result on a shared binning so the panels are
directly comparable, and :func:`ascii_histogram` renders a single
distribution as text for terminal inspection / benchmark output.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["fidelity_distributions", "ascii_histogram", "distribution_stats"]


def fidelity_distributions(
    fidelities_by_strategy: Mapping[str, Sequence[float]],
    bins: int = 30,
    value_range: Optional[Tuple[float, float]] = None,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Histogram every strategy's fidelities on a common binning.

    Parameters
    ----------
    fidelities_by_strategy:
        Mapping from strategy name to the list of per-job final fidelities.
    bins:
        Number of bins.
    value_range:
        Common (min, max); defaults to the range spanned by all strategies.

    Returns
    -------
    Mapping from strategy name to ``{"counts", "edges", "centers", "density"}``.
    """
    if not fidelities_by_strategy:
        raise ValueError("no strategies to histogram")
    if bins <= 0:
        raise ValueError("bins must be positive")

    all_values = np.concatenate(
        [np.asarray(list(v), dtype=np.float64) for v in fidelities_by_strategy.values()]
    )
    if all_values.size == 0:
        raise ValueError("no fidelity values to histogram")
    if value_range is None:
        lo, hi = float(all_values.min()), float(all_values.max())
        if lo == hi:
            lo, hi = lo - 0.01, hi + 0.01
        value_range = (lo, hi)

    result: Dict[str, Dict[str, np.ndarray]] = {}
    for strategy, values in fidelities_by_strategy.items():
        arr = np.asarray(list(values), dtype=np.float64)
        counts, edges = np.histogram(arr, bins=bins, range=value_range)
        centers = 0.5 * (edges[:-1] + edges[1:])
        density = counts / max(counts.sum(), 1)
        result[strategy] = {
            "counts": counts,
            "edges": edges,
            "centers": centers,
            "density": density,
        }
    return result


def distribution_stats(fidelities: Sequence[float]) -> Dict[str, float]:
    """Summary statistics of one fidelity distribution (mean/std/min/max/IQR width)."""
    arr = np.asarray(list(fidelities), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("empty fidelity list")
    q25, q75 = np.percentile(arr, [25, 75])
    return {
        "mean": float(arr.mean()),
        "std": float(arr.std()),
        "min": float(arr.min()),
        "max": float(arr.max()),
        "iqr_width": float(q75 - q25),
        "range_width": float(arr.max() - arr.min()),
    }


def ascii_histogram(
    fidelities: Sequence[float],
    bins: int = 20,
    width: int = 50,
    value_range: Optional[Tuple[float, float]] = None,
    title: str = "",
) -> str:
    """Render a fidelity histogram as ASCII art (one line per bin)."""
    arr = np.asarray(list(fidelities), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("empty fidelity list")
    counts, edges = np.histogram(arr, bins=bins, range=value_range)
    peak = counts.max() if counts.max() > 0 else 1
    lines = []
    if title:
        lines.append(title)
    for i, count in enumerate(counts):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"{edges[i]:.4f}-{edges[i + 1]:.4f} | {bar} {count}")
    return "\n".join(lines)
