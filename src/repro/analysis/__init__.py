"""Experiment runners and result presentation.

* :mod:`repro.analysis.experiments` — high-level runners that reproduce the
  paper's case study (Table 2, Fig. 6) and the ablation studies,
* :mod:`repro.analysis.reporting` — plain-text / markdown rendering of the
  result tables,
* :mod:`repro.analysis.histogram` — histogram utilities and ASCII rendering
  for the fidelity distributions of Fig. 6,
* :mod:`repro.analysis.training_curve` — summarisation of the PPO training
  curve of Fig. 5.
"""

from repro.analysis.connectivity import ConnectivityAudit, audit_connectivity
from repro.analysis.experiments import (
    CaseStudyResult,
    run_case_study,
    run_policy_simulation,
    sweep_communication_penalty,
    sweep_error_score_weights,
)
from repro.analysis.histogram import ascii_histogram, fidelity_distributions
from repro.analysis.reporting import format_markdown_table, format_table2
from repro.analysis.training_curve import summarize_training_curve

__all__ = [
    "CaseStudyResult",
    "ConnectivityAudit",
    "ascii_histogram",
    "audit_connectivity",
    "fidelity_distributions",
    "format_markdown_table",
    "format_table2",
    "run_case_study",
    "run_policy_simulation",
    "summarize_training_curve",
    "sweep_communication_penalty",
    "sweep_error_score_weights",
]
