"""Plain-text / markdown rendering of result tables."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.metrics.aggregate import StrategySummary

__all__ = ["format_table2", "format_markdown_table"]


def format_table2(summaries: Mapping[str, StrategySummary]) -> str:
    """Render per-strategy summaries in the layout of the paper's Table 2.

    Columns: mode, T_sim (s), mean ± std fidelity, T_comm (s).
    """
    if not summaries:
        raise ValueError("no summaries to format")
    lines = [
        f"{'Mode':<10s} {'T_sim (s)':>14s} {'fidelity (mean ± std)':>24s} {'T_comm (s)':>12s}",
        "-" * 64,
    ]
    for name, summary in summaries.items():
        lines.append(
            f"{name:<10s} {summary.total_simulation_time:>14.2f} "
            f"{summary.mean_fidelity:>12.5f} ± {summary.std_fidelity:.5f} "
            f"{summary.total_communication_time:>12.2f}"
        )
    return "\n".join(lines)


def format_markdown_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str] = ()) -> str:
    """Render a list of dict rows as a GitHub-flavoured markdown table."""
    rows = list(rows)
    if not rows:
        raise ValueError("no rows to format")
    columns = list(columns) if columns else list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.5f}"
        return str(value)

    header = "| " + " | ".join(columns) + " |"
    separator = "| " + " | ".join("---" for _ in columns) + " |"
    body = ["| " + " | ".join(fmt(row.get(col, "")) for col in columns) + " |" for row in rows]
    return "\n".join([header, separator] + body)
