"""Plain-text / markdown rendering of result tables."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.metrics.aggregate import StrategySummary

__all__ = [
    "format_table2",
    "format_markdown_table",
    "format_region_table",
    "format_tenant_table",
]


def format_table2(summaries: Mapping[str, StrategySummary]) -> str:
    """Render per-strategy summaries in the layout of the paper's Table 2.

    Columns: mode, T_sim (s), mean ± std fidelity, T_comm (s).
    """
    if not summaries:
        raise ValueError("no summaries to format")
    lines = [
        f"{'Mode':<10s} {'T_sim (s)':>14s} {'fidelity (mean ± std)':>24s} {'T_comm (s)':>12s}",
        "-" * 64,
    ]
    for name, summary in summaries.items():
        lines.append(
            f"{name:<10s} {summary.total_simulation_time:>14.2f} "
            f"{summary.mean_fidelity:>12.5f} ± {summary.std_fidelity:.5f} "
            f"{summary.total_communication_time:>12.2f}"
        )
    return "\n".join(lines)


def format_tenant_table(reports: Sequence[object]) -> str:
    """Render per-tenant SLO reports (see :mod:`repro.serve.accounting`).

    Columns: tenant, priority class, submitted/completed/rejected/failed
    counts, preemptions, SLO attainment and p50/p95/p99 queueing and
    completion latency.
    """
    reports = list(reports)
    if not reports:
        raise ValueError("no tenant reports to format")

    def ms(value: Optional[float]) -> str:
        return "-" if value is None else f"{value:,.1f}"

    def pct(value: Optional[float]) -> str:
        return "-" if value is None else f"{value:.1%}"

    lines = [
        f"{'tenant':<14} {'cls':>3} {'sub':>6} {'done':>6} {'rej':>5} {'fail':>5} "
        f"{'pre':>5} {'attain':>7} {'q_p50':>10} {'q_p95':>10} {'q_p99':>10} "
        f"{'c_p50':>10} {'c_p95':>10} {'c_p99':>10}",
        "-" * 118,
    ]
    for r in reports:
        lines.append(
            f"{r.tenant:<14} {r.priority_class:>3} {r.submitted:>6} {r.completed:>6} "
            f"{r.rejected:>5} {r.failed:>5} {r.preemptions:>5} {pct(r.attainment):>7} "
            f"{ms(r.queue_p50):>10} {ms(r.queue_p95):>10} {ms(r.queue_p99):>10} "
            f"{ms(r.completion_p50):>10} {ms(r.completion_p95):>10} {ms(r.completion_p99):>10}"
        )
    return "\n".join(lines)


def format_region_table(reports: Mapping[str, Mapping[str, object]]) -> str:
    """Render per-region reports (see :meth:`RegionalCloud.region_reports`).

    Columns: region, origin/served/completed/failed job counts, migrations
    in/out, and the router's normalised load.
    """
    if not reports:
        raise ValueError("no region reports to format")
    lines = [
        f"{'region':<18} {'origin':>7} {'served':>7} {'done':>6} {'fail':>5} "
        f"{'mig_in':>7} {'mig_out':>8} {'load':>8}",
        "-" * 72,
    ]
    for name, r in reports.items():
        lines.append(
            f"{name:<18} {r['origin_jobs']:>7} {r['served_jobs']:>7} {r['completed']:>6} "
            f"{r['failed']:>5} {r['migrated_in']:>7} {r['migrated_out']:>8} "
            f"{r['normalised_load']:>8.3f}"
        )
    return "\n".join(lines)


def format_markdown_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str] = ()) -> str:
    """Render a list of dict rows as a GitHub-flavoured markdown table."""
    rows = list(rows)
    if not rows:
        raise ValueError("no rows to format")
    columns = list(columns) if columns else list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.5f}"
        return str(value)

    header = "| " + " | ".join(columns) + " |"
    separator = "| " + " | ".join("---" for _ in columns) + " |"
    body = ["| " + " | ".join(fmt(row.get(col, "")) for col in columns) + " |" for row in rows]
    return "\n".join([header, separator] + body)
