"""Connectivity audit: how often does the §5.2 black-box assumption hold?

The allocation workflow assumes every sub-job's qubits form a connected
subgraph of its device's topology (§4) but never searches for one (§5.2).
:func:`audit_connectivity` replays a completed simulation against the real
coupling maps: sub-jobs are mapped to physical qubit regions in start-time
order (connected regions preferred, BFS heuristic) and released at their
finish times, exactly mirroring the simulated schedule.  The result reports,
per device and overall, the fraction of sub-job placements for which a
connected region was actually available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.hardware.regions import QubitRegionTracker

__all__ = ["ConnectivityAudit", "audit_connectivity"]


@dataclass
class ConnectivityAudit:
    """Result of replaying one strategy's schedule against the coupling maps."""

    #: Total sub-job placements replayed.
    total_placements: int
    #: Placements for which a connected free region existed.
    connected_placements: int
    #: Per-device connected fraction.
    per_device: Dict[str, float] = field(default_factory=dict)

    @property
    def connected_fraction(self) -> float:
        """Overall fraction of placements that found a connected region."""
        if self.total_placements == 0:
            return 1.0
        return self.connected_placements / self.total_placements


def audit_connectivity(records: Sequence[object], devices: Sequence[object]) -> ConnectivityAudit:
    """Replay completed job records against the devices' coupling maps.

    Parameters
    ----------
    records:
        Completed :class:`~repro.cloud.records.JobRecord` objects (need
        ``start_time``, ``finish_time``, ``devices`` and ``allocation``).
    devices:
        Device objects or profiles exposing ``name`` and ``coupling``.

    Returns
    -------
    A :class:`ConnectivityAudit` with overall and per-device statistics.
    """
    trackers = {d.name: QubitRegionTracker(d.coupling) for d in devices}

    # Build the event list: (time, order, kind, record). Releases at a given
    # time are processed before allocations at the same time, matching the
    # simulator (qubits are released before the capacity-released signal lets
    # the next job reserve them).
    events: List[tuple] = []
    for record in records:
        events.append((record.start_time, 1, "allocate", record))
        events.append((record.finish_time, 0, "release", record))
    events.sort(key=lambda e: (e[0], e[1]))

    held: Dict[int, List[tuple]] = {}
    total = 0
    connected = 0
    for _time, _order, kind, record in events:
        if kind == "allocate":
            handles = []
            for device_name, amount in zip(record.devices, record.allocation):
                allocation = trackers[device_name].allocate(amount)
                handles.append((device_name, allocation.handle))
                total += 1
                if allocation.connected:
                    connected += 1
            held[record.job_id] = handles
        else:
            for device_name, handle in held.pop(record.job_id, []):
                trackers[device_name].release(handle)

    per_device = {name: tracker.connected_fraction for name, tracker in trackers.items()}
    return ConnectivityAudit(
        total_placements=total, connected_placements=connected, per_device=per_device
    )
