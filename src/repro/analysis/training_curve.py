"""Training-curve generation and summarisation (Fig. 5).

Fig. 5 of the paper plots the PPO agent's average episode reward (left axis)
and entropy loss (right axis) against training timesteps: the reward climbs
and plateaus around 0.70 while the entropy loss rises from roughly −7 towards
−2 as the policy becomes more deterministic.  These helpers condense the raw
per-update curve produced by
:class:`repro.rl.callbacks.TrainingCurveCallback` into the quantities needed
to verify that shape, and :func:`run_training_replicates` regenerates the
curve over several seeds through the experiment engine (so replicates train
concurrently on the process backend).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.engine import ExperimentRunner, derive_seed

__all__ = [
    "summarize_training_curve",
    "downsample_curve",
    "run_training_replicates",
]


def _train_one(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Train one PPO replicate (module-level: picklable worker entry point).

    Returns only the seed and the curve — not the model — so the result
    stays small on the wire; retrain (or use the serial path) when the
    weights themselves are needed.
    """
    from repro.rlenv.train import train_allocation_policy

    seed = payload["seed"]
    kwargs = {k: v for k, v in payload.items() if k != "seed"}
    _model, curve = train_allocation_policy(seed=seed, **kwargs)
    return {"seed": seed, "curve": curve}


def run_training_replicates(
    seeds: Optional[Sequence[int]] = None,
    replicates: int = 4,
    base_seed: int = 0,
    total_timesteps: int = 100_000,
    n_envs: int = 1,
    runner: Optional[ExperimentRunner] = None,
    **train_kwargs: Any,
) -> Dict[int, List[Mapping[str, float]]]:
    """Regenerate the Fig. 5 training curve over several seeds.

    Parameters
    ----------
    seeds:
        Explicit replicate seeds; when ``None``, *replicates* seeds are
        derived deterministically from *base_seed* via
        :func:`repro.engine.derive_seed`.
    n_envs:
        Parallel rollout environments *within* each replicate (vectorized
        PPO); 1 keeps each replicate bit-identical to serial training, while
        e.g. 16 makes every replicate severalfold faster.  Composes with the
        process backend, which parallelises *across* replicates.
    runner:
        Experiment runner to execute on (default serial); with
        ``ExperimentRunner(backend="process")`` replicates train
        concurrently and results are identical to serial.
    train_kwargs:
        Forwarded to :func:`repro.rlenv.train.train_allocation_policy`
        (``n_steps``, ``communication_aware``, …).

    Returns
    -------
    Mapping of seed → per-update training curve, in seed order.
    """
    if seeds is None:
        if replicates <= 0:
            raise ValueError("replicates must be positive")
        seeds = [derive_seed(base_seed, "training", r) for r in range(replicates)]
    payloads = [
        {"seed": int(seed), "total_timesteps": total_timesteps, "n_envs": n_envs, **train_kwargs}
        for seed in seeds
    ]
    runner = runner if runner is not None else ExperimentRunner()
    outcomes = runner.map(_train_one, payloads)
    return {outcome["seed"]: outcome["curve"] for outcome in outcomes}


def summarize_training_curve(curve: Sequence[Mapping[str, float]]) -> Dict[str, float]:
    """Summarise a PPO training curve.

    Parameters
    ----------
    curve:
        Per-update dictionaries with at least ``timesteps``, ``ep_rew_mean``
        and ``entropy_loss`` (as produced by ``TrainingCurveCallback``).

    Returns
    -------
    Dict with the initial/final reward and entropy loss, the reward gain, and
    the plateau reward (mean over the last quarter of training).
    """
    curve = list(curve)
    if not curve:
        raise ValueError("empty training curve")
    rewards = np.array([float(p["ep_rew_mean"]) for p in curve])
    entropy = np.array([float(p["entropy_loss"]) for p in curve])
    timesteps = np.array([float(p["timesteps"]) for p in curve])

    tail = max(1, len(curve) // 4)
    head = max(1, len(curve) // 4)
    return {
        "num_updates": float(len(curve)),
        "total_timesteps": float(timesteps[-1]),
        "initial_reward": float(np.nanmean(rewards[:head])),
        "final_reward": float(np.nanmean(rewards[-tail:])),
        "reward_gain": float(np.nanmean(rewards[-tail:]) - np.nanmean(rewards[:head])),
        "initial_entropy_loss": float(np.nanmean(entropy[:head])),
        "final_entropy_loss": float(np.nanmean(entropy[-tail:])),
        "entropy_loss_change": float(np.nanmean(entropy[-tail:]) - np.nanmean(entropy[:head])),
    }


def downsample_curve(
    curve: Sequence[Mapping[str, float]], max_points: int = 50
) -> List[Mapping[str, float]]:
    """Thin a training curve to at most *max_points* entries (for reports)."""
    curve = list(curve)
    if max_points <= 0:
        raise ValueError("max_points must be positive")
    if len(curve) <= max_points:
        return curve
    indices = np.linspace(0, len(curve) - 1, max_points).round().astype(int)
    return [curve[i] for i in indices]
