"""Training-curve summarisation (Fig. 5).

Fig. 5 of the paper plots the PPO agent's average episode reward (left axis)
and entropy loss (right axis) against training timesteps: the reward climbs
and plateaus around 0.70 while the entropy loss rises from roughly −7 towards
−2 as the policy becomes more deterministic.  These helpers condense the raw
per-update curve produced by
:class:`repro.rl.callbacks.TrainingCurveCallback` into the quantities needed
to verify that shape.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

import numpy as np

__all__ = ["summarize_training_curve", "downsample_curve"]


def summarize_training_curve(curve: Sequence[Mapping[str, float]]) -> Dict[str, float]:
    """Summarise a PPO training curve.

    Parameters
    ----------
    curve:
        Per-update dictionaries with at least ``timesteps``, ``ep_rew_mean``
        and ``entropy_loss`` (as produced by ``TrainingCurveCallback``).

    Returns
    -------
    Dict with the initial/final reward and entropy loss, the reward gain, and
    the plateau reward (mean over the last quarter of training).
    """
    curve = list(curve)
    if not curve:
        raise ValueError("empty training curve")
    rewards = np.array([float(p["ep_rew_mean"]) for p in curve])
    entropy = np.array([float(p["entropy_loss"]) for p in curve])
    timesteps = np.array([float(p["timesteps"]) for p in curve])

    tail = max(1, len(curve) // 4)
    head = max(1, len(curve) // 4)
    return {
        "num_updates": float(len(curve)),
        "total_timesteps": float(timesteps[-1]),
        "initial_reward": float(np.nanmean(rewards[:head])),
        "final_reward": float(np.nanmean(rewards[-tail:])),
        "reward_gain": float(np.nanmean(rewards[-tail:]) - np.nanmean(rewards[:head])),
        "initial_entropy_loss": float(np.nanmean(entropy[:head])),
        "final_entropy_loss": float(np.nanmean(entropy[-tail:])),
        "entropy_loss_change": float(np.nanmean(entropy[-tail:]) - np.nanmean(entropy[:head])),
    }


def downsample_curve(
    curve: Sequence[Mapping[str, float]], max_points: int = 50
) -> List[Mapping[str, float]]:
    """Thin a training curve to at most *max_points* entries (for reports)."""
    curve = list(curve)
    if max_points <= 0:
        raise ValueError("max_points must be positive")
    if len(curve) <= max_points:
        return curve
    indices = np.linspace(0, len(curve) - 1, max_points).round().astype(int)
    return [curve[i] for i in indices]
