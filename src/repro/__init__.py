"""repro — Reproduction of "Adaptive Job Scheduling in Quantum Clouds Using
Reinforcement Learning" (ICPP 2025).

The package is organised bottom-up:

* **Substrates** — :mod:`repro.des` (discrete-event simulation kernel),
  :mod:`repro.gymapi` (Gymnasium-style environment API), :mod:`repro.rl`
  (pure-NumPy PPO), :mod:`repro.hardware` (coupling maps, calibration data,
  device catalogue), :mod:`repro.circuits` (abstract circuits and
  partitioning), :mod:`repro.metrics` (error score, timing, fidelity,
  aggregation).
* **Framework** — :mod:`repro.cloud` (QCloudSimEnv, QCloud, QDevice, Broker,
  JobGenerator, JobRecordsManager), :mod:`repro.scheduling` (the four
  allocation strategies plus baselines), :mod:`repro.dynamics`
  (non-stationary scenarios: calibration drift, outages/maintenance, traffic
  shaping, deterministic trace record/replay) and :mod:`repro.serve` (the
  multi-tenant QoS layer: tenants with priority classes and SLOs, admission
  control, preemptive weighted-fair dispatch, per-tenant SLO accounting).
* **Experiments** — :mod:`repro.engine` (the parallel experiment engine:
  declarative strategy × seed × config grids, serial/process-pool execution,
  content-keyed result caching), :mod:`repro.rlenv` (the allocation MDP and
  PPO training), :mod:`repro.workloads` (named workloads) and
  :mod:`repro.analysis` (case-study runners, tables, histograms, training
  curves — all thin fronts over the engine).

Quick start
-----------
>>> from repro.cloud import QCloudSimEnv, SimulationConfig
>>> env = QCloudSimEnv(SimulationConfig(policy="speed", num_jobs=10))
>>> records = env.run_until_complete()
>>> summary = env.summary()

Multi-strategy / multi-seed experiments run through the engine::

    from repro.engine import ExperimentRunner, ExperimentSpec
    spec = ExperimentSpec(base_config=SimulationConfig(num_jobs=100),
                          strategies=("speed", "fidelity", "fair"),
                          replicates=4)
    result = ExperimentRunner(backend="process").run(spec)
"""

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "analysis",
    "circuits",
    "cloud",
    "des",
    "dynamics",
    "engine",
    "gymapi",
    "hardware",
    "metrics",
    "rl",
    "rlenv",
    "scheduling",
    "serve",
    "workloads",
]
