"""repro — Reproduction of "Adaptive Job Scheduling in Quantum Clouds Using
Reinforcement Learning" (ICPP 2025).

The package is organised bottom-up:

* **Substrates** — :mod:`repro.des` (discrete-event simulation kernel),
  :mod:`repro.gymapi` (Gymnasium-style environment API), :mod:`repro.rl`
  (pure-NumPy PPO), :mod:`repro.hardware` (coupling maps, calibration data,
  device catalogue), :mod:`repro.circuits` (abstract circuits and
  partitioning), :mod:`repro.metrics` (error score, timing, fidelity,
  aggregation).
* **Framework** — :mod:`repro.cloud` (QCloudSimEnv, QCloud, QDevice, Broker,
  JobGenerator, JobRecordsManager) and :mod:`repro.scheduling` (the four
  allocation strategies plus baselines).
* **Experiments** — :mod:`repro.rlenv` (the allocation MDP and PPO training),
  :mod:`repro.workloads` (named workloads) and :mod:`repro.analysis`
  (case-study runners, tables, histograms, training curves).

Quick start
-----------
>>> from repro.cloud import QCloudSimEnv, SimulationConfig
>>> env = QCloudSimEnv(SimulationConfig(policy="speed", num_jobs=10))
>>> records = env.run_until_complete()
>>> summary = env.summary()
"""

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "analysis",
    "circuits",
    "cloud",
    "des",
    "gymapi",
    "hardware",
    "metrics",
    "rl",
    "rlenv",
    "scheduling",
    "workloads",
]
