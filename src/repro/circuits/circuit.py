"""Abstract circuit specification.

The simulator never executes gates; what matters for scheduling and for the
analytic fidelity model are the circuit's resource demands: width (qubits),
depth, shot count and the number of single-/two-qubit gates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

__all__ = ["CircuitSpec"]


@dataclass(frozen=True)
class CircuitSpec:
    """Resource footprint of a quantum circuit.

    Attributes
    ----------
    num_qubits:
        Circuit width ``q``.
    depth:
        Circuit depth ``d`` (number of layers).
    num_shots:
        Number of measurement repetitions ``s``.
    num_two_qubit_gates:
        Total two-qubit gate count ``t2``.
    num_single_qubit_gates:
        Total single-qubit gate count (informational; the fidelity model uses
        depth for single-qubit error compounding, Eq. 4).
    name:
        Optional human-readable label (e.g. ``"ghz_150"``).
    """

    num_qubits: int
    depth: int
    num_shots: int
    num_two_qubit_gates: int
    num_single_qubit_gates: int = 0
    name: str = "circuit"

    def __post_init__(self) -> None:
        if self.num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        if self.depth <= 0:
            raise ValueError("depth must be positive")
        if self.num_shots <= 0:
            raise ValueError("num_shots must be positive")
        if self.num_two_qubit_gates < 0:
            raise ValueError("num_two_qubit_gates must be non-negative")
        if self.num_single_qubit_gates < 0:
            raise ValueError("num_single_qubit_gates must be non-negative")

    # -- derived quantities -------------------------------------------------
    @property
    def two_qubit_gate_density(self) -> float:
        """Two-qubit gates per qubit per layer."""
        return self.num_two_qubit_gates / (self.num_qubits * self.depth)

    @property
    def total_gates(self) -> int:
        """Total gate count (single- + two-qubit)."""
        return self.num_single_qubit_gates + self.num_two_qubit_gates

    def subcircuit(self, num_qubits: int, name: Optional[str] = None) -> "CircuitSpec":
        """Resource footprint of the fragment placed on one device.

        When a job is partitioned, each device receives a fragment of
        ``num_qubits`` qubits; gate counts are apportioned proportionally to
        the fragment's share of the original width, while depth and shots are
        preserved (all fragments execute the same number of layers/shots in
        lock-step, synchronised through classical communication).
        """
        if not 0 < num_qubits <= self.num_qubits:
            raise ValueError(
                f"fragment width {num_qubits} must be in (0, {self.num_qubits}]"
            )
        fraction = num_qubits / self.num_qubits
        return replace(
            self,
            num_qubits=num_qubits,
            num_two_qubit_gates=int(round(self.num_two_qubit_gates * fraction)),
            num_single_qubit_gates=int(round(self.num_single_qubit_gates * fraction)),
            name=name if name is not None else f"{self.name}[{num_qubits}q]",
        )

    def with_shots(self, num_shots: int) -> "CircuitSpec":
        """The same circuit with a different shot count.

        Used by checkpointed resume: a requeued job re-executes only the
        shots its aborted attempts did not complete, so the broker rebuilds
        the circuit with the remaining shot budget (width, depth and gate
        counts unchanged).
        """
        if num_shots <= 0:
            raise ValueError("num_shots must be positive")
        return replace(self, num_shots=num_shots)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view (JSON/CSV-safe)."""
        return {
            "name": self.name,
            "num_qubits": self.num_qubits,
            "depth": self.depth,
            "num_shots": self.num_shots,
            "num_two_qubit_gates": self.num_two_qubit_gates,
            "num_single_qubit_gates": self.num_single_qubit_gates,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CircuitSpec":
        """Rebuild a spec from :meth:`as_dict` output."""
        return cls(
            num_qubits=int(payload["num_qubits"]),
            depth=int(payload["depth"]),
            num_shots=int(payload["num_shots"]),
            num_two_qubit_gates=int(payload["num_two_qubit_gates"]),
            num_single_qubit_gates=int(payload.get("num_single_qubit_gates", 0)),
            name=str(payload.get("name", "circuit")),
        )
