"""Synthetic circuit generators.

The case study (§7) generates 1,000 synthetic jobs whose circuits require
130-250 qubits, have depth 5-20 and 10,000-100,000 shots, with gate sets
abstracted to single-/two-qubit gate counts.  :func:`random_large_circuit_spec`
reproduces exactly that distribution; the other generators provide
domain-flavoured workloads (GHZ state preparation, QAOA, quantum-volume
model circuits) for the example applications.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.circuits.circuit import CircuitSpec

__all__ = [
    "random_circuit_spec",
    "random_large_circuit_spec",
    "ghz_spec",
    "qaoa_spec",
    "quantum_volume_spec",
]

#: Default fraction of (qubit, layer) slots occupied by a two-qubit gate in a
#: random circuit.  Together with the case-study job sizes this places final
#: fidelities in the 0.60-0.70 band reported by the paper.
DEFAULT_TWO_QUBIT_DENSITY = 0.18


def random_circuit_spec(
    rng: np.random.Generator,
    qubit_range: Tuple[int, int] = (130, 250),
    depth_range: Tuple[int, int] = (5, 20),
    shots_range: Tuple[int, int] = (10_000, 100_000),
    two_qubit_density: float = DEFAULT_TWO_QUBIT_DENSITY,
    name: str = "random",
) -> CircuitSpec:
    """Draw a random abstract circuit.

    Parameters
    ----------
    rng:
        Seeded NumPy generator.
    qubit_range, depth_range, shots_range:
        Inclusive ranges for the uniform draws (defaults match §7).
    two_qubit_density:
        Fraction of qubit-layer slots occupied by a two-qubit gate; two
        qubits are consumed per gate, the remainder of the slots hold
        single-qubit gates.
    """
    if qubit_range[0] > qubit_range[1] or qubit_range[0] <= 0:
        raise ValueError(f"invalid qubit_range {qubit_range}")
    if depth_range[0] > depth_range[1] or depth_range[0] <= 0:
        raise ValueError(f"invalid depth_range {depth_range}")
    if shots_range[0] > shots_range[1] or shots_range[0] <= 0:
        raise ValueError(f"invalid shots_range {shots_range}")
    if not 0.0 <= two_qubit_density <= 0.5:
        raise ValueError("two_qubit_density must be in [0, 0.5]")

    num_qubits = int(rng.integers(qubit_range[0], qubit_range[1] + 1))
    depth = int(rng.integers(depth_range[0], depth_range[1] + 1))
    num_shots = int(rng.integers(shots_range[0], shots_range[1] + 1))

    slots = num_qubits * depth
    num_two_qubit = int(round(slots * two_qubit_density))
    num_single = max(slots - 2 * num_two_qubit, 0)
    return CircuitSpec(
        num_qubits=num_qubits,
        depth=depth,
        num_shots=num_shots,
        num_two_qubit_gates=num_two_qubit,
        num_single_qubit_gates=num_single,
        name=name,
    )


def random_large_circuit_spec(
    rng: np.random.Generator,
    min_device_capacity: int = 127,
    total_cloud_capacity: int = 635,
    depth_range: Tuple[int, int] = (5, 20),
    shots_range: Tuple[int, int] = (10_000, 100_000),
    two_qubit_density: float = DEFAULT_TWO_QUBIT_DENSITY,
    name: str = "large",
) -> CircuitSpec:
    """Draw a circuit guaranteed to need multi-device execution.

    Enforces the paper's Eq. (1): the qubit requirement exceeds the largest
    single device but fits in the cloud's total capacity.  The default bounds
    (127 < q < 635) correspond to five 127-qubit devices; the draw is
    restricted to [130, 250] as in the case study, clipped to the valid
    window.
    """
    lower = max(min_device_capacity + 3, 130)
    upper = min(total_cloud_capacity - 1, 250)
    if lower > upper:
        raise ValueError(
            f"infeasible large-circuit window [{lower}, {upper}] for capacities "
            f"{min_device_capacity}/{total_cloud_capacity}"
        )
    return random_circuit_spec(
        rng,
        qubit_range=(lower, upper),
        depth_range=depth_range,
        shots_range=shots_range,
        two_qubit_density=two_qubit_density,
        name=name,
    )


def ghz_spec(num_qubits: int, num_shots: int = 20_000) -> CircuitSpec:
    """A GHZ-state preparation circuit on *num_qubits* qubits.

    One Hadamard followed by a CNOT ladder: depth ≈ num_qubits, ``q - 1``
    two-qubit gates, one single-qubit gate.
    """
    if num_qubits < 2:
        raise ValueError("a GHZ state needs at least 2 qubits")
    return CircuitSpec(
        num_qubits=num_qubits,
        depth=num_qubits,
        num_shots=num_shots,
        num_two_qubit_gates=num_qubits - 1,
        num_single_qubit_gates=1,
        name=f"ghz_{num_qubits}",
    )


def qaoa_spec(
    num_qubits: int,
    num_layers: int = 3,
    edge_density: float = 0.1,
    num_shots: int = 50_000,
    rng: Optional[np.random.Generator] = None,
) -> CircuitSpec:
    """A QAOA MaxCut-style circuit on a random graph.

    Each layer applies one two-qubit ZZ interaction per problem-graph edge and
    one single-qubit mixer rotation per qubit.
    """
    if num_qubits < 2:
        raise ValueError("QAOA needs at least 2 qubits")
    if num_layers <= 0:
        raise ValueError("num_layers must be positive")
    if not 0.0 < edge_density <= 1.0:
        raise ValueError("edge_density must be in (0, 1]")
    max_edges = num_qubits * (num_qubits - 1) // 2
    if rng is None:
        num_edges = int(round(max_edges * edge_density))
    else:
        num_edges = int(rng.binomial(max_edges, edge_density))
    num_edges = max(num_edges, num_qubits - 1)  # keep the problem graph connected-ish
    depth = num_layers * 3 + 1  # cost layer + mixer layer + barrier-ish layer, plus state prep
    return CircuitSpec(
        num_qubits=num_qubits,
        depth=depth,
        num_shots=num_shots,
        num_two_qubit_gates=num_layers * num_edges,
        num_single_qubit_gates=num_layers * num_qubits + num_qubits,
        name=f"qaoa_{num_qubits}q_{num_layers}p",
    )


def quantum_volume_spec(num_qubits: int, num_shots: int = 10_000) -> CircuitSpec:
    """A quantum-volume model circuit (square shape: depth = width).

    Each layer pairs up qubits with random SU(4) blocks, i.e. ``q/2``
    two-qubit gates and ``3q`` single-qubit rotations per layer.
    """
    if num_qubits < 2:
        raise ValueError("quantum volume circuits need at least 2 qubits")
    depth = num_qubits
    per_layer_two_q = num_qubits // 2
    return CircuitSpec(
        num_qubits=num_qubits,
        depth=depth,
        num_shots=num_shots,
        num_two_qubit_gates=depth * per_layer_two_q,
        num_single_qubit_gates=depth * 3 * num_qubits,
        name=f"qv_{num_qubits}",
    )
