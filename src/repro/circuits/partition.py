"""Qubit partitioning across devices.

Given a job needing ``q`` qubits and an ordered list of candidate devices
with available capacities ``C_1..C_k``, these helpers produce allocation
vectors ``a = (a_1, ..., a_k)`` with ``sum(a_i) = q`` and ``0 <= a_i <= C_i``
(§4).  Three flavours are used by the allocation strategies of §5:

* :func:`partition_greedy_fill` — fill devices in the given order until the
  demand is satisfied (speed / error-aware / fair modes),
* :func:`partition_even` — split as evenly as possible over a fixed device
  set (the "balanced" variant),
* :func:`partition_proportional` / :func:`allocation_from_weights` — divide
  proportionally to continuous weights, used by the RL policy (§4.1's
  normalise-round-adjust procedure),
* :func:`allocation_from_weights_batch` — the same normalise-round-adjust
  procedure applied to a whole ``(B, k)`` batch of weight vectors at once
  (used by the vectorized training environment); each row matches the scalar
  :func:`allocation_from_weights` exactly.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

__all__ = [
    "partition_greedy_fill",
    "partition_even",
    "partition_proportional",
    "allocation_from_weights",
    "allocation_from_weights_batch",
    "validate_allocation",
]


def validate_allocation(allocation: Sequence[int], total: int, capacities: Sequence[int]) -> None:
    """Raise ``ValueError`` unless *allocation* is a valid split of *total*.

    Checks the constraints of §4: the parts sum to the demand, no part is
    negative, and no part exceeds its device's capacity.
    """
    allocation = list(allocation)
    capacities = list(capacities)
    if len(allocation) != len(capacities):
        raise ValueError(
            f"allocation length {len(allocation)} != capacities length {len(capacities)}"
        )
    if any(a < 0 for a in allocation):
        raise ValueError(f"allocation has negative entries: {allocation}")
    if sum(allocation) != total:
        raise ValueError(f"allocation {allocation} sums to {sum(allocation)}, expected {total}")
    for a, c in zip(allocation, capacities):
        if a > c:
            raise ValueError(f"allocation entry {a} exceeds capacity {c}")


def partition_greedy_fill(total: int, capacities: Sequence[int]) -> List[int]:
    """Fill devices in order until *total* qubits are placed.

    Returns a list the same length as *capacities*; trailing devices that are
    not needed receive 0.  Raises ``ValueError`` if the combined capacity is
    insufficient.
    """
    if total <= 0:
        raise ValueError("total must be positive")
    capacities = [int(c) for c in capacities]
    if any(c < 0 for c in capacities):
        raise ValueError("capacities must be non-negative")
    if sum(capacities) < total:
        raise ValueError(f"insufficient capacity: need {total}, have {sum(capacities)}")
    remaining = total
    allocation: List[int] = []
    for capacity in capacities:
        take = min(capacity, remaining)
        allocation.append(take)
        remaining -= take
    assert remaining == 0
    validate_allocation(allocation, total, capacities)
    return allocation


def partition_even(total: int, capacities: Sequence[int]) -> List[int]:
    """Split *total* as evenly as possible over all given devices.

    Devices whose capacity is smaller than the even share are filled to
    capacity and the excess is redistributed over the remaining devices.
    """
    if total <= 0:
        raise ValueError("total must be positive")
    capacities = [int(c) for c in capacities]
    if sum(capacities) < total:
        raise ValueError(f"insufficient capacity: need {total}, have {sum(capacities)}")
    n = len(capacities)
    allocation = [0] * n
    remaining = total
    active = [i for i in range(n) if capacities[i] > 0]
    while remaining > 0 and active:
        share = max(1, remaining // len(active))
        next_active: List[int] = []
        for i in active:
            if remaining <= 0:
                break
            take = min(share, capacities[i] - allocation[i], remaining)
            allocation[i] += take
            remaining -= take
            if allocation[i] < capacities[i]:
                next_active.append(i)
        # If nothing could be placed this round (all full) the capacity check
        # above guarantees remaining == 0.
        active = next_active if next_active else [i for i in range(n) if allocation[i] < capacities[i]]
        if not active and remaining > 0:  # pragma: no cover - guarded by capacity check
            raise RuntimeError("even partition failed to place all qubits")
    validate_allocation(allocation, total, capacities)
    return allocation


def partition_proportional(total: int, weights: Sequence[float], capacities: Sequence[int]) -> List[int]:
    """Split proportionally to non-negative *weights*, respecting capacities.

    This is the deterministic core of the RL allocation (§4.1): weights are
    normalised, multiplied by the demand, rounded, and the rounding error is
    corrected by adjusting the devices with the largest remaining headroom
    (or largest allocations when shrinking).
    """
    if total <= 0:
        raise ValueError("total must be positive")
    weights_arr = np.asarray(weights, dtype=np.float64)
    capacities_list = [int(c) for c in capacities]
    if weights_arr.shape[0] != len(capacities_list):
        raise ValueError("weights and capacities must have the same length")
    if np.any(weights_arr < 0):
        raise ValueError("weights must be non-negative")
    if sum(capacities_list) < total:
        raise ValueError(f"insufficient capacity: need {total}, have {sum(capacities_list)}")

    weight_sum = float(weights_arr.sum())
    if weight_sum <= 0:
        # Degenerate weights: fall back to an even split.
        return partition_even(total, capacities_list)

    fractions = weights_arr / weight_sum
    raw = fractions * total
    allocation = np.minimum(np.floor(raw), capacities_list).astype(int)

    # Distribute the remainder one qubit at a time, visiting devices in order
    # of largest fractional part (ties broken by headroom), never exceeding
    # capacity.  One-at-a-time keeps the final allocation as close to the
    # ideal proportional split as the integer/capacity constraints allow.
    remaining = total - int(allocation.sum())
    if remaining > 0:
        frac_part = raw - np.floor(raw)
        order = np.argsort(-(frac_part + 1e-9 * np.asarray(capacities_list)))
        max_rounds = (remaining + 10) * len(order)
        idx = 0
        while remaining > 0:
            i = order[idx % len(order)]
            if capacities_list[i] - allocation[i] > 0:
                allocation[i] += 1
                remaining -= 1
            idx += 1
            if idx > max_rounds and remaining > 0:  # pragma: no cover - capacity-checked
                raise RuntimeError("proportional partition failed to converge")
    elif remaining < 0:  # pragma: no cover - floor() can only under-allocate
        raise RuntimeError("proportional partition over-allocated")

    result = allocation.tolist()
    validate_allocation(result, total, capacities_list)
    return result


def allocation_from_weights(
    weights: Sequence[float],
    total: int,
    capacities: Sequence[int],
    epsilon: float = 1e-8,
) -> List[int]:
    """The paper's §4.1 action post-processing.

    The RL agent outputs unnormalised allocation weights ``a_i``; the final
    allocation is ``a_i / (sum_j a_j + eps) * q`` followed by rounding and
    adjustment so the parts sum to ``q`` and respect device capacities.
    Negative weights (possible for an unbounded Gaussian policy) are clipped
    to zero before normalisation.
    """
    weights_arr = np.clip(np.asarray(weights, dtype=np.float64), 0.0, None) + epsilon
    return partition_proportional(total, weights_arr, capacities)


def allocation_from_weights_batch(
    weights: np.ndarray,
    totals: Union[Sequence[int], np.ndarray],
    capacities: Union[Sequence[int], np.ndarray],
    epsilon: float = 1e-8,
) -> np.ndarray:
    """Batched §4.1 action post-processing.

    Applies the normalise-round-adjust procedure of
    :func:`allocation_from_weights` to every row of a weight matrix at once:
    the clip/normalise/scale/floor steps run as single array operations over
    the whole batch, and only rows whose floored allocation under-shoots the
    demand fall back to the (tiny) per-row remainder-distribution loop.  Row
    ``b`` of the result is identical to
    ``allocation_from_weights(weights[b], totals[b], capacities[b])``.

    Parameters
    ----------
    weights:
        Array of shape ``(B, k)`` — one unnormalised weight vector per job.
    totals:
        Array of shape ``(B,)`` — the qubit demand of each job (all positive).
    capacities:
        Per-device free capacities, shape ``(B, k)`` or ``(k,)`` (shared by
        all rows).
    epsilon:
        Stabiliser added to the clipped weights before normalisation.

    Returns
    -------
    Integer allocation matrix of shape ``(B, k)`` with each row summing to its
    demand and respecting its capacities.
    """
    weights_arr = np.clip(np.asarray(weights, dtype=np.float64), 0.0, None) + epsilon
    if weights_arr.ndim != 2:
        raise ValueError(f"weights must be 2-D (B, k), got shape {weights_arr.shape}")
    batch, k = weights_arr.shape
    totals_arr = np.asarray(totals, dtype=np.int64).reshape(-1)
    if totals_arr.shape[0] != batch:
        raise ValueError(f"got {totals_arr.shape[0]} totals for a batch of {batch}")
    caps = np.asarray(capacities, dtype=np.int64)
    if caps.ndim == 1:
        caps = np.broadcast_to(caps, (batch, k))
    if caps.shape != (batch, k):
        raise ValueError(f"capacities shape {caps.shape} does not match weights {weights_arr.shape}")
    if np.any(totals_arr <= 0):
        raise ValueError("totals must be positive")
    if np.any(caps < 0):
        raise ValueError("capacities must be non-negative")
    short = caps.sum(axis=1) < totals_arr
    if np.any(short):
        b = int(np.flatnonzero(short)[0])
        raise ValueError(
            f"insufficient capacity in row {b}: need {totals_arr[b]}, have {caps[b].sum()}"
        )

    raw = weights_arr / weights_arr.sum(axis=1, keepdims=True) * totals_arr[:, None]
    allocation = np.minimum(np.floor(raw), caps).astype(np.int64)
    remaining = totals_arr - allocation.sum(axis=1)
    needs_fixup = np.flatnonzero(remaining > 0)
    if needs_fixup.size:
        # Same remainder rule as the scalar path: visit devices in order of
        # largest fractional part (ties broken by headroom), one qubit at a
        # time, skipping devices already at capacity.
        frac_part = raw - np.floor(raw)
        order = np.argsort(-(frac_part + 1e-9 * caps), axis=1)
        for b in needs_fixup:
            rem = int(remaining[b])
            row, caps_row, order_row = allocation[b], caps[b], order[b]
            idx = 0
            while rem > 0:
                i = order_row[idx % k]
                if caps_row[i] - row[i] > 0:
                    row[i] += 1
                    rem -= 1
                idx += 1
    return allocation
