"""Abstract quantum-circuit specifications, generators and partitioning.

The paper abstracts each job's circuit to its resource footprint: number of
qubits, depth, shots and single-/two-qubit gate counts (§7: "the gate sets
used in these jobs are abstracted to the number of single-qubit and two-qubit
gates, without specifying explicit gate types").  This subpackage provides:

* :class:`~repro.circuits.circuit.CircuitSpec` — the abstract circuit,
* :mod:`~repro.circuits.generators` — synthetic circuit generators (random
  large circuits matching the case-study distribution, GHZ, QAOA-like and
  quantum-volume shapes),
* :mod:`~repro.circuits.partition` — qubit partitioning across devices
  (even, capacity-greedy, proportional and weight-normalised splits used by
  the allocation strategies of §5).
"""

from repro.circuits.circuit import CircuitSpec
from repro.circuits.generators import (
    ghz_spec,
    qaoa_spec,
    quantum_volume_spec,
    random_circuit_spec,
    random_large_circuit_spec,
)
from repro.circuits.partition import (
    allocation_from_weights,
    allocation_from_weights_batch,
    partition_even,
    partition_greedy_fill,
    partition_proportional,
    validate_allocation,
)

__all__ = [
    "CircuitSpec",
    "allocation_from_weights",
    "allocation_from_weights_batch",
    "ghz_spec",
    "partition_even",
    "partition_greedy_fill",
    "partition_proportional",
    "qaoa_spec",
    "quantum_volume_spec",
    "random_circuit_spec",
    "random_large_circuit_spec",
    "validate_allocation",
]
