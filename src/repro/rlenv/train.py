"""PPO training of the allocation agent (paper §6.6).

The paper trains the agent for 100,000 timesteps with an MLP policy and
default PPO hyperparameters on a fleet of five IBM devices initialised from
calibration data; the reward is the mean circuit fidelity of the resulting
allocation.  :func:`train_allocation_policy` reproduces that setup and also
returns the training curve (mean episode reward and entropy loss versus
timesteps) needed to regenerate Fig. 5.

Training is serial by default (``n_envs=1``), which keeps seeded runs
bit-identical to the original single-environment implementation.  With
``n_envs > 1`` rollouts are collected from a
:class:`~repro.rlenv.batched_env.BatchedQCloudEnv` — ``n_envs`` jobs sampled
and scored per vector step — which cuts wall-clock training time severalfold
at identical hyperparameters (the gradient updates see the same
``n_steps``-transition rollouts, just collected in batches).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.gymapi.vector import VecEnv
from repro.hardware.backends import DeviceProfile, build_default_fleet
from repro.rl.callbacks import TrainingCurveCallback
from repro.rl.ppo import PPO
from repro.rlenv.batched_env import BatchedQCloudEnv
from repro.rlenv.qcloud_env import QCloudGymEnv

__all__ = ["train_allocation_policy", "evaluate_policy"]


def train_allocation_policy(
    total_timesteps: int = 100_000,
    devices: Optional[Sequence[DeviceProfile]] = None,
    seed: int = 0,
    n_steps: int = 2048,
    batch_size: int = 64,
    n_epochs: int = 10,
    learning_rate: float = 3e-4,
    ent_coef: float = 0.0,
    communication_aware: bool = False,
    n_envs: int = 1,
    env_kwargs: Optional[Dict[str, Any]] = None,
    verbose: int = 0,
) -> Tuple[PPO, List[Dict[str, float]]]:
    """Train the PPO allocation agent.

    Parameters
    ----------
    total_timesteps:
        Environment steps to train for (the paper uses 100,000; the agent
        stabilises after roughly 40,000-50,000).
    devices:
        Device profiles (defaults to the paper's five-device fleet).
    seed:
        Seed controlling environment sampling, policy initialisation and
        mini-batch shuffling.
    communication_aware:
        Fold the communication penalty into the reward (paper future work).
    n_envs:
        Number of parallel environments used for rollout collection.  The
        default 1 trains on the scalar :class:`QCloudGymEnv` and is
        bit-identical to the historical serial implementation; larger values
        train on a :class:`~repro.rlenv.batched_env.BatchedQCloudEnv` (same
        MDP, vectorized dynamics, its own RNG stream) and must divide
        ``n_steps``.
    env_kwargs:
        Extra keyword arguments forwarded to the environment constructor.

    Returns
    -------
    (model, curve):
        The trained PPO model and the per-update training curve
        (list of dicts with ``timesteps``, ``ep_rew_mean``, ``entropy_loss``,
        ``policy_loss``, ``value_loss``, ``approx_kl``).
    """
    if n_envs < 1:
        raise ValueError(f"n_envs must be >= 1, got {n_envs}")
    if devices is None:
        devices = build_default_fleet()
    env_kwargs = dict(env_kwargs or {})
    env_kwargs.setdefault("communication_aware", communication_aware)
    env: Union[QCloudGymEnv, VecEnv]
    if n_envs == 1:
        env = QCloudGymEnv(devices=devices, seed=seed, **env_kwargs)
    else:
        env = BatchedQCloudEnv(n_envs=n_envs, devices=devices, seed=seed, **env_kwargs)

    model = PPO(
        "MlpPolicy",
        env,
        learning_rate=learning_rate,
        n_steps=n_steps,
        batch_size=batch_size,
        n_epochs=n_epochs,
        ent_coef=ent_coef,
        seed=seed,
        verbose=verbose,
    )
    curve_callback = TrainingCurveCallback()
    model.learn(total_timesteps=total_timesteps, callback=curve_callback)
    return model, curve_callback.curve


def evaluate_policy(
    model: Any,
    env: QCloudGymEnv,
    n_episodes: int = 100,
    deterministic: bool = True,
    seed: Optional[int] = None,
) -> Dict[str, float]:
    """Evaluate a trained allocation model on fresh random jobs.

    Returns mean/std episode reward (i.e. mean device fidelity) and the mean
    number of devices used per allocation.
    """
    if n_episodes <= 0:
        raise ValueError("n_episodes must be positive")
    rewards: List[float] = []
    devices_used: List[int] = []
    obs, _ = env.reset(seed=seed)
    for _ in range(n_episodes):
        action, _ = model.predict(obs, deterministic=deterministic)
        obs, reward, terminated, truncated, info = env.step(action)
        rewards.append(float(reward))
        devices_used.append(int(info["num_devices"]))
        if terminated or truncated:
            obs, _ = env.reset()
    return {
        "mean_reward": float(np.mean(rewards)),
        "std_reward": float(np.std(rewards)),
        "mean_devices_used": float(np.mean(devices_used)),
        "n_episodes": float(n_episodes),
    }
