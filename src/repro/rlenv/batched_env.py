"""BatchedQCloudEnv — ``B`` independent allocation MDPs stepped as arrays.

The paper's environment (§4.1) has single-step episodes: every ``step``
scores one allocation and every ``reset`` samples a fresh job.  That
structure makes the environment trivially vectorizable — there is no
cross-step state to carry per sub-environment — so instead of wrapping ``B``
scalar :class:`~repro.rlenv.qcloud_env.QCloudGymEnv` copies in a
:class:`~repro.gymapi.vector.SyncVecEnv`, this native
:class:`~repro.gymapi.vector.VecEnv` batches the dynamics themselves:

* job sampling draws all ``B`` demands/depths in single ``Generator`` calls
  and rejection-samples the fleet free levels for the whole batch at once,
* observation assembly writes one ``(B, 1 + 3k)`` array (static error-score /
  CLOPS columns are pre-filled once),
* rewards come from the array-form fidelity kernels of
  :mod:`repro.metrics.fidelity` applied to a ``(B, k)`` allocation matrix
  produced by :func:`repro.circuits.partition.allocation_from_weights_batch`.

Per-row dynamics are equivalent to the scalar environment: given the same job
(qubits, depth, two-qubit gates, free levels) and the same action, the
allocation matches :class:`QCloudGymEnv` exactly and the reward matches to
within one ulp (NumPy's vectorized ``pow`` may differ from libm's scalar
``pow`` in the last bit).  The batched
environment draws from its own RNG stream, so *sampled* jobs differ from a
scalar environment seeded identically — use the scalar env (``n_envs=1``)
when bit-identical training curves against the serial baseline are required.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.partition import allocation_from_weights_batch
from repro.gymapi.seeding import np_random
from repro.gymapi.spaces import Box
from repro.gymapi.vector import SeedLike, VecEnv
from repro.hardware.backends import DeviceProfile
from repro.metrics.fidelity import (
    communication_penalty,
    readout_fidelity,
    single_qubit_fidelity,
    two_qubit_fidelity,
)
from repro.rlenv.fleet import prepare_fleet
from repro.scheduling.rl_policy import (
    DEFAULT_MAX_DEVICES,
    DEFAULT_MAX_QUBITS,
    DEVICE_LEVEL_NORM,
)

__all__ = ["BatchedQCloudEnv"]


class BatchedQCloudEnv(VecEnv):
    """Vectorized single-step allocation environment over a device fleet.

    Parameters mirror :class:`~repro.rlenv.qcloud_env.QCloudGymEnv` plus
    ``n_envs``; all ``B`` sub-environments share the fleet and one RNG stream.

    Parameters
    ----------
    n_envs:
        Number of parallel sub-environments ``B``.
    devices, qubit_range, depth_range, two_qubit_density,
    randomize_utilization, include_two_qubit_errors, communication_aware,
    max_qubits, max_devices:
        As in :class:`QCloudGymEnv`.
    seed:
        Seeds the shared RNG and samples the first batch of jobs.
    """

    metadata = {"render_modes": []}

    def __init__(
        self,
        n_envs: int,
        devices: Optional[Sequence[DeviceProfile]] = None,
        qubit_range: Tuple[int, int] = (130, 250),
        depth_range: Tuple[int, int] = (5, 20),
        two_qubit_density: float = 0.30,
        randomize_utilization: bool = True,
        include_two_qubit_errors: bool = True,
        communication_aware: bool = False,
        max_qubits: int = DEFAULT_MAX_QUBITS,
        max_devices: int = DEFAULT_MAX_DEVICES,
        seed: Optional[int] = None,
    ) -> None:
        if n_envs < 1:
            raise ValueError(f"n_envs must be >= 1, got {n_envs}")
        self.num_envs = int(n_envs)
        fleet = prepare_fleet(devices, qubit_range, max_devices)
        self.devices: List[DeviceProfile] = list(fleet.devices)

        self.qubit_range = qubit_range
        self.depth_range = depth_range
        self.two_qubit_density = float(two_qubit_density)
        self.randomize_utilization = bool(randomize_utilization)
        self.include_two_qubit_errors = bool(include_two_qubit_errors)
        self.communication_aware = bool(communication_aware)
        self.max_qubits = int(max_qubits)
        self.max_devices = int(max_devices)

        self._capacities = fleet.capacities
        self._error_scores = fleet.error_scores
        self._eps_1q = np.array([d.avg_single_qubit_error for d in self.devices], dtype=np.float64)
        self._eps_2q = np.array([d.avg_two_qubit_error for d in self.devices], dtype=np.float64)
        self._eps_ro = np.array([d.avg_readout_error for d in self.devices], dtype=np.float64)

        obs_dim = 1 + 3 * self.max_devices
        self.observation_space = Box(low=0.0, high=np.inf, shape=(obs_dim,), dtype=np.float64)
        self.action_space = Box(low=0.0, high=1.0, shape=(self.max_devices,), dtype=np.float64)

        # Static observation columns (error score, CLOPS), broadcast over B.
        self._obs_template = np.tile(fleet.obs_template, (self.num_envs, 1))
        self._free_slots = fleet.free_slots

        self._job_qubits = np.zeros(self.num_envs, dtype=np.int64)
        self._job_depths = np.zeros(self.num_envs, dtype=np.int64)
        self._job_two_qubit_gates = np.zeros(self.num_envs, dtype=np.int64)
        self._free_levels = np.tile(self._capacities, (self.num_envs, 1))
        self._last_observations: Optional[np.ndarray] = None

        if seed is not None:
            self.reset(seed=seed)

    # -- episode mechanics -----------------------------------------------------
    def _sample_jobs(self) -> None:
        """Sample a fresh job for every sub-environment with array draws."""
        rng = self.np_random
        batch = self.num_envs
        self._job_qubits = rng.integers(
            self.qubit_range[0], self.qubit_range[1] + 1, size=batch, dtype=np.int64
        )
        self._job_depths = rng.integers(
            self.depth_range[0], self.depth_range[1] + 1, size=batch, dtype=np.int64
        )
        slots = self._job_qubits * self._job_depths
        self._job_two_qubit_gates = np.rint(slots * self.two_qubit_density).astype(np.int64)

        capacities = self._capacities
        num_devices = capacities.shape[0]
        if not self.randomize_utilization:
            self._free_levels = np.tile(capacities, (batch, 1))
            return
        # Batched rejection sampling: draw one candidate row per environment,
        # then redraw only the rows whose free capacity cannot fit their job
        # (the same per-row retry rule as the scalar environment, capped at
        # 100 attempts with a full-capacity fallback).
        free = np.floor(
            capacities * rng.uniform(0.4, 1.0, size=(batch, num_devices))
        ).astype(np.int64)
        infeasible = free.sum(axis=1) < self._job_qubits
        attempts = 1
        while np.any(infeasible) and attempts < 100:
            num_bad = int(infeasible.sum())
            free[infeasible] = np.floor(
                capacities * rng.uniform(0.4, 1.0, size=(num_bad, num_devices))
            ).astype(np.int64)
            infeasible = free.sum(axis=1) < self._job_qubits
            attempts += 1
        free[infeasible] = capacities
        self._free_levels = free

    def _observations(self) -> np.ndarray:
        obs = self._obs_template.copy()
        obs[:, 0] = self._job_qubits / float(self.max_qubits)
        obs[:, self._free_slots] = self._free_levels / DEVICE_LEVEL_NORM
        return obs

    def _reset_infos(self) -> List[Dict[str, Any]]:
        return [
            {
                "job_qubits": int(self._job_qubits[i]),
                "job_depth": int(self._job_depths[i]),
                "free_levels": self._free_levels[i].copy(),
            }
            for i in range(self.num_envs)
        ]

    def reset(
        self, *, seed: SeedLike = None, options: Optional[Dict[str, Any]] = None
    ) -> Tuple[np.ndarray, List[Dict[str, Any]]]:
        if seed is not None:
            if not isinstance(seed, (int, np.integer)):
                raise TypeError("BatchedQCloudEnv uses one shared RNG; seed must be an int")
            self._np_random, self._np_random_seed = np_random(int(seed))
        self._sample_jobs()
        self._last_observations = self._observations()
        return self._last_observations, self._reset_infos()

    def step(
        self, actions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, List[Dict[str, Any]]]:
        if np.any(self._job_qubits <= 0):
            raise RuntimeError("step() called before reset()")
        num_devices = len(self.devices)
        weights = np.asarray(actions, dtype=np.float64).reshape(self.num_envs, -1)[:, :num_devices]
        allocations = allocation_from_weights_batch(weights, self._job_qubits, self._free_levels)

        used = allocations > 0
        devices_used = used.sum(axis=1)

        # Per-device fidelity F_i = F_1Q * F_2Q * F_ro over the (B, k)
        # allocation matrix (Eqs. 4-7), multiplied in the scalar env's order
        # so per-row results match QCloudGymEnv to within rounding (the only
        # residual difference is vectorized-vs-scalar pow, <= 1 ulp).
        f_1q = single_qubit_fidelity(self._eps_1q[None, :], self._job_depths[:, None])
        f_ro = readout_fidelity(
            self._eps_ro[None, :], self._job_qubits[:, None], devices_used[:, None]
        )
        if self.include_two_qubit_errors:
            fractions = allocations / self._job_qubits[:, None]
            fragment_t2 = self._job_two_qubit_gates[:, None] * fractions
            f_2q = two_qubit_fidelity(self._eps_2q[None, :], fragment_t2)
        else:
            f_2q = 1.0
        fidelities = f_1q * f_2q * f_ro

        rewards = np.where(used, fidelities, 0.0).sum(axis=1) / devices_used
        if self.communication_aware:
            rewards = rewards * communication_penalty(devices_used)

        infos: List[Dict[str, Any]] = [
            {
                "allocation": allocations[i].tolist(),
                "num_devices": int(devices_used[i]),
                "device_fidelities": fidelities[i, used[i]].tolist(),
                "job_qubits": int(self._job_qubits[i]),
            }
            for i in range(self.num_envs)
        ]

        # Single-step episodes: every sub-environment terminates now and
        # auto-resets, so the returned observations belong to the next batch
        # of jobs; the terminal observations (cached from the previous
        # reset/step, the jobs just scored) land in the infos.
        final_observations = self._last_observations
        assert final_observations is not None
        self._sample_jobs()
        observations = self._observations()
        self._last_observations = observations
        for i, info in enumerate(infos):
            info["final_observation"] = final_observations[i]
            info["final_info"] = {
                k: info[k] for k in ("allocation", "num_devices", "device_fidelities", "job_qubits")
            }

        terminated = np.ones(self.num_envs, dtype=bool)
        truncated = np.zeros(self.num_envs, dtype=bool)
        return observations, rewards, terminated, truncated, infos

    def render(self) -> str:  # pragma: no cover - diagnostic helper
        return (
            f"BatchedQCloudEnv(n_envs={self.num_envs} "
            f"jobs={self._job_qubits.tolist()})"
        )
