"""QCloudGymEnv — the allocation MDP of the paper (§4.1).

Each episode is a *single* allocation decision:

* **State** (dimension ``1 + 3k`` = 16 for ``k = 5`` devices): the job's
  normalised qubit demand, then for each device its normalised free-qubit
  level, its error score and its normalised CLOPS.
* **Action**: a continuous vector of ``k`` unnormalised allocation weights.
  The environment normalises them, scales by the demand, rounds and adjusts
  so the parts sum to the demand and respect per-device free capacity
  (:func:`repro.circuits.partition.allocation_from_weights`).
* **Reward**: the mean per-device fidelity ``(1/k') Σ F_i`` over the ``k'``
  devices actually used, where each ``F_i`` combines gate, readout and
  (optionally) two-qubit errors (Eqs. 4-7).  Optionally the inter-device
  communication penalty (Eq. 8) can be folded into the reward
  (``communication_aware=True``), which the paper lists as future work.

The episode terminates after the single step.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.partition import allocation_from_weights
from repro.gymapi.core import Env
from repro.gymapi.spaces import Box
from repro.hardware.backends import DeviceProfile
from repro.metrics.fidelity import (
    communication_penalty,
    readout_fidelity,
    single_qubit_fidelity,
    two_qubit_fidelity,
)
from repro.rlenv.fleet import prepare_fleet
from repro.scheduling.rl_policy import (
    DEFAULT_MAX_DEVICES,
    DEFAULT_MAX_QUBITS,
    DEVICE_LEVEL_NORM,
)

__all__ = ["QCloudGymEnv"]


class QCloudGymEnv(Env):
    """Single-step allocation environment over a fleet of device profiles.

    Parameters
    ----------
    devices:
        Device profiles (defaults to the paper's five-device fleet).
    qubit_range, depth_range:
        Ranges for the randomised training jobs.
    two_qubit_density:
        Two-qubit gate density of the training jobs (matches the synthetic
        workload generator).
    randomize_utilization:
        If ``True`` (default) device free levels are randomised on every
        reset so the agent sees partially busy fleets; if ``False`` all
        devices start fully free.
    include_two_qubit_errors:
        The paper notes two-qubit error can be "optionally suppressed" in the
        reward; keep it on by default.
    communication_aware:
        Fold the φ^(k-1) communication penalty into the reward (future-work
        reward shaping; off by default to match the paper).
    max_qubits:
        Normalisation constant for the job-demand feature.
    """

    metadata = {"render_modes": []}

    def __init__(
        self,
        devices: Optional[Sequence[DeviceProfile]] = None,
        qubit_range: Tuple[int, int] = (130, 250),
        depth_range: Tuple[int, int] = (5, 20),
        two_qubit_density: float = 0.30,
        randomize_utilization: bool = True,
        include_two_qubit_errors: bool = True,
        communication_aware: bool = False,
        max_qubits: int = DEFAULT_MAX_QUBITS,
        max_devices: int = DEFAULT_MAX_DEVICES,
        seed: Optional[int] = None,
    ) -> None:
        fleet = prepare_fleet(devices, qubit_range, max_devices)
        self.devices: List[DeviceProfile] = list(fleet.devices)

        self.qubit_range = qubit_range
        self.depth_range = depth_range
        self.two_qubit_density = float(two_qubit_density)
        self.randomize_utilization = bool(randomize_utilization)
        self.include_two_qubit_errors = bool(include_two_qubit_errors)
        self.communication_aware = bool(communication_aware)
        self.max_qubits = int(max_qubits)
        self.max_devices = int(max_devices)

        self._error_scores = fleet.error_scores
        self._capacities = fleet.capacities
        self._obs_template = fleet.obs_template
        self._free_slots = fleet.free_slots

        obs_dim = 1 + 3 * self.max_devices
        self.observation_space = Box(low=0.0, high=np.inf, shape=(obs_dim,), dtype=np.float64)
        self.action_space = Box(low=0.0, high=1.0, shape=(self.max_devices,), dtype=np.float64)

        self._job_qubits: int = 0
        self._job_depth: int = 0
        self._job_two_qubit_gates: int = 0
        self._free_levels: np.ndarray = self._capacities.copy()

        if seed is not None:
            self.reset(seed=seed)

    # -- episode mechanics -----------------------------------------------------
    def _sample_job(self) -> None:
        rng = self.np_random
        self._job_qubits = int(rng.integers(self.qubit_range[0], self.qubit_range[1] + 1))
        self._job_depth = int(rng.integers(self.depth_range[0], self.depth_range[1] + 1))
        slots = self._job_qubits * self._job_depth
        self._job_two_qubit_gates = int(round(slots * self.two_qubit_density))

        capacities = self._capacities
        if self.randomize_utilization:
            # Rejection-sample free levels until the job fits the remaining
            # capacity.  The first candidate is drawn on its own so the RNG
            # stream matches the historical one-row-per-attempt loop whenever
            # the first draw is feasible (always, for the default fleet:
            # sum(floor(0.4 * capacity)) >= qubit_range[1]); the 99 fallback
            # candidates are then drawn in a single vectorized call.
            num_devices = len(self.devices)
            free = np.floor(capacities * rng.uniform(0.4, 1.0, size=num_devices)).astype(np.int64)
            if free.sum() >= self._job_qubits:
                self._free_levels = free
                return
            fractions = rng.uniform(0.4, 1.0, size=(99, num_devices))
            candidates = np.floor(capacities * fractions).astype(np.int64)
            feasible = np.flatnonzero(candidates.sum(axis=1) >= self._job_qubits)
            if feasible.size:
                self._free_levels = candidates[feasible[0]]
                return
        self._free_levels = capacities.copy()

    def _observation(self) -> np.ndarray:
        # Equivalent to build_observation() over per-device state tuples, with
        # the static error-score/CLOPS columns pre-filled in __init__.
        obs = self._obs_template.copy()
        obs[0] = self._job_qubits / float(self.max_qubits)
        obs[self._free_slots] = self._free_levels / DEVICE_LEVEL_NORM
        return obs

    def reset(
        self, *, seed: Optional[int] = None, options: Optional[Dict[str, Any]] = None
    ) -> Tuple[np.ndarray, Dict[str, Any]]:
        super().reset(seed=seed)
        self._sample_job()
        info = {
            "job_qubits": self._job_qubits,
            "job_depth": self._job_depth,
            "free_levels": self._free_levels.copy(),
        }
        return self._observation(), info

    def _device_fidelity(self, device_index: int, qubits: int, num_devices: int) -> float:
        """Per-device fidelity F_i for a fragment of *qubits* qubits (Eqs. 4-7)."""
        profile = self.devices[device_index]
        fraction = qubits / self._job_qubits
        fragment_t2 = self._job_two_qubit_gates * fraction
        f_1q = single_qubit_fidelity(profile.avg_single_qubit_error, self._job_depth)
        f_ro = readout_fidelity(profile.avg_readout_error, self._job_qubits, num_devices)
        if self.include_two_qubit_errors:
            f_2q = two_qubit_fidelity(profile.avg_two_qubit_error, fragment_t2)
        else:
            f_2q = 1.0
        return f_1q * f_2q * f_ro

    def step(
        self, action: np.ndarray
    ) -> Tuple[np.ndarray, float, bool, bool, Dict[str, Any]]:
        if self._job_qubits <= 0:
            raise RuntimeError("step() called before reset()")
        weights = np.asarray(action, dtype=np.float64).reshape(-1)[: len(self.devices)]
        allocation = allocation_from_weights(
            weights, self._job_qubits, self._free_levels[: len(self.devices)].tolist()
        )
        used = [(i, a) for i, a in enumerate(allocation) if a > 0]
        num_devices = len(used)

        fidelities = [self._device_fidelity(i, a, num_devices) for i, a in used]
        reward = float(np.mean(fidelities))
        if self.communication_aware:
            reward *= communication_penalty(num_devices)

        info = {
            "allocation": allocation,
            "num_devices": num_devices,
            "device_fidelities": fidelities,
            "job_qubits": self._job_qubits,
        }
        observation = self._observation()
        return observation, reward, True, False, info

    def render(self) -> str:  # pragma: no cover - diagnostic helper
        return (
            f"QCloudGymEnv(job={self._job_qubits}q depth={self._job_depth} "
            f"free={self._free_levels.tolist()})"
        )
