"""Shared fleet preparation for the scalar and batched allocation MDPs.

:class:`~repro.rlenv.qcloud_env.QCloudGymEnv` and
:class:`~repro.rlenv.batched_env.BatchedQCloudEnv` implement the same MDP
over the same fleet; this module holds the single source of truth for the
fleet validation rules and the static parts of the §4.1 observation layout so
the two environments cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.backends import DeviceProfile, build_default_fleet
from repro.metrics.error_score import error_score
from repro.scheduling.rl_policy import CLOPS_NORM

__all__ = ["FleetSpec", "prepare_fleet"]


@dataclass(frozen=True)
class FleetSpec:
    """Validated fleet constants shared by the training environments.

    Attributes
    ----------
    devices:
        The device profiles, in fleet order.
    capacities:
        Per-device qubit capacities, shape ``(k,)`` int64.
    error_scores:
        Per-device calibration error scores, shape ``(k,)`` float64.
    obs_template:
        A ``(1 + 3 * max_devices,)`` observation vector with the static
        error-score and CLOPS columns pre-filled (demand and free-level slots
        are zero, to be rewritten per episode).
    free_slots:
        Indices of the per-device free-level slots in the observation.
    """

    devices: Tuple[DeviceProfile, ...]
    capacities: np.ndarray
    error_scores: np.ndarray
    obs_template: np.ndarray
    free_slots: np.ndarray


def prepare_fleet(
    devices: Optional[Sequence[DeviceProfile]],
    qubit_range: Tuple[int, int],
    max_devices: int,
) -> FleetSpec:
    """Validate the fleet/job-range combination and precompute constants.

    Raises ``ValueError`` under the same conditions as the historical
    ``QCloudGymEnv.__init__``: more devices than observation slots, an empty
    or non-positive qubit range, or a demand upper bound exceeding the
    fleet's combined capacity.
    """
    device_list: List[DeviceProfile] = (
        list(devices) if devices is not None else build_default_fleet()
    )
    if len(device_list) > max_devices:
        raise ValueError(
            f"{len(device_list)} devices exceed the observation's {max_devices} slots"
        )
    if qubit_range[0] > qubit_range[1] or qubit_range[0] <= 0:
        raise ValueError(f"invalid qubit_range {qubit_range}")
    total_capacity = sum(d.num_qubits for d in device_list)
    if qubit_range[1] > total_capacity:
        raise ValueError(
            f"qubit_range upper bound {qubit_range[1]} exceeds fleet capacity {total_capacity}"
        )

    capacities = np.array([d.num_qubits for d in device_list], dtype=np.int64)
    error_scores = np.array(
        [error_score(d.calibration) for d in device_list], dtype=np.float64
    )

    # Static observation columns: slot 0 (demand) and base+0 (free level) are
    # per-episode; base+1 (error score) and base+2 (CLOPS) never change.
    obs_template = np.zeros(1 + 3 * max_devices, dtype=np.float64)
    for i, device in enumerate(device_list):
        obs_template[1 + 3 * i + 1] = float(error_scores[i])
        obs_template[1 + 3 * i + 2] = float(device.clops) / CLOPS_NORM
    free_slots = 1 + 3 * np.arange(len(device_list))

    return FleetSpec(
        devices=tuple(device_list),
        capacities=capacities,
        error_scores=error_scores,
        obs_template=obs_template,
        free_slots=free_slots,
    )
