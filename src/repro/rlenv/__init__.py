"""The RL training environments and training driver (paper §4.1 and §6.6).

* :class:`~repro.rlenv.qcloud_env.QCloudGymEnv` — the single-step Gymnasium
  MDP: the state is the §4.1 16-dimensional vector (normalised job demand
  plus per-device free level / error score / CLOPS), the action is a 5-dim
  continuous allocation-weight vector, the reward is the mean device fidelity
  of the resulting allocation.
* :class:`~repro.rlenv.batched_env.BatchedQCloudEnv` — the same MDP as a
  native :class:`~repro.gymapi.vector.VecEnv`: ``B`` jobs sampled, observed
  and scored per call with vectorized NumPy, which is what makes
  ``--n-envs > 1`` PPO training fast.
* :mod:`~repro.rlenv.train` — PPO training of the allocation agent with the
  paper's setup (100,000 timesteps, MLP policy, default hyperparameters) and
  collection of the Fig. 5 training curve; ``n_envs`` selects between the
  bit-reproducible serial environment and the batched one.
"""

from repro.rlenv.batched_env import BatchedQCloudEnv
from repro.rlenv.qcloud_env import QCloudGymEnv
from repro.rlenv.train import evaluate_policy, train_allocation_policy

__all__ = ["BatchedQCloudEnv", "QCloudGymEnv", "evaluate_policy", "train_allocation_policy"]
