"""The RL training environment and training driver (paper §4.1 and §6.6).

* :class:`~repro.rlenv.qcloud_env.QCloudGymEnv` — the single-step Gymnasium
  MDP: the state is the §4.1 16-dimensional vector (normalised job demand
  plus per-device free level / error score / CLOPS), the action is a 5-dim
  continuous allocation-weight vector, the reward is the mean device fidelity
  of the resulting allocation.
* :mod:`~repro.rlenv.train` — PPO training of the allocation agent with the
  paper's setup (100,000 timesteps, MLP policy, default hyperparameters) and
  collection of the Fig. 5 training curve.
"""

from repro.rlenv.qcloud_env import QCloudGymEnv
from repro.rlenv.train import evaluate_policy, train_allocation_policy

__all__ = ["QCloudGymEnv", "evaluate_policy", "train_allocation_policy"]
