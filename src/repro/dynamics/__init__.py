"""repro.dynamics — non-stationary cloud scenarios.

The dynamics layer turns the simulator's static world (frozen calibrations,
always-on devices, one arrival model) into a scenario-diverse testbed.  A
:class:`Scenario` composes three event families —

* **calibration drift** (:class:`DriftSpec`): lognormal random walks on each
  device's error rates and coherence times, with periodic recalibration
  snapping back toward the baseline snapshot,
* **availability** (:class:`OutageSpec`, :class:`MaintenanceWindow`):
  stochastic outages/repairs and scheduled maintenance that take devices
  offline; the broker skips offline devices and requeues jobs whose in-flight
  sub-jobs were killed,
* **traffic shaping** (:class:`TrafficSpec`): MMPP bursts, diurnal rate
  modulation and heavy-tailed job sizes (see :mod:`repro.workloads.arrivals`)

— under one name and RNG seed.  The :class:`ScenarioEngine` injects the
resulting world events into the DES; every applied event is recorded, and
:func:`save_trace`/:func:`load_trace` turn any run into a deterministic
replay.  Named presets (``static``, ``drift``, ``flaky-fleet``,
``rush-hour``, ``black-friday``) are registered in
:mod:`repro.dynamics.presets` and selectable anywhere a config travels::

    env = QCloudSimEnv(SimulationConfig(num_jobs=100, scenario="rush-hour"))

Every scenario is bit-reproducible given its seed, and the ``static``
scenario leaves results byte-identical to a scenario-less run.
"""

from repro.dynamics.engine import ScenarioEngine
from repro.dynamics.presets import (
    available_scenarios,
    get_scenario,
    register_scenario,
    resolve_scenario,
)
from repro.dynamics.scenario import (
    CALIBRATION_CATEGORIES,
    DriftSpec,
    MaintenanceWindow,
    OutageSpec,
    Scenario,
    TrafficSpec,
    WorldEvent,
)
from repro.dynamics.trace import TRACE_VERSION, load_trace, save_trace
from repro.dynamics.workload import scenario_jobs

__all__ = [
    "CALIBRATION_CATEGORIES",
    "TRACE_VERSION",
    "DriftSpec",
    "MaintenanceWindow",
    "OutageSpec",
    "Scenario",
    "ScenarioEngine",
    "TrafficSpec",
    "WorldEvent",
    "available_scenarios",
    "get_scenario",
    "load_trace",
    "register_scenario",
    "resolve_scenario",
    "save_trace",
    "scenario_jobs",
]
