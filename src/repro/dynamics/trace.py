"""Scenario trace recording and deterministic replay (JSONL).

Any scenario run can be dumped to a JSONL trace and replayed exactly:

* line 1 — a ``header`` record: trace version, scenario name, the
  event-source creation order and the originating simulation config,
* one ``job`` line per workload job (arrival times included), in submission
  order,
* one ``event`` line per applied :class:`~repro.dynamics.scenario.WorldEvent`,
  in application order.

``float`` round-tripping through JSON is exact (Python serialises the
shortest repr, which parses back to the identical IEEE-754 double), so a
replayed run applies bit-identical drift factors at bit-identical times and
reproduces the original job records exactly — asserted by the round-trip
tests.

Usage::

    env = QCloudSimEnv(SimulationConfig(num_jobs=50, scenario="black-friday"))
    env.run_until_complete()
    env.save_trace("run.jsonl")

    replay = load_trace("run.jsonl")
    env2 = QCloudSimEnv(SimulationConfig(num_jobs=50), scenario=replay)
    assert env2.run_until_complete() == records
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.cloud.qjob import QJob
from repro.dynamics.scenario import Scenario, WorldEvent

__all__ = ["TRACE_VERSION", "save_trace", "load_trace"]

#: Current trace schema version.
TRACE_VERSION = 1


def save_trace(env: Any, path: str) -> str:
    """Write the scenario trace of a finished (or running) simulation.

    Parameters
    ----------
    env:
        A :class:`~repro.cloud.environment.QCloudSimEnv`.  Runs without a
        scenario are recorded too (zero world events) — replaying such a
        trace reproduces the plain run.
    path:
        Output path of the JSONL trace.

    Returns the path written.
    """
    engine = getattr(env, "scenario_engine", None)
    scenario = getattr(env, "scenario", None)
    header: Dict[str, Any] = {
        "type": "header",
        "version": TRACE_VERSION,
        "scenario": scenario.name if scenario is not None else None,
        "sources": list(engine.sources) if engine is not None else [],
        "config": env.config.as_dict(),
    }
    lines = [json.dumps(header, default=repr)]
    for job in env.job_generator.jobs:
        lines.append(json.dumps({"type": "job", **job.as_dict()}))
    for event in engine.applied_events if engine is not None else ():
        lines.append(json.dumps({"type": "event", **event.as_dict()}))
    Path(path).write_text("\n".join(lines) + "\n")
    return str(path)


def load_trace(path: str) -> Scenario:
    """Load a JSONL trace into a replay :class:`Scenario`.

    The returned scenario carries the recorded workload and world events; a
    simulation constructed with it schedules exactly those arrivals and world
    changes and reproduces the recorded run bit-for-bit (given the same
    simulation config and policy).
    """
    text = Path(path).read_text()
    header: Optional[Dict[str, Any]] = None
    jobs: List[QJob] = []
    events: List[WorldEvent] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        payload = json.loads(line)
        kind = payload.get("type")
        if kind == "header":
            if payload.get("version") != TRACE_VERSION:
                raise ValueError(
                    f"unsupported trace version {payload.get('version')!r} "
                    f"(expected {TRACE_VERSION})"
                )
            header = payload
        elif kind == "job":
            jobs.append(QJob.from_dict(payload))
        elif kind == "event":
            events.append(WorldEvent.from_dict(payload))
        else:
            raise ValueError(f"{path}:{lineno}: unknown trace line type {kind!r}")
    if header is None:
        raise ValueError(f"{path} has no header line")

    name = header.get("scenario") or "trace"
    return Scenario(
        name=f"replay:{name}",
        replay_events=tuple(events),
        replay_sources=tuple(header.get("sources", ())),
        replay_jobs=tuple(jobs),
        description=f"replay of {Path(path).name}",
    )
