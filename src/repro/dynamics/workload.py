"""Scenario-shaped workload construction.

:func:`scenario_jobs` is the single place where a scenario influences *which
jobs arrive when*: replay scenarios return their recorded workload, traffic
scenarios generate one from their :class:`~repro.dynamics.scenario.TrafficSpec`
(seeded deterministically from the config seed and the scenario identity),
and all other scenarios defer to the configuration's default workload.

In multi-tenant runs the environment additionally routes the scenario's
traffic to tenants by share (see
:func:`repro.serve.workload.route_jobs_to_tenants`): the scenario decides
*when* jobs arrive, the tenant mix decides *whose* jobs they are.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cloud.qjob import QJob
from repro.dynamics.scenario import Scenario
from repro.engine.spec import derive_seed

__all__ = ["scenario_jobs"]


def scenario_jobs(scenario: Scenario, config) -> Optional[List[QJob]]:
    """The workload a scenario imposes, or ``None`` to use the config default.

    Parameters
    ----------
    scenario:
        The active scenario.
    config:
        The run's :class:`~repro.cloud.config.SimulationConfig` (supplies the
        job count, the size/depth/shot ranges and the base seed).
    """
    if scenario.replay_jobs is not None:
        return [job.clone() for job in scenario.replay_jobs]
    if scenario.traffic is None:
        return None

    from repro.workloads.arrivals import generate_traffic_jobs

    seed = derive_seed(config.seed, "scenario-traffic", scenario.name, scenario.seed)
    return generate_traffic_jobs(
        scenario.traffic,
        num_jobs=config.num_jobs,
        seed=seed,
        qubit_range=config.qubit_range,
        depth_range=config.depth_range,
        shots_range=config.shots_range,
        two_qubit_density=config.two_qubit_density,
    )
