"""The scenario engine: injects world events into a running simulation.

:class:`ScenarioEngine` turns the declarative specs of a
:class:`~repro.dynamics.scenario.Scenario` into DES processes — one per
*event source* — that wake up over simulated time and apply
:class:`~repro.dynamics.scenario.WorldEvent`\\ s to the fleet:

* ``drift`` — one fleet-wide process stepping every device's calibration,
* ``outage:<device>`` — one process per failable device,
* ``maintenance`` — one process walking the scheduled windows.

Every applied event funnels through :meth:`ScenarioEngine.apply`, which both
mutates the world *and* appends the event to :attr:`applied_events` — so any
scenario run can be dumped to a trace and replayed.  Replay creates one
process per *recorded* source that re-applies the recorded events at their
recorded times; because each source allocates exactly one wake-up timeout per
event time in both modes, the interleaving of same-time events (and hence the
entire simulation) is reproduced exactly.

Determinism: every source draws from its own generator seeded by
``derive_seed(config.seed, "scenario", name, scenario.seed, <source>)`` — the
same scenario on the same config always produces the same event stream,
independent of fleet size changes in *other* sources.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Generator, List, Optional, Sequence

import numpy as np

from repro.dynamics.scenario import (
    CALIBRATION_CATEGORIES,
    DriftSpec,
    MaintenanceWindow,
    OutageSpec,
    Scenario,
    WorldEvent,
)
from repro.engine.spec import derive_seed

__all__ = ["ScenarioEngine"]


class ScenarioEngine:
    """Runtime of one scenario inside one simulation.

    Parameters
    ----------
    env:
        The :class:`~repro.cloud.environment.QCloudSimEnv` (duck-typed: any
        DES environment exposing ``cloud``, ``config``, ``timeout`` and
        ``process``).
    scenario:
        The scenario to run.
    """

    def __init__(self, env: Any, scenario: Scenario) -> None:
        self.env = env
        self.scenario = scenario
        #: Every world event applied so far, in application order.
        self.applied_events: List[WorldEvent] = []
        #: Event-source identifiers in creation order (trace header field).
        self.sources: List[str] = []
        self._installed = False
        self._baselines: Dict[str, Any] = {}
        self._log_factors: Dict[str, Dict[str, float]] = {}
        self._seed_root = derive_seed(
            env.config.seed, "scenario", scenario.name, scenario.seed
        )

    # -- installation ---------------------------------------------------------
    @property
    def cloud(self) -> Any:
        """The device fleet of the owning environment."""
        return self.env.cloud

    @property
    def perpetual(self) -> bool:
        """Whether any installed source never terminates (the environment
        must then stop on job completion, not queue exhaustion)."""
        return self.scenario.is_perpetual

    def install(self) -> None:
        """Snapshot calibration baselines and start the event-source processes.

        A static scenario installs nothing: no processes are created, no
        events are scheduled, and the simulation is byte-identical to a run
        without a scenario.
        """
        if self._installed:
            raise RuntimeError("ScenarioEngine already installed")
        self._installed = True
        scenario = self.scenario

        for device in self.cloud.devices:
            self._baselines[device.name] = getattr(device, "calibration", None)
            self._log_factors[device.name] = {c: 0.0 for c in CALIBRATION_CATEGORIES}

        if scenario.is_replay:
            self._install_replay(scenario)
            return

        if scenario.drift is not None:
            self._validate_devices(scenario.drift.devices)
            self.sources.append("drift")
            self.env.process(self._drift_source(scenario.drift))
        if scenario.outages is not None:
            self._validate_devices(scenario.outages.devices)
            names = scenario.outages.devices or tuple(d.name for d in self.cloud.devices)
            for name in names:
                self.sources.append(f"outage:{name}")
                self.env.process(self._outage_source(name, scenario.outages))
        if scenario.maintenance:
            self._validate_devices(
                tuple(w.device for w in scenario.maintenance if w.device is not None)
            )
            self.sources.append("maintenance")
            self.env.process(self._maintenance_source(scenario.maintenance))

    def _validate_devices(self, names: Optional[Sequence[str]]) -> None:
        for name in names or ():
            self.cloud.device(name)  # raises KeyError for unknown devices

    def _install_replay(self, scenario: Scenario) -> None:
        events = scenario.replay_events or ()
        by_source: Dict[str, List[WorldEvent]] = {}
        for event in events:
            by_source.setdefault(event.source, []).append(event)
        # Re-create sources in the recorded creation order so that same-time
        # wake-up events interleave exactly as in the recorded run.
        order = list(scenario.replay_sources) or list(by_source)
        for source in order:
            source_events = by_source.pop(source, [])
            if source_events:
                self.sources.append(source)
                self.env.process(self._replay_source(source_events))
        for source, source_events in by_source.items():  # sources missing from header
            self.sources.append(source)
            self.env.process(self._replay_source(source_events))

    # -- event sources ---------------------------------------------------------
    def _source_rng(self, *components: Any) -> np.random.Generator:
        return np.random.default_rng(derive_seed(self._seed_root, *components))

    def _drift_source(self, spec: DriftSpec) -> Generator[object, object, None]:
        rng = self._source_rng("drift")
        names = list(spec.devices) if spec.devices else [d.name for d in self.cloud.devices]
        # One vectorized draw per wake (5 categories x devices) instead of 5k
        # scalar draws: the drift hook runs on the hot path of every step.
        sigma = np.tile(
            [spec.volatility] * 3 + [spec.coherence_volatility] * 2, len(names)
        )
        elapsed = 0.0
        next_recal = spec.recalibration_period
        while True:
            yield self.env.timeout(spec.interval)
            elapsed += spec.interval
            now = self.env.now
            steps = np.exp(sigma * rng.standard_normal(sigma.shape[0]))
            for i, name in enumerate(names):
                base = 5 * i
                factors = {
                    "readout": float(steps[base]),
                    "single_qubit": float(steps[base + 1]),
                    "two_qubit": float(steps[base + 2]),
                    "t1": float(steps[base + 3]),
                    "t2": float(steps[base + 4]),
                }
                self.apply(WorldEvent(now, "drift", "calibration", name, {"factors": factors}))
            if next_recal is not None and elapsed >= next_recal:
                next_recal += spec.recalibration_period
                for name in names:
                    self.apply(
                        WorldEvent(
                            now,
                            "drift",
                            "recalibration",
                            name,
                            {"strength": spec.recalibration_strength},
                        )
                    )

    def _outage_source(self, name: str, spec: OutageSpec) -> Generator[object, object, None]:
        rng = self._source_rng("outage", name)
        source = f"outage:{name}"
        while True:
            yield self.env.timeout(float(rng.exponential(spec.mtbf)))
            self.apply(
                WorldEvent(
                    self.env.now,
                    source,
                    "offline",
                    name,
                    {"kill_running": spec.kill_running, "cause": "outage"},
                )
            )
            yield self.env.timeout(float(rng.exponential(spec.mttr)))
            self.apply(WorldEvent(self.env.now, source, "online", name, {"cause": "outage"}))

    def _maintenance_source(
        self, windows: Sequence[MaintenanceWindow]
    ) -> Generator[object, object, None]:
        # Windows are served in start order; an overlapping window is simply
        # deferred until the previous one ends (its full duration is honoured).
        for window in sorted(windows, key=lambda w: (w.start, w.device or "")):
            if window.start > self.env.now:
                yield self.env.timeout(window.start - self.env.now)
            self.apply(
                WorldEvent(
                    self.env.now,
                    "maintenance",
                    "offline",
                    window.device,
                    {"kill_running": window.kill_running, "cause": "maintenance"},
                )
            )
            yield self.env.timeout(window.duration)
            self.apply(
                WorldEvent(
                    self.env.now, "maintenance", "online", window.device,
                    {"cause": "maintenance"},
                )
            )

    def _replay_source(self, events: Sequence[WorldEvent]) -> Generator[object, object, None]:
        for event in events:
            if event.time > self.env.now:
                yield self.env.timeout(event.time - self.env.now)
            self.apply(event)

    # -- event application -----------------------------------------------------
    def apply(self, event: WorldEvent) -> None:
        """Apply one world event to the fleet and record it.

        This is the single funnel shared by the stochastic sources and the
        replay sources, so recording and replaying cannot diverge.
        """
        kind = event.kind
        if kind == "calibration":
            self._shift_calibration(event.device, event.payload["factors"])
        elif kind == "recalibration":
            self._recalibrate(event.device, float(event.payload.get("strength", 1.0)))
        elif kind == "offline":
            for device in self._targets(event.device):
                device.set_offline(
                    kill_running=bool(event.payload.get("kill_running", True)),
                    cause=str(event.payload.get("cause", "outage")),
                )
        elif kind == "online":
            cause = event.payload.get("cause")
            recovered = False
            for device in self._targets(event.device):
                recovered = device.set_online(cause) or recovered
            if recovered:
                # Wake brokers waiting for capacity so they re-plan onto the
                # recovered device.
                self.cloud.signal_capacity_change()
        else:
            raise ValueError(f"unknown world-event kind {kind!r}")
        self.applied_events.append(event)

    def _targets(self, device_name: Optional[str]) -> List[Any]:
        if device_name is None:
            return list(self.cloud.devices)
        return [self.cloud.device(device_name)]

    def _shift_calibration(self, device_name: Optional[str], factors: Dict[str, Any]) -> None:
        if device_name is None:
            raise ValueError("calibration events need a target device")
        state = self._log_factors[device_name]
        for category, factor in factors.items():
            if category not in state:
                raise ValueError(f"unknown calibration category {category!r}")
            state[category] += math.log(float(factor))
        self._rescale(device_name)

    def _recalibrate(self, device_name: Optional[str], strength: float) -> None:
        names = (
            [device_name] if device_name is not None else [d.name for d in self.cloud.devices]
        )
        for name in names:
            state = self._log_factors[name]
            for category in state:
                state[category] *= 1.0 - strength
            self._rescale(name)

    def _rescale(self, device_name: str) -> None:
        """Re-derive the device calibration from its baseline and the
        accumulated log-deviations (always from the baseline, so replayed
        event streams reproduce bit-identical calibrations)."""
        baseline = self._baselines[device_name]
        if baseline is None:
            raise TypeError(f"device {device_name!r} carries no calibration data")
        state = self._log_factors[device_name]
        device = self.cloud.device(device_name)
        device.calibration = baseline.scaled(
            readout=math.exp(state["readout"]),
            single_qubit=math.exp(state["single_qubit"]),
            two_qubit=math.exp(state["two_qubit"]),
            t1=math.exp(state["t1"]),
            t2=math.exp(state["t2"]),
        )

    # -- reporting -------------------------------------------------------------
    def event_counts(self) -> Dict[str, int]:
        """Number of applied events per kind (for summaries/CLI)."""
        counts: Dict[str, int] = {}
        for event in self.applied_events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ScenarioEngine scenario={self.scenario.name!r} "
            f"sources={len(self.sources)} applied={len(self.applied_events)}>"
        )
