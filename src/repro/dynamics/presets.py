"""Named scenario presets and the scenario registry.

The registry maps scenario names to :class:`~repro.dynamics.scenario.Scenario`
instances so that configurations, experiment grids and the CLI can select
world dynamics by name (``SimulationConfig(scenario="rush-hour")``,
``repro compare --scenario flaky-fleet``).  Five presets ship built-in:

==============  ==============================================================
``static``      no dynamics at all — byte-identical to a scenario-less run
``drift``       calibration drift on every device + hourly recalibration
``flaky-fleet`` stochastic outages fleet-wide + one maintenance window + drift
``rush-hour``   diurnal sinusoidal arrival rate (trough→crest Poisson)
``black-friday`` MMPP burst arrivals + heavy-tail job sizes + overload outages
==============  ==============================================================

A name ending in ``.jsonl`` (or prefixed ``trace:``) resolves to a replay
scenario loaded from that trace file (see :mod:`repro.dynamics.trace`).
"""

from __future__ import annotations

from typing import Dict, List

from repro.dynamics.scenario import (
    DriftSpec,
    MaintenanceWindow,
    OutageSpec,
    Scenario,
    TrafficSpec,
)

__all__ = [
    "register_scenario",
    "get_scenario",
    "available_scenarios",
    "resolve_scenario",
]

_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> None:
    """Register *scenario* under its name (overwrites existing entries)."""
    _REGISTRY[scenario.name] = scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown scenario {name!r}; available: {available_scenarios()}")
    return _REGISTRY[name]


def available_scenarios() -> List[str]:
    """Names of all registered scenarios (presets first, in preset order)."""
    return list(_REGISTRY)


def resolve_scenario(name: str) -> Scenario:
    """Resolve a scenario reference: a registered name, or a trace path.

    ``"trace:<path>"`` and any name ending in ``".jsonl"`` load a replay
    scenario from that trace file.
    """
    if name.startswith("trace:") or name.endswith(".jsonl"):
        from repro.dynamics.trace import load_trace

        return load_trace(name[len("trace:"):] if name.startswith("trace:") else name)
    return get_scenario(name)


def _register_presets() -> None:
    # The time constants below are sized against the paper's case-study
    # workload, where a 100-job batch drains in roughly 5-6 k simulated
    # seconds (~60 s of fleet time per job).
    register_scenario(
        Scenario(
            name="static",
            description="frozen calibrations, perfect availability (the paper's world)",
        )
    )
    register_scenario(
        Scenario(
            name="drift",
            description="lognormal calibration drift fleet-wide, periodic recalibration",
            drift=DriftSpec(
                interval=1800.0,
                volatility=0.12,
                coherence_volatility=0.05,
                recalibration_period=10_800.0,
                recalibration_strength=0.9,
            ),
        )
    )
    register_scenario(
        Scenario(
            name="flaky-fleet",
            description="stochastic outages + a maintenance window + mild drift",
            drift=DriftSpec(interval=900.0, volatility=0.04, recalibration_period=7200.0),
            outages=OutageSpec(mtbf=4000.0, mttr=400.0, kill_running=True),
            maintenance=(
                MaintenanceWindow(start=1500.0, duration=600.0, device="ibm_brussels"),
            ),
        )
    )
    register_scenario(
        Scenario(
            name="rush-hour",
            description="diurnal sinusoidal arrival rate (quiet troughs, busy crests)",
            traffic=TrafficSpec(
                model="diurnal", rate=0.01, peak_rate=0.12, period=7200.0
            ),
        )
    )
    register_scenario(
        Scenario(
            name="black-friday",
            description="MMPP burst arrivals, heavy-tail job sizes, overload outages",
            traffic=TrafficSpec(
                model="mmpp",
                rate=0.015,
                burst_rate=0.2,
                dwell_normal=1200.0,
                dwell_burst=300.0,
                qubit_dist="heavy_tail",
                tail_alpha=2.2,
            ),
            outages=OutageSpec(mtbf=6000.0, mttr=300.0, kill_running=True),
        )
    )


_register_presets()
