"""Scenario specifications: declarative descriptions of non-stationary clouds.

A :class:`Scenario` bundles the three world-dynamics families the simulator
can inject into a run — calibration drift, device availability and traffic
shaping — plus an RNG seed, so that a named scenario is a complete, bit-
reproducible description of *how the world changes over time*:

* :class:`DriftSpec` — per-device stochastic drift of the calibration error
  rates and coherence times (a lognormal random walk), with periodic
  recalibration pulling the device back toward its baseline snapshot,
* :class:`OutageSpec` — stochastic failures and repairs (exponential
  time-to-failure / time-to-repair) that take devices offline mid-run,
* :class:`MaintenanceWindow` — scheduled, deterministic offline windows,
* :class:`TrafficSpec` — non-Poisson arrival processes (MMPP bursts, diurnal
  rate modulation) and heavy-tailed job sizes.

All specs are frozen dataclasses: they are picklable (so experiment cells
carrying a scenario name stay shippable to process-pool workers), their
``repr`` is a stable content fingerprint (so results remain cacheable), and
they carry no runtime state — the :class:`~repro.dynamics.engine
.ScenarioEngine` owns all mutable world state during a run.

A scenario built from a recorded trace (see :mod:`repro.dynamics.trace`)
carries the pre-computed world events and workload instead of stochastic
specs; replaying it reproduces the original run exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "CALIBRATION_CATEGORIES",
    "WorldEvent",
    "DriftSpec",
    "OutageSpec",
    "MaintenanceWindow",
    "TrafficSpec",
    "Scenario",
]

#: Calibration quantities the drift process perturbs (multiplicative factors).
CALIBRATION_CATEGORIES = ("readout", "single_qubit", "two_qubit", "t1", "t2")


@dataclass(frozen=True)
class WorldEvent:
    """One applied world change: the unit of scenario recording and replay.

    Attributes
    ----------
    time:
        Simulation time the event was applied at.
    source:
        Identifier of the event source that produced it (``"drift"``,
        ``"outage:<device>"``, ``"maintenance"``).  Replay re-creates one
        process per source so same-time event interleaving is preserved.
    kind:
        ``"calibration"`` | ``"recalibration"`` | ``"offline"`` | ``"online"``.
    device:
        Target device name, or ``None`` for a fleet-wide event.
    payload:
        Kind-specific parameters (drift factors, recalibration strength,
        ``kill_running`` flag …).  Must be JSON-serialisable.
    """

    time: float
    source: str
    kind: str
    device: Optional[str]
    payload: Mapping[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (one trace line)."""
        return {
            "time": self.time,
            "source": self.source,
            "kind": self.kind,
            "device": self.device,
            "payload": dict(self.payload),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WorldEvent":
        """Rebuild an event from :meth:`as_dict` output."""
        return cls(
            time=float(payload["time"]),
            source=str(payload["source"]),
            kind=str(payload["kind"]),
            device=None if payload.get("device") is None else str(payload["device"]),
            payload=dict(payload.get("payload", {})),
        )


@dataclass(frozen=True)
class DriftSpec:
    """Stochastic calibration drift with periodic recalibration.

    Every *interval* simulated seconds each affected device's error rates take
    one step of a lognormal random walk (``rate *= exp(volatility * N(0,1))``)
    and its T1/T2 take one step with *coherence_volatility*.  Every
    *recalibration_period* seconds the accumulated log-deviation from the
    baseline snapshot is scaled by ``1 - recalibration_strength`` — strength
    1.0 snaps the device exactly back to its baseline calibration.
    """

    #: Seconds between drift steps.
    interval: float = 600.0
    #: Lognormal step volatility of the error rates.
    volatility: float = 0.05
    #: Lognormal step volatility of T1/T2.
    coherence_volatility: float = 0.02
    #: Seconds between recalibrations (``None`` — never recalibrate).
    recalibration_period: Optional[float] = 3600.0
    #: Fraction of accumulated drift removed per recalibration (0..1].
    recalibration_strength: float = 1.0
    #: Device names to drift (``None`` — the whole fleet).
    devices: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.volatility < 0 or self.coherence_volatility < 0:
            raise ValueError("volatilities must be non-negative")
        if self.recalibration_period is not None and self.recalibration_period <= 0:
            raise ValueError("recalibration_period must be positive when given")
        if not 0.0 < self.recalibration_strength <= 1.0:
            raise ValueError("recalibration_strength must be in (0, 1]")


@dataclass(frozen=True)
class OutageSpec:
    """Stochastic device outages and repairs.

    Each affected device independently alternates between up-time drawn from
    ``Exp(mtbf)`` and down-time drawn from ``Exp(mttr)``.  When a device goes
    down with ``kill_running=True`` its in-flight sub-jobs are interrupted and
    the owning jobs are requeued by the broker.
    """

    #: Mean time between failures (seconds of up-time).
    mtbf: float = 4000.0
    #: Mean time to repair (seconds of down-time).
    mttr: float = 300.0
    #: Device names that can fail (``None`` — the whole fleet).
    devices: Optional[Tuple[str, ...]] = None
    #: Interrupt in-flight sub-jobs when the device fails.
    kill_running: bool = True

    def __post_init__(self) -> None:
        if self.mtbf <= 0 or self.mttr <= 0:
            raise ValueError("mtbf and mttr must be positive")


@dataclass(frozen=True)
class MaintenanceWindow:
    """A scheduled offline window for one device (or the whole fleet)."""

    #: Window start (simulation seconds).
    start: float
    #: Window length (simulation seconds).
    duration: float
    #: Device name, or ``None`` for the whole fleet.
    device: Optional[str] = None
    #: Interrupt in-flight sub-jobs at window start (default: drain gracefully).
    kill_running: bool = False

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("start must be non-negative")
        if self.duration <= 0:
            raise ValueError("duration must be positive")


@dataclass(frozen=True)
class TrafficSpec:
    """Arrival-process and job-size shaping for the synthetic workload.

    ``model`` selects the arrival process:

    * ``"poisson"`` — homogeneous Poisson at *rate* (like the seed generator),
    * ``"mmpp"`` — a two-state Markov-modulated Poisson process alternating
      between a normal phase (*rate*, mean dwell *dwell_normal*) and a burst
      phase (*burst_rate*, mean dwell *dwell_burst*),
    * ``"diurnal"`` — a nonhomogeneous Poisson process whose rate swings
      sinusoidally between *rate* (trough) and *peak_rate* (crest) with the
      given *period*, sampled by thinning.

    ``qubit_dist = "heavy_tail"`` replaces the uniform qubit demand with a
    Pareto-tailed distribution (shape *tail_alpha*, scale = the configured
    minimum demand) clipped to ``max_qubits``.
    """

    model: str = "poisson"
    #: Base arrival rate (jobs/second).
    rate: float = 0.02
    #: Burst-phase arrival rate (``"mmpp"``).
    burst_rate: float = 0.25
    #: Mean dwell time of the normal phase, seconds (``"mmpp"``).
    dwell_normal: float = 1200.0
    #: Mean dwell time of the burst phase, seconds (``"mmpp"``).
    dwell_burst: float = 240.0
    #: Crest arrival rate (``"diurnal"``).
    peak_rate: float = 0.12
    #: Rate-modulation period, seconds (``"diurnal"``).
    period: float = 7200.0
    #: Phase offset of the diurnal modulation, radians (``"diurnal"``).  Two
    #: specs differing only in phase see the same rate envelope shifted in
    #: time — how multi-region topologies model timezones (a region ``pi``
    #: ahead peaks while another troughs; see :mod:`repro.region`).
    phase: float = 0.0
    #: Job-size distribution: ``"uniform"`` or ``"heavy_tail"``.
    qubit_dist: str = "uniform"
    #: Pareto tail index of the heavy-tail size distribution.
    tail_alpha: float = 2.2
    #: Upper clip of heavy-tailed demands (``None`` — 2x the configured max).
    max_qubits: Optional[int] = None

    def __post_init__(self) -> None:
        if self.model not in ("poisson", "mmpp", "diurnal"):
            raise ValueError("model must be 'poisson', 'mmpp' or 'diurnal'")
        if self.qubit_dist not in ("uniform", "heavy_tail"):
            raise ValueError("qubit_dist must be 'uniform' or 'heavy_tail'")
        for name in ("rate", "burst_rate", "dwell_normal", "dwell_burst", "peak_rate", "period"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.tail_alpha <= 1.0:
            raise ValueError("tail_alpha must be > 1 (finite mean)")
        if self.max_qubits is not None and self.max_qubits <= 0:
            raise ValueError("max_qubits must be positive when given")


@dataclass(frozen=True)
class Scenario:
    """A named, seeded composition of world-dynamics specs.

    A scenario with no specs at all (the ``static`` preset) injects nothing:
    a run with it is byte-identical to a run without any scenario.

    Replay scenarios (built by :func:`repro.dynamics.trace.load_trace`) carry
    ``replay_events``/``replay_sources``/``replay_jobs`` instead of stochastic
    specs; the engine then schedules exactly the recorded events.
    """

    name: str
    #: Scenario RNG seed; combined with the config seed per event source.
    seed: int = 0
    drift: Optional[DriftSpec] = None
    outages: Optional[OutageSpec] = None
    maintenance: Tuple[MaintenanceWindow, ...] = ()
    traffic: Optional[TrafficSpec] = None
    description: str = ""
    #: Recorded world events to replay verbatim (replay scenarios only).
    replay_events: Optional[Tuple[WorldEvent, ...]] = None
    #: Event-source creation order of the recorded run (replay scenarios only).
    replay_sources: Tuple[str, ...] = ()
    #: Recorded workload to replay verbatim (replay scenarios only).
    replay_jobs: Optional[tuple] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.replay_events is not None and (
            self.drift or self.outages or self.maintenance or self.traffic
        ):
            raise ValueError("a replay scenario cannot also carry stochastic specs")

    @property
    def is_replay(self) -> bool:
        """Whether this scenario replays a recorded trace."""
        return self.replay_events is not None

    @property
    def has_world_dynamics(self) -> bool:
        """Whether any world events will be injected into the DES."""
        if self.is_replay:
            return bool(self.replay_events)
        return bool(self.drift or self.outages or self.maintenance)

    @property
    def is_perpetual(self) -> bool:
        """Whether any event source runs forever (the run must stop on job
        completion rather than queue exhaustion)."""
        return not self.is_replay and bool(self.drift or self.outages)

    @property
    def is_static(self) -> bool:
        """Whether the scenario injects nothing at all."""
        return not self.has_world_dynamics and self.traffic is None and not self.is_replay

    def affected_devices(self, fleet_names: List[str]) -> List[str]:
        """Device names touched by drift/outages (for reporting)."""
        names: List[str] = []
        for spec in (self.drift, self.outages):
            if spec is not None:
                names.extend(spec.devices if spec.devices else fleet_names)
        return sorted(set(names))
