"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out


class TestDevices:
    def test_lists_catalogue(self, capsys):
        assert main(["devices", "--qubits", "20", "--qv", "32"]) == 0
        out = capsys.readouterr().out
        for name in ("ibm_strasbourg", "ibm_brussels", "ibm_kyiv", "ibm_quebec", "ibm_kawasaki"):
            assert name in out
        assert "220000" in out


class TestWorkload:
    def test_writes_csv(self, tmp_path, capsys):
        path = str(tmp_path / "jobs.csv")
        assert main(["workload", "-n", "12", "-o", path, "--seed", "3"]) == 0
        assert "Wrote 12 jobs" in capsys.readouterr().out
        from repro.cloud.io import jobs_from_csv

        assert len(jobs_from_csv(path)) == 12

    def test_writes_json(self, tmp_path):
        path = str(tmp_path / "jobs.json")
        assert main(["workload", "-n", "5", "-o", path]) == 0
        from repro.cloud.io import jobs_from_json

        assert len(jobs_from_json(path)) == 5


class TestSimulate:
    def test_simulate_speed(self, capsys, tmp_path):
        records_path = str(tmp_path / "records.csv")
        code = main(
            ["simulate", "--policy", "speed", "-n", "6", "--seed", "1", "--records", records_path]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "jobs completed: 6" in out
        assert "fidelity" in out
        import csv

        with open(records_path) as fh:
            assert len(list(csv.DictReader(fh))) == 6

    def test_simulate_with_workload_file(self, capsys, tmp_path):
        jobs_path = str(tmp_path / "jobs.csv")
        main(["workload", "-n", "4", "-o", jobs_path, "--seed", "9"])
        capsys.readouterr()
        assert main(["simulate", "--policy", "fair", "--jobs", jobs_path]) == 0
        assert "jobs completed: 4" in capsys.readouterr().out

    def test_zero_completion_run_writes_header_only_records(self, tmp_path, capsys):
        """Every job infeasible: no crash, exit 1, header-only records CSV."""
        from repro.circuits.circuit import CircuitSpec
        from repro.cloud.io import jobs_to_csv
        from repro.cloud.qjob import QJob

        jobs = [QJob(job_id=0, circuit=CircuitSpec(
            num_qubits=5000, depth=5, num_shots=1000, num_two_qubit_gates=10))]
        workload = tmp_path / "huge.csv"
        jobs_to_csv(jobs, str(workload))
        records = tmp_path / "records.csv"

        code = main(["simulate", "--jobs", str(workload), "--records", str(records)])
        assert code == 1
        out = capsys.readouterr().out
        assert "jobs completed: 0" in out
        lines = records.read_text().strip().splitlines()
        assert len(lines) == 1 and lines[0].startswith("job_id,")

    def test_zero_completion_run_with_trace(self, tmp_path, capsys):
        """--trace on a zero-completion run: no crash, exit 1, trace written."""
        from repro.circuits.circuit import CircuitSpec
        from repro.cloud.io import jobs_to_csv
        from repro.cloud.qjob import QJob

        jobs = [QJob(job_id=0, circuit=CircuitSpec(
            num_qubits=5000, depth=5, num_shots=1000, num_two_qubit_gates=10))]
        workload = tmp_path / "huge.csv"
        jobs_to_csv(jobs, str(workload))
        trace = tmp_path / "trace.jsonl"

        code = main(["simulate", "--jobs", str(workload), "--trace", str(trace)])
        assert code == 1
        assert "jobs completed: 0" in capsys.readouterr().out
        assert trace.exists()

    def test_rlbase_requires_model(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--policy", "rlbase", "-n", "2"])

    def test_rlbase_with_saved_model(self, capsys, tmp_path):
        # Save an untrained-but-valid policy and deploy it through the CLI.
        import numpy as np

        from repro.gymapi.spaces import Box
        from repro.rl.policies import ActorCriticPolicy

        model_path = str(tmp_path / "policy.npz")
        ActorCriticPolicy(
            Box(0.0, np.inf, shape=(16,), dtype=np.float64),
            Box(0.0, 1.0, shape=(5,), dtype=np.float64),
            seed=0,
        ).save(model_path)

        code = main(["simulate", "--policy", "rlbase", "-n", "4", "--model", model_path])
        assert code == 0
        assert "jobs completed: 4" in capsys.readouterr().out


class TestCompare:
    def test_compare_three_strategies(self, capsys):
        assert main(["compare", "-n", "10", "--seed", "2", "--histograms"]) == 0
        out = capsys.readouterr().out
        for name in ("speed", "fidelity", "fair"):
            assert name in out
        assert "#" in out  # histograms rendered


class TestTrain:
    def test_train_small_budget(self, capsys, tmp_path):
        model_path = str(tmp_path / "model.npz")
        curve_path = str(tmp_path / "curve.json")
        code = main(
            [
                "train",
                "--timesteps", "1024",
                "--model", model_path,
                "--curve", curve_path,
                "--seed", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "saved policy" in out
        curve = json.loads(open(curve_path).read())
        assert len(curve) >= 1
        assert "ep_rew_mean" in curve[0]

    def test_train_vectorized_n_envs(self, capsys, tmp_path):
        model_path = str(tmp_path / "model.npz")
        code = main(
            [
                "train",
                "--timesteps", "1024",
                "--model", model_path,
                "--seed", "0",
                "--n-envs", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "saved policy" in out

    def test_train_default_n_envs_is_serial(self):
        args = build_parser().parse_args(["train"])
        assert args.n_envs == 1


class TestSimulateFastPath:
    def test_fast_path_matches_legacy_records(self, capsys, tmp_path):
        outputs = {}
        for flag, label in (([], "legacy"), (["--fast-path"], "fast")):
            records_path = str(tmp_path / f"{label}.csv")
            code = main(
                ["simulate", "--policy", "speed", "-n", "8", "--seed", "4",
                 "--records", records_path, *flag]
            )
            assert code == 0
            assert "jobs completed: 8" in capsys.readouterr().out
            outputs[label] = open(records_path).read()
        assert outputs["fast"] == outputs["legacy"]

    def test_stats_reports_engine_and_counters(self, capsys):
        assert main(["simulate", "-n", "5", "--seed", "2", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "engine        : legacy processes" in out
        assert "events        :" in out
        assert "batches" in out
        assert "peak queue    :" in out
        assert "events/s" in out

    def test_stats_with_fast_path(self, capsys):
        assert main(["simulate", "-n", "5", "--seed", "2", "--stats", "--fast-path"]) == 0
        out = capsys.readouterr().out
        assert "engine        : flat fast path" in out
        assert "jobs completed: 5" in out
