"""Unit and property tests for the fidelity model (Eqs. 4-8)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.fidelity import (
    DEFAULT_COMMUNICATION_PENALTY,
    FidelityBreakdown,
    communication_penalty,
    device_fidelity,
    final_fidelity,
    readout_fidelity,
    single_qubit_fidelity,
    two_qubit_fidelity,
)


class TestSingleQubitFidelity:
    def test_formula(self):
        assert single_qubit_fidelity(0.001, depth=10) == pytest.approx((1 - 0.001) ** 10)

    def test_zero_depth_is_perfect(self):
        assert single_qubit_fidelity(0.01, depth=0) == 1.0

    def test_monotone_in_depth(self):
        assert single_qubit_fidelity(0.001, 5) > single_qubit_fidelity(0.001, 50)

    def test_validation(self):
        with pytest.raises(ValueError):
            single_qubit_fidelity(-0.1, 5)
        with pytest.raises(ValueError):
            single_qubit_fidelity(0.1, -1)


class TestTwoQubitFidelity:
    def test_formula_square_root_exponent(self):
        assert two_qubit_fidelity(0.008, 400) == pytest.approx((1 - 0.008) ** 20)

    def test_zero_gates_is_perfect(self):
        assert two_qubit_fidelity(0.01, 0) == 1.0

    def test_monotone_in_gate_count(self):
        assert two_qubit_fidelity(0.008, 100) > two_qubit_fidelity(0.008, 900)


class TestReadoutFidelity:
    def test_formula(self):
        expected = (1 - 0.02) ** math.sqrt(190 / 2)
        assert readout_fidelity(0.02, 190, 2) == pytest.approx(expected)

    def test_more_devices_reduces_per_device_readout_burden(self):
        assert readout_fidelity(0.02, 190, 5) > readout_fidelity(0.02, 190, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            readout_fidelity(0.02, 190, 0)


class TestDeviceAndFinalFidelity:
    def test_device_fidelity_is_product(self):
        f = device_fidelity(
            avg_single_qubit_error=3e-4,
            avg_two_qubit_error=8e-3,
            avg_readout_error=2e-2,
            depth=12,
            num_two_qubit_gates=300,
            num_qubits=190,
            num_devices=2,
        )
        expected = (
            single_qubit_fidelity(3e-4, 12)
            * two_qubit_fidelity(8e-3, 300)
            * readout_fidelity(2e-2, 190, 2)
        )
        assert f == pytest.approx(expected)

    def test_communication_penalty_values(self):
        assert communication_penalty(1) == 1.0
        assert communication_penalty(2) == pytest.approx(0.95)
        assert communication_penalty(5) == pytest.approx(0.95**4)
        assert communication_penalty(3, phi=0.9) == pytest.approx(0.81)

    def test_final_fidelity_single_device_no_penalty(self):
        assert final_fidelity([0.8]) == pytest.approx(0.8)

    def test_final_fidelity_average_and_penalty(self):
        value = final_fidelity([0.8, 0.9])
        assert value == pytest.approx(0.85 * 0.95)

    def test_final_fidelity_validation(self):
        with pytest.raises(ValueError):
            final_fidelity([])
        with pytest.raises(ValueError):
            final_fidelity([1.5])

    def test_default_penalty_constant(self):
        assert DEFAULT_COMMUNICATION_PENALTY == 0.95


class TestFidelityBreakdown:
    def test_device_product_and_dict(self):
        b = FidelityBreakdown("ibm_kyiv", 95, single_qubit=0.99, two_qubit=0.9, readout=0.88)
        assert b.device == pytest.approx(0.99 * 0.9 * 0.88)
        payload = b.as_dict()
        assert payload["device_name"] == "ibm_kyiv"
        assert payload["device"] == pytest.approx(b.device)


# ---------------------------------------------------------------------------
# Property-based tests: fidelities are probabilities and degrade monotonically.
# ---------------------------------------------------------------------------
error_rates = st.floats(min_value=0.0, max_value=0.3, allow_nan=False)


@settings(max_examples=200, deadline=None)
@given(
    e1=error_rates,
    e2=error_rates,
    ero=error_rates,
    depth=st.integers(min_value=1, max_value=50),
    t2=st.integers(min_value=0, max_value=5000),
    q=st.integers(min_value=1, max_value=600),
    k=st.integers(min_value=1, max_value=5),
)
def test_device_fidelity_is_a_probability(e1, e2, ero, depth, t2, q, k):
    f = device_fidelity(e1, e2, ero, depth, t2, q, k)
    assert 0.0 <= f <= 1.0


@settings(max_examples=200, deadline=None)
@given(
    fids=st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=5),
    phi=st.floats(min_value=0.5, max_value=1.0, allow_nan=False),
)
def test_final_fidelity_bounded_by_mean(fids, phi):
    value = final_fidelity(fids, phi=phi)
    mean = sum(fids) / len(fids)
    assert 0.0 <= value <= mean + 1e-12


@settings(max_examples=100, deadline=None)
@given(
    e=st.floats(min_value=1e-4, max_value=0.2, allow_nan=False),
    depth=st.integers(min_value=1, max_value=30),
)
def test_single_qubit_fidelity_monotone_in_error(e, depth):
    assert single_qubit_fidelity(e, depth) >= single_qubit_fidelity(min(e * 2, 1.0), depth)


class TestArrayKernels:
    """The elementary kernels accept ndarray inputs (vectorized env path)."""

    def test_single_qubit_matches_scalar_elementwise(self):
        errors = np.array([0.001, 0.01, 0.05])
        depths = np.array([5, 10, 20])
        result = single_qubit_fidelity(errors, depths)
        assert isinstance(result, np.ndarray)
        for i in range(3):
            assert result[i] == single_qubit_fidelity(float(errors[i]), int(depths[i]))

    def test_two_qubit_matches_scalar_elementwise(self):
        errors = np.array([0.005, 0.02])
        gates = np.array([0.0, 137.5])
        result = two_qubit_fidelity(errors, gates)
        for i in range(2):
            assert result[i] == two_qubit_fidelity(float(errors[i]), float(gates[i]))

    def test_readout_matches_scalar_elementwise(self):
        errors = np.array([0.01, 0.03])
        result = readout_fidelity(errors, np.array([200, 150]), np.array([2, 3]))
        for i, (q, k) in enumerate([(200, 2), (150, 3)]):
            assert result[i] == readout_fidelity(float(errors[i]), q, k)

    def test_communication_penalty_array(self):
        result = communication_penalty(np.array([1, 2, 3]))
        assert result[0] == 1.0
        for i, k in enumerate([1, 2, 3]):
            assert result[i] == pytest.approx(communication_penalty(k), rel=1e-15)

    def test_broadcasting_scalar_against_array(self):
        # One error rate against a (2, 3) depth grid broadcasts elementwise.
        depths = np.arange(6).reshape(2, 3)
        result = single_qubit_fidelity(0.01, depths)
        assert result.shape == (2, 3)
        assert result[0, 0] == 1.0

    def test_array_validation_errors(self):
        with pytest.raises(ValueError):
            single_qubit_fidelity(np.array([0.5, 1.5]), 3)
        with pytest.raises(ValueError):
            single_qubit_fidelity(np.array([0.5]), np.array([-1]))
        with pytest.raises(ValueError):
            two_qubit_fidelity(np.array([0.1]), np.array([-2.0]))
        with pytest.raises(ValueError):
            readout_fidelity(np.array([0.1]), np.array([10]), np.array([0]))
        with pytest.raises(ValueError):
            communication_penalty(np.array([0]))
