"""Unit tests for the error-score formula (Eq. 2)."""

import numpy as np
import pytest

from repro.hardware.calibration import CalibrationData, GateCalibration, QubitCalibration
from repro.metrics.error_score import (
    DEFAULT_WEIGHTS,
    ErrorScoreWeights,
    error_score,
    error_score_from_averages,
)


class TestWeights:
    def test_paper_defaults(self):
        assert DEFAULT_WEIGHTS.alpha == 0.5
        assert DEFAULT_WEIGHTS.theta == 0.3
        assert DEFAULT_WEIGHTS.gamma == 0.2
        assert DEFAULT_WEIGHTS.total == pytest.approx(1.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            ErrorScoreWeights(alpha=-0.1)

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            ErrorScoreWeights(0.0, 0.0, 0.0)


class TestFromAverages:
    def test_hand_computed_value(self):
        score = error_score_from_averages(0.02, 0.0003, 0.008)
        assert score == pytest.approx(0.5 * 0.02 + 0.3 * 0.0003 + 0.2 * 0.008)

    def test_readout_weighted_highest(self):
        # Raising the readout error by delta must move the score more than
        # raising either gate error by the same delta.
        base = error_score_from_averages(0.01, 0.001, 0.005)
        d_read = error_score_from_averages(0.02, 0.001, 0.005) - base
        d_1q = error_score_from_averages(0.01, 0.011, 0.005) - base
        d_2q = error_score_from_averages(0.01, 0.001, 0.015) - base
        assert d_read > d_1q > d_2q

    def test_monotone_in_each_input(self):
        base = error_score_from_averages(0.01, 0.001, 0.005)
        assert error_score_from_averages(0.02, 0.001, 0.005) > base
        assert error_score_from_averages(0.01, 0.002, 0.005) > base
        assert error_score_from_averages(0.01, 0.001, 0.006) > base

    def test_custom_weights(self):
        score = error_score_from_averages(0.02, 0.0003, 0.008, alpha=1.0, theta=0.0, gamma=0.0)
        assert score == pytest.approx(0.02)

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            error_score_from_averages(1.5, 0.001, 0.005)


class TestFromCalibration:
    def test_matches_manual_average(self):
        qubits = [
            QubitCalibration(0, 200, 150, readout_error=0.01, single_qubit_error=2e-4),
            QubitCalibration(1, 200, 150, readout_error=0.03, single_qubit_error=4e-4),
        ]
        gates = [GateCalibration((0, 1), error=0.006), GateCalibration((1, 0), error=0.010)]
        cal = CalibrationData(qubits=qubits, gates=gates)
        expected = 0.5 * 0.02 + 0.3 * 3e-4 + 0.2 * 0.008
        assert error_score(cal) == pytest.approx(expected)

    def test_score_in_unit_interval_for_fleet(self, default_fleet):
        for profile in default_fleet:
            assert 0.0 <= error_score(profile.calibration) <= 1.0
