"""Unit tests for record aggregation (Table 2 rows, Fig. 6 histograms)."""

import numpy as np
import pytest

from repro.metrics.aggregate import StrategySummary, fidelity_histogram, summarize_records


def make_records():
    return [
        {
            "fidelity": 0.65,
            "arrival_time": 0.0,
            "start_time": 1.0,
            "finish_time": 11.0,
            "communication_time": 3.0,
            "num_devices": 2,
        },
        {
            "fidelity": 0.70,
            "arrival_time": 0.0,
            "start_time": 2.0,
            "finish_time": 30.0,
            "communication_time": 5.0,
            "num_devices": 3,
        },
        {
            "fidelity": 0.60,
            "arrival_time": 5.0,
            "start_time": 6.0,
            "finish_time": 20.0,
            "communication_time": 4.0,
            "num_devices": 2,
        },
    ]


class TestSummarize:
    def test_values(self):
        summary = summarize_records(make_records(), strategy="speed")
        assert summary.strategy == "speed"
        assert summary.num_jobs == 3
        assert summary.total_simulation_time == 30.0
        assert summary.mean_fidelity == pytest.approx(0.65)
        assert summary.std_fidelity == pytest.approx(np.std([0.65, 0.7, 0.6]))
        assert summary.total_communication_time == pytest.approx(12.0)
        assert summary.mean_devices_per_job == pytest.approx(7 / 3)
        assert summary.mean_wait_time == pytest.approx((1 + 2 + 1) / 3)
        assert summary.mean_turnaround_time == pytest.approx((11 + 30 + 15) / 3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_records([])

    def test_as_row_and_format(self):
        summary = summarize_records(make_records(), strategy="fair")
        row = summary.as_row()
        assert row["strategy"] == "fair"
        assert row["T_sim_s"] == 30.0
        text = summary.format_row()
        assert "fair" in text and "0.65" in text

    def test_accepts_objects_with_attributes(self):
        class R:
            fidelity = 0.5
            arrival_time = 0.0
            start_time = 0.0
            finish_time = 10.0
            communication_time = 1.0
            num_devices = 2

        summary = summarize_records([R(), R()], strategy="x")
        assert summary.mean_fidelity == 0.5


class TestHistogram:
    def test_counts_and_edges(self):
        hist = fidelity_histogram(make_records(), bins=5, value_range=(0.5, 0.8))
        assert hist["counts"].sum() == 3
        assert len(hist["edges"]) == 6
        assert len(hist["centers"]) == 5

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            fidelity_histogram(make_records(), bins=0)
        with pytest.raises(ValueError):
            fidelity_histogram([], bins=5)
