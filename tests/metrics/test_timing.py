"""Unit tests for the timing models (Eq. 3 and Eq. 9)."""

import pytest

from repro.metrics.timing import (
    DEFAULT_COMM_LATENCY_PER_QUBIT,
    communication_time,
    execution_time,
    processing_time_minutes,
)


class TestExecutionTime:
    def test_paper_worked_example(self):
        # §6.1: M=100, K=10, S=40,000, D=7 (QV=128), CLOPS=220,000 → ≈21 min.
        minutes = execution_time(shots=40_000, clops=220_000, quantum_volume=128) / 60
        assert minutes == pytest.approx(21.2, abs=0.2)

    def test_minutes_variant_divides_by_60(self):
        secs = execution_time(shots=20_000, clops=30_000)
        mins = processing_time_minutes(shots=20_000, clops=30_000)
        assert mins == pytest.approx(secs / 60)

    def test_faster_device_shorter_time(self):
        assert execution_time(10_000, clops=220_000) < execution_time(10_000, clops=29_000)


class TestCommunicationTime:
    def test_default_latency(self):
        assert DEFAULT_COMM_LATENCY_PER_QUBIT == 0.02

    def test_formula(self):
        assert communication_time(190) == pytest.approx(3.8)
        assert communication_time(0) == 0.0

    def test_custom_latency(self):
        assert communication_time(100, latency_per_qubit=0.05) == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            communication_time(-1)
        with pytest.raises(ValueError):
            communication_time(10, latency_per_qubit=-0.1)
