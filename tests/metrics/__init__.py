"""Test package."""
