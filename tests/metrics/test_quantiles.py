"""P² streaming quantile estimator (repro.metrics.quantiles).

The production class stores its marker state in flattened scalar slots; the
reference implementation below is the textbook five-list P² algorithm
(Jain & Chlamtac 1985).  The two must agree *bit for bit* on every stream —
the flattening is a data-layout change, not an approximation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.quantiles import P2Quantile


class ReferenceP2:
    """Verbatim textbook P² marker algorithm (five parallel lists)."""

    def __init__(self, quantile: float) -> None:
        self.quantile = quantile
        self.count = 0
        self.buffer: list = []
        self.heights: list = []
        self.positions: list = []
        self.desired: list = []
        self.increments = [0.0, quantile / 2.0, quantile, (1.0 + quantile) / 2.0, 1.0]

    def add(self, x: float) -> None:
        self.count += 1
        if self.count <= 5:
            self.buffer.append(x)
            if self.count == 5:
                self.buffer.sort()
                self.heights = list(self.buffer)
                self.positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                p = self.quantile
                self.desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
            return
        q = self.heights
        n = self.positions
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while x >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            self.desired[i] += self.increments[i]
        for i in (1, 2, 3):
            d = self.desired[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (d <= -1.0 and n[i - 1] - n[i] < -1.0):
                step = 1.0 if d >= 0 else -1.0
                candidate = q[i] + step / (n[i + 1] - n[i - 1]) * (
                    (n[i] - n[i - 1] + step) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                    + (n[i + 1] - n[i] - step) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
                )
                if not q[i - 1] < candidate < q[i + 1]:
                    candidate = q[i] + step * (q[i + int(step)] - q[i]) / (n[i + int(step)] - n[i])
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                n[i] += step

    @property
    def value(self):
        if self.count == 0:
            return None
        if self.count < 5:
            return np.percentile(self.buffer, self.quantile * 100.0)
        return self.heights[2]


STREAMS = {
    "uniform": lambda rng: rng.uniform(0.0, 100.0, 2_000),
    "normal": lambda rng: rng.normal(50.0, 10.0, 2_000),
    "exponential": lambda rng: rng.exponential(5.0, 2_000),
    "ties": lambda rng: rng.integers(0, 10, 2_000).astype(float),
    "zeros": lambda rng: np.zeros(500),
    "sorted": lambda rng: np.sort(rng.uniform(0.0, 1.0, 1_000)),
}


class TestValidation:
    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 1.5])
    def test_quantile_out_of_range(self, bad):
        with pytest.raises(ValueError):
            P2Quantile(bad)

    def test_empty_value_is_none(self):
        assert P2Quantile(0.5).value is None


class TestSmallSamples:
    def test_under_five_is_exact(self):
        est = P2Quantile(0.5)
        for x in (9.0, 1.0, 5.0):
            est.add(x)
        assert est.value == np.percentile([9.0, 1.0, 5.0], 50.0)

    def test_exactly_five_uses_markers(self):
        est = P2Quantile(0.5)
        for x in (5.0, 1.0, 4.0, 2.0, 3.0):
            est.add(x)
        assert est.value == 3.0  # middle marker of the sorted first five


class TestReferenceIdentity:
    @pytest.mark.parametrize("stream", sorted(STREAMS))
    @pytest.mark.parametrize("quantile", [0.5, 0.95, 0.99])
    def test_bitwise_equal_to_textbook(self, stream, quantile):
        data = STREAMS[stream](np.random.default_rng(hash(stream) % 2**32))
        est, ref = P2Quantile(quantile), ReferenceP2(quantile)
        for x in data:
            est.add(float(x))
            ref.add(float(x))
        assert est.value == ref.value
        assert est._heights == ref.heights
        assert est._positions == ref.positions


class TestAccuracy:
    @pytest.mark.parametrize("quantile", [0.5, 0.95, 0.99])
    def test_tracks_np_percentile(self, quantile):
        rng = np.random.default_rng(7)
        data = rng.exponential(10.0, 50_000)
        est = P2Quantile(quantile)
        for x in data:
            est.add(float(x))
        exact = np.percentile(data, quantile * 100.0)
        assert est.value == pytest.approx(exact, rel=0.05)

    def test_deterministic(self):
        data = np.random.default_rng(3).normal(0.0, 1.0, 1_000)
        values = []
        for _ in range(2):
            est = P2Quantile(0.95)
            for x in data:
                est.add(float(x))
            values.append(est.value)
        assert values[0] == values[1]
