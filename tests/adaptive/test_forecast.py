"""Online arrival-rate estimation: windowed MLE, diurnal profile, rush flags."""

import pytest

from repro.adaptive.forecast import OnlineArrivalForecaster


def _feed_uniform(forecaster, start, stop, gap):
    t = start
    while t < stop:
        forecaster.observe(t)
        t += gap


class TestValidation:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            OnlineArrivalForecaster(window=0.0)

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            OnlineArrivalForecaster(period=-5.0)

    def test_rejects_bad_horizon(self):
        f = OnlineArrivalForecaster()
        f.observe(1.0)
        with pytest.raises(ValueError):
            f.predicted_rate(1.0, 0.0)


class TestWindowedRate:
    def test_empty_forecaster_reports_zero(self):
        f = OnlineArrivalForecaster(window=100.0)
        assert f.rate(500.0) == 0.0
        assert f.baseline_rate() == 0.0
        assert f.predicted_rate(500.0, 60.0) == 0.0

    def test_uniform_arrivals_recover_rate(self):
        f = OnlineArrivalForecaster(window=100.0)
        _feed_uniform(f, 0.0, 400.0, 2.0)  # 0.5 jobs/s
        assert f.rate(400.0) == pytest.approx(0.5, rel=0.1)
        assert f.baseline_rate() == pytest.approx(0.5, rel=0.05)

    def test_rate_tracks_recent_window_only(self):
        f = OnlineArrivalForecaster(window=100.0)
        _feed_uniform(f, 0.0, 200.0, 10.0)   # slow phase: 0.1 jobs/s
        _feed_uniform(f, 200.0, 300.0, 1.0)  # burst phase: 1.0 jobs/s
        assert f.rate(300.0) == pytest.approx(1.0, rel=0.15)
        assert f.rate(150.0) == pytest.approx(0.1, rel=0.3)

    def test_idle_window_falls_back_to_count_rate(self):
        f = OnlineArrivalForecaster(window=100.0)
        f.observe(10.0)
        # One arrival in the window: the guarded MLE declines, the count
        # fallback reports 1/width instead of None/ZeroDivision.
        assert f.rate(50.0) == pytest.approx(1.0 / 100.0)

    def test_trend_extrapolation_rises_with_accelerating_arrivals(self):
        f = OnlineArrivalForecaster(window=100.0)
        _feed_uniform(f, 0.0, 100.0, 10.0)   # 0.1 jobs/s
        _feed_uniform(f, 100.0, 200.0, 2.0)  # 0.5 jobs/s
        predicted = f.predicted_rate(200.0, 100.0)
        assert predicted > f.rate(200.0)  # rising trend extrapolates upward

    def test_trend_is_clamped_at_zero(self):
        f = OnlineArrivalForecaster(window=10.0)
        _feed_uniform(f, 0.0, 10.0, 0.5)  # burst then silence
        assert f.predicted_rate(1000.0, 100.0) >= 0.0


class TestDiurnalProfile:
    def _diurnal(self, period=1000.0, cycles=3):
        f = OnlineArrivalForecaster(window=100.0, period=period, bins=10)
        for cycle in range(cycles):
            base = cycle * period
            # Crest: dense arrivals in the middle of the period.
            _feed_uniform(f, base + 400.0, base + 600.0, 2.0)
            # Trough: sparse arrivals elsewhere.
            _feed_uniform(f, base + 0.0, base + 400.0, 100.0)
            _feed_uniform(f, base + 600.0, base + 1000.0, 100.0)
        return f

    def test_profile_predicts_crest_above_trough(self):
        f = self._diurnal()
        crest = f.predicted_rate(3000.0 + 450.0, 100.0)
        trough = f.predicted_rate(3000.0 + 100.0, 100.0)
        assert crest > 3 * trough

    def test_is_rush_flags_crest_not_trough(self):
        f = self._diurnal()
        assert f.is_rush(3000.0 + 450.0, 100.0, factor=1.5)
        assert not f.is_rush(3000.0 + 100.0, 100.0, factor=1.5)

    def test_no_rush_without_observations(self):
        f = OnlineArrivalForecaster()
        assert not f.is_rush(0.0, 100.0, factor=1.5)

    def test_fitted_snapshot_is_json_safe(self):
        import json

        f = self._diurnal()
        payload = f.fitted()
        json.dumps(payload)
        assert payload["observations"] == f.observations
        assert payload["period"] == 1000.0


class TestDeterminism:
    def test_same_observations_same_estimates(self):
        a = OnlineArrivalForecaster(window=50.0, period=200.0)
        b = OnlineArrivalForecaster(window=50.0, period=200.0)
        for f in (a, b):
            _feed_uniform(f, 0.0, 600.0, 3.0)
        assert a.rate(600.0) == b.rate(600.0)
        assert a.predicted_rate(700.0, 60.0) == b.predicted_rate(700.0, 60.0)
        assert a.fitted() == b.fitted()
