"""The four controllers: AIMD admission, SLO planner, pooler, checkpointer."""

import pytest

from repro.adaptive import AdaptivePolicySpec
from repro.adaptive.controllers import ElasticPooler
from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv


def _run(adaptive, **kwargs):
    config = SimulationConfig(
        num_jobs=kwargs.pop("num_jobs", 60),
        seed=kwargs.pop("seed", 7),
        policy=kwargs.pop("policy", "speed"),
        **kwargs,
    )
    env = QCloudSimEnv(config, adaptive=adaptive)
    records = env.run_until_complete()
    return env, records


def _controller(env, kind):
    for controller in env.adaptive_engine.controllers:
        if controller.kind == kind:
            return controller
    raise AssertionError(f"no controller of kind {kind}")


class TestAdaptiveAdmission:
    SPEC = AdaptivePolicySpec(name="aimd-only", adaptive_admission=True)

    def test_rates_stay_within_aimd_bounds(self):
        env, _ = _run(self.SPEC, tenants="noisy-neighbor", scenario="black-friday",
                      num_jobs=80)
        ctrl = _controller(env, "adaptive-admission")
        assert ctrl.trajectory, "control loop never actuated"
        spec = self.SPEC
        for _, name, rate in ctrl.trajectory:
            base = ctrl._base[name]
            assert spec.aimd_floor * base - 1e-9 <= rate <= spec.aimd_ceiling * base + 1e-9

    def test_only_bucketed_tenants_are_controlled(self):
        env, _ = _run(self.SPEC, tenants="noisy-neighbor", num_jobs=40)
        ctrl = _controller(env, "adaptive-admission")
        # noisy-neighbor rate-limits only the "neighbor" tenant.
        assert set(ctrl._base) == {"neighbor"}
        assert all(name == "neighbor" for _, name, _ in ctrl.trajectory)

    def test_healthy_run_ramps_rates_up(self):
        # Without pressure AIMD performs additive increase up to the ceiling.
        env, _ = _run(self.SPEC, tenants="noisy-neighbor", num_jobs=40)
        ctrl = _controller(env, "adaptive-admission")
        final = env.broker.admission_controller.rate("neighbor")
        assert final is not None
        assert final > ctrl._base["neighbor"]

    def test_plain_broker_is_a_noop(self):
        env, records = _run(self.SPEC, num_jobs=20)
        ctrl = _controller(env, "adaptive-admission")
        assert ctrl._base == {}
        assert ctrl.trajectory == []
        assert len(records) == 20

    def test_report_is_json_safe(self):
        import json

        env, _ = _run(self.SPEC, tenants="noisy-neighbor", num_jobs=30)
        json.dumps(env.adaptive_report())


class TestSLOAwarePlanner:
    SPEC = AdaptivePolicySpec(name="planner-only", slo_planner=True)

    def test_wraps_the_configured_policy(self):
        env, _ = _run(self.SPEC, tenants="noisy-neighbor", num_jobs=20)
        planner = _controller(env, "slo-planner")
        assert env.broker.policy is planner
        assert planner.name == f"adaptive({planner.inner.name})"

    def test_biases_without_losing_jobs(self):
        env, records = _run(self.SPEC, tenants="noisy-neighbor",
                            scenario="black-friday", num_jobs=80)
        planner = _controller(env, "slo-planner")
        assert planner.latency_biased + planner.fidelity_biased > 0
        # Liveness: biasing may reroute jobs but never strands them.
        assert len(records) + len(env.broker.failed_jobs) + \
            len(env.broker.rejected_jobs) == 80

    def test_untenanted_jobs_fall_through_to_inner(self):
        env, records = _run(self.SPEC, num_jobs=20)
        planner = _controller(env, "slo-planner")
        assert planner.latency_biased == planner.fidelity_biased == 0
        assert len(records) == 20


class TestElasticPooler:
    SPEC = AdaptivePolicySpec(
        name="pooler-only", elastic_pooling=True, pool_hysteresis=0.0,
        tick_interval=30.0,
    )

    def test_single_class_mix_installs_nothing(self):
        env, _ = _run(self.SPEC, tenants="noisy-neighbor", num_jobs=20)
        pooler = _controller(env, "elastic-pooler")
        assert pooler.class_pools == {}
        assert pooler.repartitions == 0

    def test_multiclass_pools_partition_the_fleet(self):
        env, _ = _run(self.SPEC, tenants="batch-vs-interactive",
                      scenario="black-friday", num_jobs=80)
        pooler = _controller(env, "elastic-pooler")
        assert pooler.repartitions > 0
        fleet = {d.name for d in env.cloud.devices}
        seen = []
        for pool in pooler.class_pools.values():
            assert pool, "every class keeps at least one device"
            seen.extend(pool)
        assert len(seen) == len(set(seen))  # pools are disjoint
        assert set(seen) == fleet  # ... and cover the whole fleet

    def test_best_tier_goes_to_most_important_class(self):
        env, _ = _run(self.SPEC, tenants="batch-vs-interactive",
                      scenario="black-friday", num_jobs=80)
        pooler = _controller(env, "elastic-pooler")
        devices = {d.name: d for d in env.cloud.devices}
        classes = sorted(pooler.class_pools)
        top = pooler.class_pools[classes[0]]
        bottom = pooler.class_pools[classes[-1]]
        best_top = min(devices[n].error_score() for n in top)
        worst_bottom = max(devices[n].error_score() for n in bottom)
        assert best_top <= worst_bottom

    def test_apportionment_respects_floors_and_total(self):
        pooler = object.__new__(ElasticPooler)
        pooler._classes = (0, 1, 3)
        sizes = pooler._apportion({0: 50, 1: 1, 3: 1}, 5)
        assert sum(sizes.values()) == 5
        assert all(size >= 1 for size in sizes.values())
        assert sizes[0] == 3  # demand-dominant class takes the surplus

    def test_apportionment_handles_tiny_fleets(self):
        pooler = object.__new__(ElasticPooler)
        pooler._classes = (0, 1)
        sizes = pooler._apportion({0: 1000, 1: 1}, 2)
        assert sizes == {0: 1, 1: 1}

    def test_hysteresis_suppresses_flapping(self):
        calm = AdaptivePolicySpec(
            name="pooler-hysteretic", elastic_pooling=True, pool_hysteresis=1.0,
            tick_interval=30.0,
        )
        env, _ = _run(calm, tenants="batch-vs-interactive",
                      scenario="black-friday", num_jobs=80)
        pooler = _controller(env, "elastic-pooler")
        # A fleet-sized threshold allows the initial partition and then
        # freezes it for the rest of the run.
        assert pooler.repartitions <= 1


class TestProactiveCheckpointer:
    SPEC = AdaptivePolicySpec(
        name="ckpt-only", proactive_checkpointing=True,
        outage_risk_threshold=0.0001, tick_interval=30.0,
    )

    def test_arms_under_flaky_fleet(self):
        env, _ = _run(self.SPEC, scenario="flaky-fleet", num_jobs=60)
        ctrl = _controller(env, "proactive-checkpointer")
        assert ctrl.decisions > 0
        assert ctrl.checkpointed > 0
        assert ctrl.flips >= 1

    def test_stays_dormant_when_risk_is_remote(self):
        calm = AdaptivePolicySpec(
            name="ckpt-calm", proactive_checkpointing=True,
            outage_risk_threshold=1e9, rush_factor=1e9,
        )
        env, _ = _run(calm, num_jobs=30)
        ctrl = _controller(env, "proactive-checkpointer")
        assert ctrl.checkpointed == 0
        assert ctrl.flips == 0

    def test_defers_to_globally_enabled_checkpointing(self):
        env, _ = _run(self.SPEC, num_jobs=20, checkpointing=True)
        ctrl = _controller(env, "proactive-checkpointer")
        assert ctrl.decisions > 0
        # Global checkpointing wins; the controller never claims the credit.
        assert ctrl.checkpointed == 0
