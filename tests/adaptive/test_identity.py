"""``adaptive=None`` and the ``static`` policy must be byte-identical.

The adaptive subsystem's no-regression guarantee, mirroring
``tests/serve/test_single_tenant_equivalence.py`` and
``tests/region/test_single_region_equivalence.py``: a run with no adaptive
policy and a run with the all-off ``static`` policy install no hooks, wrap
no methods and consume no RNG — so every record field, every event and the
final clock are exactly equal, across all four paper strategies.  Active
policies must in turn be deterministic: a fixed seed replays the same AIMD
trajectory and records bit-for-bit.
"""

import numpy as np
import pytest

from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv

JOBS = 25
SEED = 2025


def _rl_policy():
    from repro.gymapi.spaces import Box
    from repro.rl.policies import ActorCriticPolicy
    from repro.scheduling.rl_policy import RLAllocationPolicy

    net = ActorCriticPolicy(
        Box(0.0, np.inf, shape=(16,), dtype=np.float64),
        Box(0.0, 1.0, shape=(5,), dtype=np.float64),
        seed=0,
    )
    return RLAllocationPolicy(net)


def _run(policy_name, adaptive, **kwargs):
    policy = _rl_policy() if policy_name == "rlbase" else None
    config = SimulationConfig(
        num_jobs=kwargs.pop("num_jobs", JOBS),
        seed=kwargs.pop("seed", SEED),
        policy=policy_name if policy_name != "rlbase" else "speed",
        adaptive=adaptive,
        **kwargs,
    )
    env = QCloudSimEnv(config, policy=policy)
    records = env.run_until_complete()
    return env, records


def _dicts(records):
    return [r.as_dict() for r in records]


class TestStaticIsByteIdentical:
    @pytest.mark.parametrize("policy_name", ["speed", "fidelity", "fair", "rlbase"])
    def test_plain_run(self, policy_name):
        env_none, plain = _run(policy_name, adaptive=None)
        env_static, static = _run(policy_name, adaptive="static")

        assert env_none.adaptive_engine is None
        assert env_static.adaptive_engine is not None
        assert env_static.adaptive_engine.controllers == []
        assert env_static.adaptive_engine.ticks == 0

        assert _dicts(static) == _dicts(plain)
        assert env_static.records.events == env_none.records.events
        assert env_static.now == env_none.now

    def test_serve_run(self):
        env_none, plain = _run("speed", adaptive=None, tenants="noisy-neighbor",
                               num_jobs=50)
        env_static, static = _run("speed", adaptive="static",
                                  tenants="noisy-neighbor", num_jobs=50)
        assert _dicts(static) == _dicts(plain)
        assert env_static.records.events == env_none.records.events
        assert len(env_static.broker.rejected_jobs) == len(env_none.broker.rejected_jobs)
        assert env_static.now == env_none.now

    def test_survives_outage_requeues(self):
        env_none, plain = _run("fidelity", adaptive=None, scenario="flaky-fleet",
                               num_jobs=60)
        env_static, static = _run("fidelity", adaptive="static",
                                  scenario="flaky-fleet", num_jobs=60)
        assert sum(r.retries for r in plain) > 0, "scenario produced no requeues"
        assert _dicts(static) == _dicts(plain)
        assert env_static.records.events == env_none.records.events
        assert env_static.now == env_none.now

    def test_scenario_and_tenants_together(self):
        kwargs = dict(tenants="noisy-neighbor", scenario="black-friday", num_jobs=50)
        env_none, plain = _run("speed", adaptive=None, **kwargs)
        env_static, static = _run("speed", adaptive="static", **kwargs)
        assert _dicts(static) == _dicts(plain)
        assert env_static.now == env_none.now


class TestActivePoliciesAreDeterministic:
    @pytest.mark.parametrize("adaptive", ["reactive", "predictive"])
    def test_fixed_seed_replays_records(self, adaptive):
        _, first = _run("speed", adaptive=adaptive, tenants="noisy-neighbor",
                        scenario="black-friday", num_jobs=60)
        _, second = _run("speed", adaptive=adaptive, tenants="noisy-neighbor",
                         scenario="black-friday", num_jobs=60)
        assert _dicts(first) == _dicts(second)

    def test_fixed_seed_replays_aimd_trajectory(self):
        def trajectory():
            env, _ = _run("speed", adaptive="predictive", tenants="noisy-neighbor",
                          scenario="black-friday", num_jobs=60)
            for controller in env.adaptive_engine.controllers:
                if controller.kind == "adaptive-admission":
                    return list(controller.trajectory)
            raise AssertionError("no admission controller installed")

        first = trajectory()
        second = trajectory()
        assert first, "AIMD never actuated — the test exercises nothing"
        assert first == second

    def test_different_seeds_diverge(self):
        # Sanity check that determinism above is not vacuous: the adaptive
        # run actually depends on the workload.
        _, a = _run("speed", adaptive="reactive", tenants="noisy-neighbor",
                    num_jobs=40, seed=1)
        _, b = _run("speed", adaptive="reactive", tenants="noisy-neighbor",
                    num_jobs=40, seed=2)
        assert _dicts(a) != _dicts(b)
