"""AdaptivePolicySpec validation and the adaptive-policy registry."""

import pytest

from repro.adaptive import (
    AdaptivePolicySpec,
    available_adaptive_policies,
    get_adaptive_policy,
    register_adaptive_policy,
    resolve_adaptive_policy,
)


class TestPresets:
    def test_all_three_presets_registered(self):
        names = available_adaptive_policies()
        for name in ("static", "reactive", "predictive"):
            assert name in names

    def test_static_enables_nothing(self):
        spec = get_adaptive_policy("static")
        assert spec.is_static
        assert spec.controller_names == ()

    def test_reactive_enables_observed_controllers(self):
        spec = get_adaptive_policy("reactive")
        assert not spec.is_static
        assert spec.controller_names == (
            "adaptive-admission",
            "slo-planner",
            "elastic-pooler",
        )

    def test_predictive_enables_everything(self):
        spec = get_adaptive_policy("predictive")
        assert spec.controller_names == (
            "adaptive-admission",
            "slo-planner",
            "elastic-pooler",
            "proactive-checkpointer",
        )


class TestValidation:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            AdaptivePolicySpec(name="")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tick_interval": 0.0},
            {"aimd_decrease": 0.0},
            {"aimd_decrease": 1.5},
            {"aimd_increase": -0.1},
            {"aimd_floor": 0.0},
            {"aimd_floor": 2.0, "aimd_ceiling": 1.0},
            {"queue_depth_high": 0},
            {"deadline_pressure": 1.5},
            {"latency_pool_fraction": 0.0},
            {"pool_hysteresis": -0.1},
            {"forecast_window": 0.0},
            {"forecast_horizon": -1.0},
            {"rush_factor": 0.0},
            {"outage_risk_threshold": -0.01},
        ],
    )
    def test_rejects_bad_gains(self, kwargs):
        with pytest.raises(ValueError):
            AdaptivePolicySpec(name="bad", **kwargs)

    def test_frozen(self):
        spec = get_adaptive_policy("static")
        with pytest.raises(Exception):
            spec.tick_interval = 1.0


class TestResolve:
    def test_none_passes_through(self):
        assert resolve_adaptive_policy(None) is None

    def test_name_resolves_to_registered_spec(self):
        assert resolve_adaptive_policy("reactive") is get_adaptive_policy("reactive")

    def test_spec_instance_passes_through(self):
        spec = AdaptivePolicySpec(name="inline", slo_planner=True)
        assert resolve_adaptive_policy(spec) is spec

    def test_unknown_name_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="static"):
            get_adaptive_policy("nope")

    def test_register_overwrites(self):
        try:
            register_adaptive_policy(AdaptivePolicySpec(name="tmp", tick_interval=5.0))
            assert get_adaptive_policy("tmp").tick_interval == 5.0
            register_adaptive_policy(AdaptivePolicySpec(name="tmp", tick_interval=9.0))
            assert get_adaptive_policy("tmp").tick_interval == 9.0
        finally:
            from repro.adaptive import spec as spec_mod

            spec_mod._REGISTRY.pop("tmp", None)
