"""Config, experiment-grid, fast-path and region wiring of adaptive policies."""

import pytest

from repro.adaptive import AdaptivePolicySpec, get_adaptive_policy, register_adaptive_policy
from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv
from repro.engine.spec import ExperimentSpec


class TestSimulationConfig:
    def test_defaults_to_none(self):
        assert SimulationConfig().adaptive is None

    def test_with_adaptive_copies(self):
        base = SimulationConfig(num_jobs=5, seed=3)
        derived = base.with_adaptive("reactive")
        assert derived.adaptive == "reactive"
        assert base.adaptive is None
        assert derived.num_jobs == base.num_jobs

    def test_round_trips_through_as_dict(self):
        from dataclasses import asdict

        config = SimulationConfig(num_jobs=5, adaptive="predictive")
        assert SimulationConfig(**asdict(config)).adaptive == "predictive"

    def test_unknown_name_fails_at_env_construction(self):
        with pytest.raises(KeyError):
            QCloudSimEnv(SimulationConfig(num_jobs=2, adaptive="nope"))

    def test_explicit_spec_overrides_config_name(self):
        inline = AdaptivePolicySpec(name="inline-static")
        env = QCloudSimEnv(
            SimulationConfig(num_jobs=2, adaptive="reactive"), adaptive=inline
        )
        assert env.adaptive_policy is inline

    def test_adaptive_report_requires_adaptive_run(self):
        env = QCloudSimEnv(SimulationConfig(num_jobs=2))
        with pytest.raises(RuntimeError):
            env.adaptive_report()


class TestFastPathInteraction:
    def test_static_policy_keeps_fast_path(self):
        config = SimulationConfig(num_jobs=10, seed=1, fast_path=True,
                                  adaptive="static")
        env = QCloudSimEnv(config)
        assert env.fast_path_active

    def test_active_policy_falls_back_to_legacy_engine(self):
        config = SimulationConfig(num_jobs=10, seed=1, fast_path=True,
                                  adaptive="reactive")
        env = QCloudSimEnv(config)
        assert not env.fast_path_active
        records = env.run_until_complete()
        assert len(records) == 10


class TestExperimentGrid:
    def _spec(self, **kwargs):
        return ExperimentSpec(
            base_config=SimulationConfig(num_jobs=4, seed=5),
            strategies=("speed", "fidelity"),
            **kwargs,
        )

    def test_axis_multiplies_cell_count(self):
        assert len(self._spec()) == 2
        assert len(self._spec(adaptive=(None, "static", "reactive"))) == 6

    def test_axis_must_be_non_empty(self):
        with pytest.raises(ValueError):
            self._spec(adaptive=())

    def test_cells_carry_the_axis_value(self):
        spec = self._spec(adaptive=(None, "reactive"))
        values = {cell.config.adaptive for cell in spec.cells()}
        assert values == {None, "reactive"}

    def test_absent_axis_keeps_base_config_adaptive(self):
        spec = ExperimentSpec(
            base_config=SimulationConfig(num_jobs=4, seed=5, adaptive="predictive"),
            strategies=("speed",),
        )
        assert [cell.config.adaptive for cell in spec.cells()] == ["predictive"]

    def test_cache_key_depends_on_policy_content(self):
        spec = self._spec(adaptive=("reactive",))
        cell = next(iter(spec.cells()))
        before = cell.cache_key()
        assert before is not None
        original = get_adaptive_policy("reactive")
        try:
            register_adaptive_policy(
                AdaptivePolicySpec(
                    name="reactive", adaptive_admission=True, aimd_increase=0.99
                )
            )
            assert cell.cache_key() != before
        finally:
            register_adaptive_policy(original)
        assert cell.cache_key() == before

    def test_unresolvable_policy_is_uncacheable(self):
        spec = ExperimentSpec(
            base_config=SimulationConfig(num_jobs=4, seed=5, adaptive="ghost-policy"),
            strategies=("speed",),
        )
        cell = next(iter(spec.cells()))
        assert cell.cache_key() is None

    def test_run_experiment_over_adaptive_axis(self):
        from repro.engine import ExperimentRunner

        spec = ExperimentSpec(
            base_config=SimulationConfig(num_jobs=6, seed=5, tenants="noisy-neighbor"),
            strategies=("speed",),
            adaptive=(None, "reactive"),
        )
        outcome = ExperimentRunner().run(spec)
        assert len(outcome) == 2
        assert {r.cell.config.adaptive for r in outcome} == {None, "reactive"}


class TestRegionPassThrough:
    def test_shard_config_inherits_adaptive(self):
        from repro.region import RegionalCloud

        config = SimulationConfig(num_jobs=6, seed=2, regions="dual",
                                  adaptive="reactive")
        cloud = RegionalCloud(config=config)
        for region in cloud.topology.regions:
            assert cloud._shard_config(region).adaptive == "reactive"

    def test_single_region_static_identical_to_plain(self):
        from repro.region import RegionalCloud

        config = SimulationConfig(num_jobs=8, policy="fidelity", seed=11,
                                  regions="single", adaptive="static")
        cloud = RegionalCloud(config=config)
        records = cloud.run_until_complete()
        env = QCloudSimEnv(SimulationConfig(num_jobs=8, policy="fidelity", seed=11))
        plain = env.run_until_complete()
        assert [r.as_dict() for r in records] == [r.as_dict() for r in plain]

    def test_multi_region_adaptive_run_completes(self):
        from repro.region import RegionalCloud

        config = SimulationConfig(num_jobs=12, seed=4, regions="dual",
                                  adaptive="predictive")
        cloud = RegionalCloud(config=config)
        records = cloud.run_until_complete()
        assert len(records) + len(cloud.failed) == 12
