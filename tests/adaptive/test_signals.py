"""The SignalBus: counters and rolling metrics maintained from broker hooks."""

from repro.adaptive import AdaptivePolicySpec
from repro.adaptive.signals import UNTENANTED
from repro.cloud.config import SimulationConfig
from repro.cloud.environment import QCloudSimEnv

# A spec that installs the signal bus (via any enabled controller) without
# touching admission rates or checkpointing, so runs stay comparable.
_SENSE_ONLY = AdaptivePolicySpec(name="sense-only", slo_planner=True)


def _run(tenants=None, **kwargs):
    config = SimulationConfig(
        num_jobs=kwargs.pop("num_jobs", 30),
        seed=kwargs.pop("seed", 11),
        policy="speed",
        tenants=tenants,
        adaptive=None,
        **kwargs,
    )
    env = QCloudSimEnv(config, adaptive=_SENSE_ONLY)
    records = env.run_until_complete()
    return env, records


class TestCountersMatchGroundTruth:
    def test_serve_run_counters(self):
        env, records = _run(tenants="noisy-neighbor", num_jobs=60)
        signals = env.adaptive_engine.signals
        broker = env.broker

        submitted = sum(s.submitted for s in signals.tenants.values())
        shed = sum(s.shed for s in signals.tenants.values())
        completed = sum(s.completed for s in signals.tenants.values())
        failed = sum(s.failed for s in signals.tenants.values())

        assert submitted == 60
        assert shed == len(broker.rejected_jobs)
        assert completed == len(records)
        assert failed == len(broker.failed_jobs)
        # Per-tenant attribution matches the broker's own map.
        for name, sig in signals.tenants.items():
            expected = sum(1 for t in broker.tenant_of.values() if t == name)
            assert sig.submitted == expected

    def test_plain_run_uses_untenanted_bucket(self):
        env, records = _run(tenants=None, num_jobs=20)
        signals = env.adaptive_engine.signals
        assert set(signals.tenants) == {UNTENANTED}
        sig = signals.tenants[UNTENANTED]
        assert sig.submitted == 20
        assert sig.completed == len(records)
        assert sig.shed == 0

    def test_rates_derive_from_counters(self):
        env, _ = _run(tenants="noisy-neighbor", num_jobs=60)
        for sig in env.adaptive_engine.signals.tenants.values():
            assert sig.admit_rate + sig.shed_rate == 1.0 if sig.submitted else True


class TestRollingMetrics:
    def test_p95_sketch_sees_every_completion(self):
        env, records = _run(num_jobs=30)
        signals = env.adaptive_engine.signals
        assert signals.global_wait_p95.count == len(records)
        p95 = signals.recent_p95()
        waits = sorted(r.wait_time for r in records)
        assert p95 is not None
        assert waits[0] <= p95 <= waits[-1]

    def test_mean_service_time_matches_records(self):
        import pytest

        env, records = _run(num_jobs=20)
        mean = env.adaptive_engine.signals.mean_service_time()
        expected = sum(r.effective_service_time for r in records) / len(records)
        assert mean == pytest.approx(expected)

    def test_queue_depth_drains_to_zero(self):
        env, _ = _run(tenants="noisy-neighbor", num_jobs=40)
        signals = env.adaptive_engine.signals
        assert signals.queue_depth() == 0
        for name in signals.tenants:
            assert signals.queue_depth(name) == 0

    def test_unknown_tenant_reads_as_empty(self):
        env, _ = _run(num_jobs=5)
        signals = env.adaptive_engine.signals
        assert signals.recent_p95("ghost") is None

    def test_device_utilization_non_negative(self):
        # Utilisation can exceed 1.0: devices multi-program jobs across
        # their qubit capacity, so busy_time accumulates per job.
        env, _ = _run(num_jobs=20)
        utils = env.adaptive_engine.signals.device_utilization()
        assert utils, "fleet reported no devices"
        for util in utils.values():
            assert util >= 0.0

    def test_snapshot_is_json_safe(self):
        import json

        env, _ = _run(tenants="noisy-neighbor", num_jobs=30)
        json.dumps(env.adaptive_engine.signals.snapshot())
