"""Region topology specs: validation, lookups and the preset registry."""

import pytest

from repro.cloud.communication import ClassicalCommunicationModel
from repro.region import (
    DEFAULT_REGION_LINK,
    RegionLink,
    RegionSpec,
    RegionTopology,
    available_topologies,
    get_topology,
    resolve_topology,
)

PRESETS = (
    "single",
    "dual",
    "global-triad",
    "region-outage",
    "cross-region-rush-hour",
    "follow-the-sun",
)


class TestRegionSpec:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            RegionSpec(name="")

    def test_rejects_non_positive_share(self):
        with pytest.raises(ValueError):
            RegionSpec(name="eu", workload_share=0.0)

    def test_rejects_empty_scenario_name(self):
        with pytest.raises(ValueError):
            RegionSpec(name="eu", scenario="")

    def test_device_names_normalised_to_tuple(self):
        spec = RegionSpec(name="eu", device_names=["ibm_kyiv", "ibm_quebec"])
        assert spec.device_names == ("ibm_kyiv", "ibm_quebec")


class TestRegionLink:
    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            RegionLink(a="eu", b="eu")

    def test_connects_is_order_insensitive(self):
        link = RegionLink(a="eu", b="us")
        assert link.connects("eu", "us")
        assert link.connects("us", "eu")
        assert not link.connects("eu", "ap")

    def test_defaults_to_the_region_link_model(self):
        assert RegionLink(a="eu", b="us").model == DEFAULT_REGION_LINK


class TestRegionTopology:
    def _regions(self):
        return (
            RegionSpec(name="eu", workload_share=3.0),
            RegionSpec(name="us", workload_share=1.0),
        )

    def test_rejects_duplicate_region_names(self):
        with pytest.raises(ValueError):
            RegionTopology(
                name="t", regions=(RegionSpec(name="eu"), RegionSpec(name="eu"))
            )

    def test_rejects_unknown_link_endpoint(self):
        with pytest.raises(ValueError):
            RegionTopology(
                name="t", regions=self._regions(), links=(RegionLink(a="eu", b="ap"),)
            )

    def test_rejects_duplicate_link_pair(self):
        with pytest.raises(ValueError):
            RegionTopology(
                name="t",
                regions=self._regions(),
                links=(RegionLink(a="eu", b="us"), RegionLink(a="us", b="eu")),
            )

    def test_rejects_empty_topology(self):
        with pytest.raises(ValueError):
            RegionTopology(name="t", regions=())

    def test_link_lookup(self):
        fast = ClassicalCommunicationModel(latency_per_qubit=0.01, fidelity_penalty=0.999)
        topology = RegionTopology(
            name="t",
            regions=self._regions() + (RegionSpec(name="ap"),),
            links=(RegionLink(a="eu", b="us", model=fast),),
        )
        # Intra-region traffic pays no inter-region cost.
        assert topology.link("eu", "eu") is None
        # Explicit links are order-insensitive; unlisted pairs use the default.
        assert topology.link("us", "eu") == fast
        assert topology.link("eu", "ap") == topology.default_link
        with pytest.raises(KeyError):
            topology.link("eu", "nowhere")

    def test_region_lookup(self):
        topology = RegionTopology(name="t", regions=self._regions())
        assert topology.region("eu").workload_share == 3.0
        with pytest.raises(KeyError):
            topology.region("ap")

    def test_workload_shares_normalised(self):
        topology = RegionTopology(name="t", regions=self._regions())
        assert topology.workload_shares() == {"eu": 0.75, "us": 0.25}

    def test_is_single_region(self):
        assert RegionTopology(name="t", regions=(RegionSpec(name="eu"),)).is_single_region
        assert not RegionTopology(name="t", regions=self._regions()).is_single_region


class TestRegistry:
    def test_presets_registered(self):
        names = available_topologies()
        for preset in PRESETS:
            assert preset in names

    def test_unknown_topology_raises(self):
        with pytest.raises(KeyError):
            get_topology("not-a-topology")

    def test_resolve_passes_instances_through(self):
        topology = RegionTopology(name="custom", regions=(RegionSpec(name="eu"),))
        assert resolve_topology(topology) is topology
        assert resolve_topology("dual") is get_topology("dual")

    def test_single_preset_degenerates(self):
        single = get_topology("single")
        assert single.is_single_region
        # The pool is inherited from the run's config, keeping the preset
        # byte-identical to the plain cloud for any device configuration.
        assert single.regions[0].device_names == ()

    def test_preset_scenarios_registered_in_dynamics(self):
        from repro.dynamics import available_scenarios

        names = available_scenarios()
        for scenario in ("region-blackout", "region-rush-am", "region-rush-pm",
                         "region-sun-00", "region-sun-08", "region-sun-16"):
            assert scenario in names
